"""Highway traffic-sensor workload.

The paper's introduction motivates SensorMap with camera / loop-sensor
networks monitoring highway traffic, and with users combining traffic
conditions and restaurant wait times on one map.  This generator places
traffic sensors along synthetic highway corridors — straight segments
connecting major city pairs, sampled at a fixed mile spacing with small
lateral jitter — giving the *linear* spatial distribution such fleets
exhibit (very different from the blob-shaped restaurant directory,
which exercises different tree shapes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import GeoPoint
from repro.geometry.point import haversine_miles, miles_to_degrees_lat, miles_to_degrees_lon
from repro.sensors.sensor import Sensor
from repro.workloads.cities import CITIES, City


@dataclass(frozen=True, slots=True)
class Corridor:
    """One highway segment between two cities."""

    start: City
    end: City

    @property
    def length_miles(self) -> float:
        return haversine_miles(self.start.lat, self.start.lon, self.end.lat, self.end.lon)


def default_corridors(n: int = 12, max_length_miles: float = 450.0) -> list[Corridor]:
    """Corridors between near-by major city pairs: walking cities in
    descending population order, connect each to its nearest larger
    neighbour when that neighbour is within drivable range — a minimal
    highway backbone.  Stops after ``n`` corridors."""
    if n < 1:
        raise ValueError("n must be positive")
    cities = sorted(CITIES, key=lambda c: -c.population)
    corridors: list[Corridor] = []
    for i, city in enumerate(cities[1:], start=1):
        best: City | None = None
        best_d = float("inf")
        for other in cities[:i]:
            d = haversine_miles(city.lat, city.lon, other.lat, other.lon)
            if d < best_d:
                best, best_d = other, d
        if best is not None and best_d <= max_length_miles:
            corridors.append(Corridor(start=city, end=best))
        if len(corridors) >= n:
            break
    return corridors


class HighwayWorkload:
    """Traffic sensors every ``spacing_miles`` along highway corridors.

    Parameters
    ----------
    corridors:
        The highway segments; defaults to a backbone over the largest
        metros.
    spacing_miles:
        Sensor spacing along each corridor.
    lateral_jitter_miles:
        Gaussian offset perpendicular to the corridor (roadside mounts).
    expiry_seconds:
        Validity of traffic readings (conditions change fast).
    availability:
        Ground-truth probe success probability (cameras drop offline).
    """

    def __init__(
        self,
        corridors: list[Corridor] | None = None,
        spacing_miles: float = 2.0,
        lateral_jitter_miles: float = 0.2,
        expiry_seconds: float = 180.0,
        availability: float = 0.92,
        seed: int = 0,
    ) -> None:
        if spacing_miles <= 0:
            raise ValueError("spacing_miles must be positive")
        self.corridors = corridors if corridors is not None else default_corridors()
        if not self.corridors:
            raise ValueError("need at least one corridor")
        self.spacing_miles = float(spacing_miles)
        self.lateral_jitter_miles = float(lateral_jitter_miles)
        self.expiry_seconds = float(expiry_seconds)
        self.availability = float(availability)
        self.seed = seed

    def sensors(self, start_id: int = 0) -> list[Sensor]:
        """All traffic sensors, ids starting at ``start_id`` (so traffic
        and restaurant fleets can share one registry)."""
        rng = np.random.default_rng(self.seed)
        out: list[Sensor] = []
        sensor_id = start_id
        for corridor in self.corridors:
            n_points = max(2, int(corridor.length_miles / self.spacing_miles))
            for k in range(n_points):
                t = k / (n_points - 1)
                lat = corridor.start.lat + t * (corridor.end.lat - corridor.start.lat)
                lon = corridor.start.lon + t * (corridor.end.lon - corridor.start.lon)
                lat += float(rng.normal(0.0, miles_to_degrees_lat(self.lateral_jitter_miles)))
                lon += float(
                    rng.normal(0.0, miles_to_degrees_lon(self.lateral_jitter_miles, at_lat=lat))
                )
                out.append(
                    Sensor(
                        sensor_id=sensor_id,
                        location=GeoPoint(lon, lat),
                        expiry_seconds=self.expiry_seconds,
                        sensor_type="traffic",
                        availability=self.availability,
                    )
                )
                sensor_id += 1
        return out

    def congestion_fn(self):
        """``(sensor, now) -> minutes of delay per 10 miles``: a rush-hour
        wave plus stable per-segment character."""

        def fn(sensor: Sensor, now: float) -> float:
            base = 1.0 + (sensor.sensor_id % 11) * 0.6
            rush = 8.0 * max(0.0, np.sin(now / 3_600.0 * np.pi)) ** 2
            return float(base + rush)

        return fn
