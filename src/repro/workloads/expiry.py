"""Expiry-time distributions for the Figure 2 slot-size analysis.

The paper evaluates the utility/cost model under three expiry-time
profiles (normalized to ``t_max`` = 1):

* **Uniform** — a hypothetical deployment with expiry times uniform on
  (0, 1]; the paper reports an optimal slot size of 0.5.
* **USGS** — ~10,000 USGS gauges, a long-expiry fleet (most sensors
  publish slowly changing data with long validity); optimum ≈ 0.8.
* **Weather** — ~1,000 personal weather stations with short expiry
  times (conditions change quickly); optimum ≈ 0.2.

We cannot redistribute the scraped datasets, so the USGS and Weather
profiles are parametric Beta mixtures matched to the qualitative shape
each source exhibits (heavy mass near 1 for USGS, near 0 for Weather —
the only property the utility term of the model consumes).
"""

from __future__ import annotations

import numpy as np


def uniform_expiry(n: int, seed: int = 0) -> np.ndarray:
    """Expiry times uniform on (0, 1]."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    samples = rng.uniform(0.0, 1.0, n)
    return np.clip(samples, 1e-6, 1.0)

def usgs_like_expiry(n: int = 10_000, seed: int = 0) -> np.ndarray:
    """A long-expiry fleet: most mass near ``t_max``.

    Mixture: 80% Beta(8, 1.3) (long validity gauges) + 20% Beta(3, 2)
    (faster streams).  With the Figure 2 reference workload parameters
    the model's optimum lands at Δ = 0.8, matching the paper.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    long_part = rng.beta(8.0, 1.3, int(n * 0.8))
    mid_part = rng.beta(3.0, 2.0, n - int(n * 0.8))
    samples = np.concatenate([long_part, mid_part])
    rng.shuffle(samples)
    return np.clip(samples, 1e-6, 1.0)


def weather_like_expiry(n: int = 1_000, seed: int = 0) -> np.ndarray:
    """A short-expiry fleet: most mass near 0.

    Mixture: 85% Beta(1, 9) (rapidly expiring stations) + 15%
    Beta(2, 4); with the Figure 2 reference workload parameters
    (``query_window=1.0, update_fraction=0.1, collection_cost=5.0``)
    the model's optimum lands at Δ = 0.2, matching the paper.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    short_part = rng.beta(1.0, 9.0, int(n * 0.85))
    mid_part = rng.beta(2.0, 4.0, n - int(n * 0.85))
    samples = np.concatenate([short_part, mid_part])
    rng.shuffle(samples)
    return np.clip(samples, 1e-6, 1.0)


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError("need at least one sample")
