"""Workload generators standing in for the paper's proprietary datasets.

The evaluation uses three data sources we cannot ship:

* the Windows Live Local workload (106 k viewport queries + 370 k
  restaurant locations) → :mod:`repro.workloads.livelocal`, a generator
  with population-weighted sensor placement over real US city
  coordinates and a query stream with the spatio-temporal locality the
  cache depends on;
* USGS / Weather Underground expiry-time distributions (Figure 2) →
  :mod:`repro.workloads.expiry`, parametric mixtures matching the
  papers' qualitative shapes (long-expiry vs short-expiry);
* 200 USGS water-discharge gauges in Washington state (Figure 7) →
  :mod:`repro.workloads.usgs`, synthetic gauges over a spatially
  correlated discharge field.

DESIGN.md records why each substitution preserves the behaviour the
corresponding experiment measures.
"""

from repro.workloads.churn import ChurnTick, ChurnWorkload
from repro.workloads.cities import CITIES, City
from repro.workloads.expiry import (
    uniform_expiry,
    usgs_like_expiry,
    weather_like_expiry,
)
from repro.workloads.highways import Corridor, HighwayWorkload, default_corridors
from repro.workloads.livelocal import (
    LiveLocalWorkload,
    OpenLoopWorkload,
    QuerySpec,
    TenantRequest,
)
from repro.workloads.polygons import PolygonQuerySpec, PolygonWorkload
from repro.workloads.trace import load_workload, save_workload
from repro.workloads.usgs import UsgsWaWorkload

__all__ = [
    "CITIES",
    "ChurnTick",
    "ChurnWorkload",
    "City",
    "Corridor",
    "HighwayWorkload",
    "LiveLocalWorkload",
    "OpenLoopWorkload",
    "PolygonQuerySpec",
    "PolygonWorkload",
    "QuerySpec",
    "TenantRequest",
    "UsgsWaWorkload",
    "default_corridors",
    "load_workload",
    "save_workload",
    "uniform_expiry",
    "usgs_like_expiry",
    "weather_like_expiry",
]
