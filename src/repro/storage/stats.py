"""Disk-I/O accounting.

One :class:`StorageStats` instance rides on each
:class:`~repro.storage.engine.StorageEngine` (and on any standalone
:class:`~repro.storage.pager.Pager`); every page read/write and WAL
append/fsync bumps a counter.  The portal meters deltas of these
counters into ``QueryStats`` / ``NetworkStats`` so disk I/O shows up in
the bench reports next to probe accounting, and the recovery-time model
converts the replay counters into deterministic modeled seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class StorageStats:
    """Cumulative storage-engine accounting."""

    page_reads: int = 0
    page_writes: int = 0
    wal_appends: int = 0
    wal_fsyncs: int = 0
    # Recovery-path accounting: WAL records re-applied on open, torn
    # tails detected by CRC and truncated, checkpoints taken, and
    # recoveries performed.
    wal_records_replayed: int = 0
    torn_tail_truncations: int = 0
    checkpoints: int = 0
    recoveries: int = 0

    def io_counters(self) -> tuple[int, int, int, int]:
        """The four serving-path counters, for cheap delta metering."""
        return (
            self.page_reads,
            self.page_writes,
            self.wal_appends,
            self.wal_fsyncs,
        )

    def snapshot(self) -> "StorageStats":
        """A copy safe to keep while the engine keeps running."""
        return replace(self)
