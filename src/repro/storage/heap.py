"""Heap/sequential record files over page chains.

A :class:`RecordHeap` is an append-only sequence of byte records — the
storage shape of the sensor registry and the cached-readings section of
a checkpoint.  Records are length-prefixed (``u32 len | bytes``) and
streamed across a chain of pages; a record freely spans page
boundaries, so page capacity never constrains record size.

The heap's head/tail/count live in the pager catalog under
``heap:<name>``; re-opening a pager re-opens its heaps by name.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

from repro.storage.pager import Pager

_LEN = struct.Struct("<I")


class RecordHeap:
    """An append-only record file inside a page file."""

    def __init__(self, pager: Pager, name: str) -> None:
        self.pager = pager
        self.name = name
        self._key = f"heap:{name}"
        entry = pager.catalog_get(self._key)
        if entry is None:
            entry = {"head": 0, "tail": 0, "count": 0, "tail_used": 0}
            pager.catalog_put(self._key, entry)
        self._head = int(entry["head"])
        self._tail = int(entry["tail"])
        self._count = int(entry["count"])
        self._tail_used = int(entry["tail_used"])

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, record: bytes) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[bytes]) -> None:
        """Append records as one frame stream (one catalog update)."""
        records = list(records)
        if not records:
            return
        data = b"".join(_LEN.pack(len(r)) + r for r in records)
        count = len(records)
        capacity = self.pager.capacity
        if self._head == 0:
            self._head = self._tail = self.pager.allocate()
            self._tail_used = 0
        # Refill the partially-used tail page, then spill into fresh
        # pages, linking as we go.
        tail_payload, _ = self.pager.read(self._tail)
        assert len(tail_payload) == self._tail_used
        buffer = tail_payload + data
        page_id = self._tail
        offset = 0
        while True:
            chunk = buffer[offset : offset + capacity]
            offset += len(chunk)
            if offset < len(buffer):
                next_id = self.pager.allocate()
                self.pager.write(page_id, chunk, next_id)
                page_id = next_id
            else:
                self.pager.write(page_id, chunk, 0)
                self._tail = page_id
                self._tail_used = len(chunk)
                break
        self._count += count
        self._save()

    def clear(self) -> None:
        """Drop every record and free the chain."""
        if self._head:
            self.pager.free_chain(self._head)
        self._head = self._tail = 0
        self._count = 0
        self._tail_used = 0
        self._save()

    def _save(self) -> None:
        self.pager.catalog_put(
            self._key,
            {
                "head": self._head,
                "tail": self._tail,
                "count": self._count,
                "tail_used": self._tail_used,
            },
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def records(self) -> Iterator[bytes]:
        """Every record in append order."""
        if self._head == 0:
            return
        stream = bytearray()
        page_id = self._head
        emitted = 0
        while page_id:
            payload, page_id = self.pager.read(page_id)
            stream.extend(payload)
            # Emit every complete frame accumulated so far.
            while emitted < self._count:
                if len(stream) < _LEN.size:
                    break
                (length,) = _LEN.unpack_from(stream)
                if len(stream) < _LEN.size + length:
                    break
                yield bytes(stream[_LEN.size : _LEN.size + length])
                del stream[: _LEN.size + length]
                emitted += 1
        if emitted != self._count:
            from repro.storage.pager import PageCorruptionError

            raise PageCorruptionError(
                f"heap {self.name!r}: {emitted} records decoded, "
                f"catalog says {self._count}"
            )

    def read_all(self) -> list[bytes]:
        return list(self.records())
