"""The storage engine: manifest, checkpoint rotation, WAL, recovery.

One engine owns one data directory::

    MANIFEST.json        which (checkpoint, wal) pair is current
    checkpoint-<N>.db    immutable page file written at checkpoint N
    wal-<N>.log          redo log of everything since checkpoint N

Write path: every acknowledged slot-cache batch (and every sensor
registration) appends one WAL record.  ``checkpoint()`` writes a fresh
checkpoint file and a fresh empty WAL, makes both durable, then
atomically flips the manifest (tmp + fsync + rename + directory fsync)
and deletes the superseded pair — a crash at any instant leaves a
consistent (checkpoint, wal) pair reachable.

Recovery on open: read the manifested checkpoint (if any), group its
cached readings into priming batches, then replay the WAL — torn tails
are CRC-detected and truncated, intact records append registration and
batch entries in their original order.  The portal re-installs the
result through the deterministic rebuild + grouped-delta ingestion, so
the first tick after restart is probe-free for every fresh slot.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.sensors.sensor import Reading, Sensor
from repro.storage import wal as wal_mod
from repro.storage.checkpoint import (
    group_by_fetch,
    read_checkpoint,
    reading_from_record,
    sensor_from_record,
    sensor_record,
    write_checkpoint,
)
from repro.storage.config import StorageConfig
from repro.storage.stats import StorageStats
from repro.storage.wal import WriteAheadLog

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = 1


@dataclass
class RecoveredState:
    """What recovery found in a data directory.

    ``batches`` is the priming sequence: the checkpoint's cached
    readings grouped by ``fetched_at`` (ascending), followed by every
    WAL batch in original append order.  Re-ingesting them in order
    through ``insert_readings_batch`` reproduces the durable cache
    state.
    """

    sensors: list[Sensor] = field(default_factory=list)
    batches: list[tuple[float, list[Reading]]] = field(default_factory=list)
    clock_now: float = 0.0
    checkpoint_pages: int = 0
    wal_records: int = 0
    torn_tail_truncated: bool = False

    @property
    def reading_count(self) -> int:
        return sum(len(batch) for _, batch in self.batches)

    @property
    def has_state(self) -> bool:
        return bool(self.sensors)


class StorageEngine:
    """Durable state of one portal (or one federation shard)."""

    def __init__(self, config: StorageConfig) -> None:
        self.config = config
        self.stats = StorageStats()
        self.dir = config.path
        self.dir.mkdir(parents=True, exist_ok=True)
        manifest = self._read_manifest()
        if manifest is None:
            self.epoch = 1
            self.checkpoint_name: str | None = None
            self._write_manifest()
        else:
            self.epoch = int(manifest["epoch"])
            self.checkpoint_name = manifest.get("checkpoint")
        self.recovered = self._recover()
        self._sweep_stale_files()
        self._wal = WriteAheadLog(
            self._wal_path(self.epoch),
            stats=self.stats,
            fsync_batch=config.wal_fsync_batch,
            fsync_enabled=config.fsync_enabled,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.dir / MANIFEST_NAME

    def _wal_path(self, epoch: int) -> Path:
        return self.dir / f"wal-{epoch}.log"

    def _checkpoint_path(self, epoch: int) -> Path:
        return self.dir / f"checkpoint-{epoch}.db"

    def _read_manifest(self) -> dict | None:
        path = self._manifest_path()
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except ValueError:
            return None
        if manifest.get("format") != MANIFEST_FORMAT:
            return None
        return manifest

    def _write_manifest(self) -> None:
        manifest = {
            "format": MANIFEST_FORMAT,
            "epoch": self.epoch,
            "checkpoint": self.checkpoint_name,
        }
        tmp = self._manifest_path().with_suffix(".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f)
            f.flush()
            if self.config.fsync_enabled:
                os.fsync(f.fileno())
        os.replace(tmp, self._manifest_path())
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        if not self.config.fsync_enabled:
            return
        fd = os.open(self.dir, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _sweep_stale_files(self) -> None:
        """Delete checkpoint/WAL files a crashed checkpoint left behind
        (only the manifested pair is live)."""
        keep = {self._wal_path(self.epoch).name}
        if self.checkpoint_name:
            keep.add(self.checkpoint_name)
        for pattern in ("checkpoint-*.db", "wal-*.log"):
            for path in self.dir.glob(pattern):
                if path.name not in keep:
                    path.unlink()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> RecoveredState:
        state = RecoveredState()
        truncations_before = self.stats.torn_tail_truncations
        if self.checkpoint_name:
            reads_before = self.stats.page_reads
            meta, sensors, cached = read_checkpoint(
                self.dir / self.checkpoint_name, stats=self.stats
            )
            state.sensors = sensors
            state.batches = group_by_fetch(cached)
            state.clock_now = float(meta.get("clock_now", 0.0))
            state.checkpoint_pages = self.stats.page_reads - reads_before
        records = wal_mod.replay(self._wal_path(self.epoch), stats=self.stats)
        sensors_by_id = {s.sensor_id: s for s in state.sensors}
        for record in records:
            kind = record[0]
            if kind == "sensor":
                sensor = sensor_from_record(record[1])
                sensors_by_id[sensor.sensor_id] = sensor
            elif kind == "batch":
                fetched_at = float(record[1])
                batch = [reading_from_record(r) for r in record[2]]
                state.batches.append((fetched_at, batch))
                state.clock_now = max(state.clock_now, fetched_at)
        state.sensors = [sensors_by_id[sid] for sid in sorted(sensors_by_id)]
        state.wal_records = len(records)
        state.torn_tail_truncated = (
            self.stats.torn_tail_truncations > truncations_before
        )
        if state.has_state or state.wal_records:
            self.stats.recoveries += 1
        return state

    @property
    def recovery_cost_seconds(self) -> float:
        """Modeled seconds the open-time recovery took: checkpoint pages
        read plus WAL records re-applied, under the config's cost
        constants (deterministic, host-independent)."""
        rec = self.recovered
        return (
            rec.checkpoint_pages * self.config.per_page_read_seconds
            + rec.wal_records * self.config.per_wal_record_seconds
        )

    # ------------------------------------------------------------------
    # Journaling
    # ------------------------------------------------------------------
    def journal_register(self, sensor: Sensor) -> None:
        self._wal.append(("sensor", sensor_record(sensor)))

    def journal_batch(self, readings: list[Reading], fetched_at: float) -> None:
        if not readings:
            return
        self._wal.append(
            (
                "batch",
                float(fetched_at),
                tuple(
                    (r.sensor_id, r.value, r.timestamp, r.expires_at)
                    for r in readings
                ),
            )
        )

    def sync(self) -> None:
        self._wal.sync()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(
        self,
        sensors: list[Sensor],
        cached: list[tuple[Reading, float]],
        clock_now: float,
    ) -> None:
        """Write a fresh checkpoint, rotate the WAL, flip the manifest."""
        new_epoch = self.epoch + 1
        checkpoint_name = self._checkpoint_path(new_epoch).name
        write_checkpoint(
            self._checkpoint_path(new_epoch),
            meta={
                "format": 2,
                "epoch": new_epoch,
                "clock_now": float(clock_now),
            },
            sensors=sensors,
            cached=cached,
            page_size=self.config.page_size,
            stats=self.stats,
            fsync=self.config.fsync_enabled,
        )
        new_wal = WriteAheadLog(
            self._wal_path(new_epoch),
            stats=self.stats,
            fsync_batch=self.config.wal_fsync_batch,
            fsync_enabled=self.config.fsync_enabled,
        )
        self._fsync_dir()
        old_epoch = self.epoch
        old_checkpoint = self.checkpoint_name
        self.epoch = new_epoch
        self.checkpoint_name = checkpoint_name
        self._write_manifest()
        self._wal.close()
        self._wal = new_wal
        self._wal_path(old_epoch).unlink(missing_ok=True)
        if old_checkpoint:
            (self.dir / old_checkpoint).unlink(missing_ok=True)
        self.stats.checkpoints += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._wal.close()
        self._closed = True

    def crash(self) -> None:
        """Simulate a process kill: drop the WAL handle with no final
        fsync, leave everything else exactly as it lies on disk."""
        if self._closed:
            return
        self._wal.crash()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


# ----------------------------------------------------------------------
# Directory-level helpers (used without opening an engine for append)
# ----------------------------------------------------------------------


def describe_data_dir(data_dir: str | Path) -> dict:
    """Read-only inspection of a data directory (the CLI's view).

    Replays the WAL without truncating, so describing a live or foreign
    directory never mutates it.
    """
    data_dir = Path(data_dir)
    manifest_path = data_dir / MANIFEST_NAME
    if not manifest_path.exists():
        return {"exists": False, "data_dir": str(data_dir)}
    manifest = json.loads(manifest_path.read_text())
    epoch = int(manifest["epoch"])
    checkpoint_name = manifest.get("checkpoint")
    stats = StorageStats()
    out: dict = {
        "exists": True,
        "data_dir": str(data_dir),
        "epoch": epoch,
        "checkpoint": None,
        "wal": None,
    }
    if checkpoint_name and (data_dir / checkpoint_name).exists():
        path = data_dir / checkpoint_name
        meta, sensors, cached = read_checkpoint(path, stats=stats)
        out["checkpoint"] = {
            "file": checkpoint_name,
            "bytes": path.stat().st_size,
            "pages": path.stat().st_size // max(1, _page_size_of(path)),
            "sensors": len(sensors),
            "cached_readings": len(cached),
            "clock_now": float(meta.get("clock_now", 0.0)),
        }
    wal_path = data_dir / f"wal-{epoch}.log"
    if wal_path.exists():
        records = wal_mod.replay(wal_path, stats=stats, truncate_torn_tail=False)
        registrations = sum(1 for r in records if r[0] == "sensor")
        batches = [r for r in records if r[0] == "batch"]
        out["wal"] = {
            "file": wal_path.name,
            "bytes": wal_path.stat().st_size,
            "records": len(records),
            "registrations": registrations,
            "batches": len(batches),
            "batched_readings": sum(len(r[2]) for r in batches),
            "torn_tail": stats.torn_tail_truncations > 0,
        }
    out["page_reads"] = stats.page_reads
    return out


def _page_size_of(path: Path) -> int:
    import struct

    with open(path, "rb") as f:
        head = f.read(16)
    if len(head) < 16:
        return 4096
    return struct.unpack_from("<I", head, 12)[0] or 4096


def stored_sensor_ids(config: StorageConfig) -> set[int]:
    """The sensor ids a data directory holds durably (empty when the
    directory has no state).  Read-only — used by the federation to
    detect that a re-partition invalidated a shard directory."""
    data_dir = config.path
    manifest_path = data_dir / MANIFEST_NAME
    if not manifest_path.exists():
        return set()
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError:
        return set()
    ids: set[int] = set()
    checkpoint_name = manifest.get("checkpoint")
    if checkpoint_name and (data_dir / checkpoint_name).exists():
        _, sensors, _ = read_checkpoint(data_dir / checkpoint_name)
        ids.update(s.sensor_id for s in sensors)
    wal_path = data_dir / f"wal-{int(manifest['epoch'])}.log"
    for record in wal_mod.replay(wal_path, truncate_torn_tail=False):
        if record[0] == "sensor":
            ids.add(int(record[1][0]))
    return ids


def wipe_data_dir(data_dir: str | Path) -> None:
    """Delete every engine-owned file in a data directory (manifest,
    checkpoints, WALs, relational spill), leaving the directory."""
    data_dir = Path(data_dir)
    if not data_dir.exists():
        return
    (data_dir / MANIFEST_NAME).unlink(missing_ok=True)
    for pattern in ("checkpoint-*.db", "wal-*.log", "tables.db"):
        for path in data_dir.glob(pattern):
            path.unlink()
