"""The slotted page file.

One file, fixed-size pages, every page CRC-checksummed so a torn or
corrupted write is *detected* on read instead of silently served.

Layout
------
Page 0 is the header page::

    u32 crc | 8s magic | u32 page_size | u32 page_count
            | u32 free_head | u32 catalog_len | catalog JSON

The catalog maps structure names (heaps, B+-trees) to their root page
ids and metadata — the page file's "system tables".  Data pages (ids
>= 1) are::

    u32 crc | u32 next | u32 used | payload (used bytes)

``next`` chains pages into streams (heap files, oversized B+-tree
nodes) and threads the free-list; 0 terminates (page 0 can never be a
data page).  The CRC covers everything after the checksum field, over
the full page, so a short write at the tail of the file is equally
detected.

The pager is deliberately *not* crash-safe on its own: callers that
need atomicity write fresh files and flip a manifest
(:mod:`repro.storage.engine`), or accept sync-granularity durability
(the relational spill).  What the pager guarantees is detection —
:class:`PageCorruptionError` instead of garbage.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

from repro.storage.stats import StorageStats

MAGIC = b"COLRPG1\x00"
_HEADER_FIXED = struct.Struct("<I8sIIII")  # crc, magic, page_size, count, free, cat_len
_DATA_FIXED = struct.Struct("<III")  # crc, next, used
DATA_HEADER_SIZE = _DATA_FIXED.size


class PageCorruptionError(RuntimeError):
    """A page failed its CRC or structural validation."""


class Pager:
    """A page file with a free-list and a named-structure catalog."""

    def __init__(
        self,
        path: str | Path,
        page_size: int = 4096,
        stats: StorageStats | None = None,
    ) -> None:
        self.path = Path(path)
        self.stats = stats if stats is not None else StorageStats()
        self._closed = False
        if self.path.exists() and self.path.stat().st_size > 0:
            self._file = open(self.path, "r+b")
            self._load_header(page_size)
        else:
            self.page_size = page_size
            self.page_count = 1
            self.free_head = 0
            self.catalog: dict[str, dict] = {}
            self._file = open(self.path, "w+b")
            self._flush_header()

    # ------------------------------------------------------------------
    # Header + catalog
    # ------------------------------------------------------------------
    def _load_header(self, expected_page_size: int) -> None:
        self._file.seek(0)
        raw = self._file.read(expected_page_size)
        self.stats.page_reads += 1
        if len(raw) < _HEADER_FIXED.size:
            raise PageCorruptionError(f"{self.path}: truncated header page")
        crc, magic, page_size, count, free_head, cat_len = _HEADER_FIXED.unpack_from(
            raw
        )
        if magic != MAGIC:
            raise PageCorruptionError(f"{self.path}: bad magic {magic!r}")
        if page_size != expected_page_size:
            # Not an error: the file knows its own page size.
            self._file.seek(0)
            raw = self._file.read(page_size)
        if len(raw) < page_size:
            raise PageCorruptionError(f"{self.path}: short header page")
        if crc != zlib.crc32(raw[4:page_size]):
            raise PageCorruptionError(f"{self.path}: header page CRC mismatch")
        body_start = _HEADER_FIXED.size
        if cat_len > page_size - body_start:
            raise PageCorruptionError(f"{self.path}: catalog length out of range")
        self.page_size = page_size
        self.page_count = count
        self.free_head = free_head
        try:
            self.catalog = json.loads(
                raw[body_start : body_start + cat_len].decode("utf-8")
            ) if cat_len else {}
        except ValueError as exc:
            raise PageCorruptionError(f"{self.path}: malformed catalog") from exc

    def _flush_header(self) -> None:
        body = json.dumps(self.catalog, sort_keys=True).encode("utf-8")
        if _HEADER_FIXED.size + len(body) > self.page_size:
            raise ValueError(
                f"catalog too large for one {self.page_size}-byte header page"
            )
        page = bytearray(self.page_size)
        _HEADER_FIXED.pack_into(
            page, 0, 0, MAGIC, self.page_size, self.page_count, self.free_head,
            len(body),
        )
        page[_HEADER_FIXED.size : _HEADER_FIXED.size + len(body)] = body
        struct.pack_into("<I", page, 0, zlib.crc32(bytes(page[4:])))
        self._file.seek(0)
        self._file.write(bytes(page))
        self.stats.page_writes += 1

    def catalog_get(self, name: str) -> dict | None:
        entry = self.catalog.get(name)
        return dict(entry) if entry is not None else None

    def catalog_put(self, name: str, entry: dict) -> None:
        self.catalog[name] = dict(entry)
        self._flush_header()

    def catalog_delete(self, name: str) -> None:
        if name in self.catalog:
            del self.catalog[name]
            self._flush_header()

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Payload bytes one data page holds."""
        return self.page_size - DATA_HEADER_SIZE

    def allocate(self) -> int:
        """A free data page id: popped from the free-list, or a fresh
        page appended to the file."""
        if self.free_head:
            page_id = self.free_head
            _, self.free_head = self.read(page_id)
            self._flush_header()
            return page_id
        page_id = self.page_count
        self.page_count += 1
        self.write(page_id, b"", 0)
        self._flush_header()
        return page_id

    def free(self, page_id: int) -> None:
        """Return one page to the free-list."""
        self._check_id(page_id)
        self.write(page_id, b"", self.free_head)
        self.free_head = page_id
        self._flush_header()

    def free_chain(self, head: int) -> int:
        """Free every page of a chain; returns how many were freed."""
        freed = 0
        page_id = head
        while page_id:
            _, next_id = self.read(page_id)
            self.free(page_id)
            freed += 1
            page_id = next_id
        return freed

    def write(self, page_id: int, payload: bytes, next_page: int = 0) -> None:
        self._check_id(page_id, allow_new=True)
        if len(payload) > self.capacity:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds page capacity "
                f"{self.capacity}"
            )
        page = bytearray(self.page_size)
        _DATA_FIXED.pack_into(page, 0, 0, next_page, len(payload))
        page[DATA_HEADER_SIZE : DATA_HEADER_SIZE + len(payload)] = payload
        struct.pack_into("<I", page, 0, zlib.crc32(bytes(page[4:])))
        self._file.seek(page_id * self.page_size)
        self._file.write(bytes(page))
        self.stats.page_writes += 1

    def read(self, page_id: int) -> tuple[bytes, int]:
        """One page's ``(payload, next)``; raises on CRC mismatch."""
        self._check_id(page_id)
        self._file.seek(page_id * self.page_size)
        raw = self._file.read(self.page_size)
        self.stats.page_reads += 1
        if len(raw) < self.page_size:
            raise PageCorruptionError(
                f"{self.path}: short read of page {page_id} (torn tail)"
            )
        crc, next_page, used = _DATA_FIXED.unpack_from(raw)
        if crc != zlib.crc32(raw[4:]):
            raise PageCorruptionError(f"{self.path}: CRC mismatch on page {page_id}")
        if used > self.capacity:
            raise PageCorruptionError(
                f"{self.path}: page {page_id} claims {used} payload bytes"
            )
        return raw[DATA_HEADER_SIZE : DATA_HEADER_SIZE + used], next_page

    def _check_id(self, page_id: int, allow_new: bool = False) -> None:
        limit = self.page_count if not allow_new else self.page_count + 1
        if not 1 <= page_id < max(limit, 2):
            raise ValueError(f"page id {page_id} out of range (count {self.page_count})")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync(self, fsync: bool = True) -> None:
        """Flush the header and OS buffers to stable storage."""
        self._flush_header()
        self._file.flush()
        if fsync:
            import os

            os.fsync(self._file.fileno())

    def close(self, fsync: bool = True) -> None:
        if self._closed:
            return
        self.sync(fsync=fsync)
        self._file.close()
        self._closed = True

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
