"""Checkpoint files: one immutable page file per checkpoint.

A checkpoint captures everything a portal needs to resume — the
registered sensors, the cached readings with their fetch times, and a
small meta record (clock, config fingerprint) — as three record heaps
inside one page file.  Checkpoints are written whole to a fresh file
and then flipped into the manifest, so a crash mid-checkpoint can never
tear the previous one.

The same container doubles as persistence format v2
(:mod:`repro.persistence`): a snapshot file *is* a single-file
checkpoint.

Cached readings are stored sorted by ``(fetched_at, sensor_id)`` and
re-installed grouped by ``fetched_at`` through the grouped-delta batch
ingestion path.  Leaf contents, per-slot counts, min/max and result
weights reproduce bit-identically; a slot's ``total`` agrees up to
float summation order (the same association caveat batched ingestion
documents in :meth:`repro.core.tree.COLRTree.insert_readings_batch`).
WAL replay, by contrast, preserves the original batch boundaries
exactly, so crash recovery of an un-checkpointed portal is
bit-identical *including* totals.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.geometry import GeoPoint
from repro.sensors.sensor import Reading, Sensor
from repro.storage.heap import RecordHeap
from repro.storage.pager import MAGIC, Pager
from repro.storage.stats import StorageStats

# ----------------------------------------------------------------------
# Record codecs (shared with the WAL)
# ----------------------------------------------------------------------


def sensor_record(sensor: Sensor) -> tuple:
    return (
        sensor.sensor_id,
        sensor.location.x,
        sensor.location.y,
        sensor.expiry_seconds,
        sensor.sensor_type,
        sensor.availability,
        tuple(sensor.metadata),
    )


def sensor_from_record(record: tuple) -> Sensor:
    sid, x, y, expiry, sensor_type, availability, metadata = record
    return Sensor(
        sensor_id=int(sid),
        location=GeoPoint(float(x), float(y)),
        expiry_seconds=float(expiry),
        sensor_type=str(sensor_type),
        availability=float(availability),
        metadata=tuple((str(k), str(v)) for k, v in metadata),
    )


def reading_record(reading: Reading) -> tuple:
    return (reading.sensor_id, reading.value, reading.timestamp, reading.expires_at)


def reading_from_record(record: tuple) -> Reading:
    sid, value, timestamp, expires_at = record
    return Reading(
        sensor_id=int(sid),
        value=float(value),
        timestamp=float(timestamp),
        expires_at=float(expires_at),
    )


def _dumps(obj: object) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Checkpoint container
# ----------------------------------------------------------------------


def is_checkpoint_file(path: str | Path) -> bool:
    """Sniff the page-file magic (offset 4, after the header CRC)."""
    try:
        with open(path, "rb") as f:
            head = f.read(4 + len(MAGIC))
    except OSError:
        return False
    return len(head) == 4 + len(MAGIC) and head[4:] == MAGIC


def write_checkpoint(
    path: str | Path,
    meta: dict,
    sensors: list[Sensor],
    cached: list[tuple[Reading, float]],
    page_size: int = 4096,
    stats: StorageStats | None = None,
    fsync: bool = True,
) -> None:
    """Write one whole checkpoint file (truncating any existing file)."""
    path = Path(path)
    if path.exists():
        path.unlink()
    pager = Pager(path, page_size=page_size, stats=stats)
    try:
        RecordHeap(pager, "meta").append(_dumps(dict(meta)))
        RecordHeap(pager, "sensors").append_many(
            _dumps(sensor_record(s))
            for s in sorted(sensors, key=lambda s: s.sensor_id)
        )
        ordered = sorted(cached, key=lambda rf: (rf[1], rf[0].sensor_id))
        RecordHeap(pager, "readings").append_many(
            _dumps((reading_record(r), fetched_at)) for r, fetched_at in ordered
        )
    finally:
        pager.close(fsync=fsync)


def read_checkpoint(
    path: str | Path,
    stats: StorageStats | None = None,
) -> tuple[dict, list[Sensor], list[tuple[Reading, float]]]:
    """Load ``(meta, sensors, cached_readings)`` from a checkpoint file.

    ``cached_readings`` come back in stored order — sorted by
    ``(fetched_at, sensor_id)`` — ready to group into priming batches.
    """
    pager = Pager(Path(path), stats=stats)
    try:
        meta_records = RecordHeap(pager, "meta").read_all()
        meta = pickle.loads(meta_records[0]) if meta_records else {}
        sensors = [
            sensor_from_record(pickle.loads(rec))
            for rec in RecordHeap(pager, "sensors").records()
        ]
        cached = []
        for rec in RecordHeap(pager, "readings").records():
            reading_rec, fetched_at = pickle.loads(rec)
            cached.append((reading_from_record(reading_rec), float(fetched_at)))
    finally:
        pager.close(fsync=False)
    return meta, sensors, cached


def group_by_fetch(
    cached: list[tuple[Reading, float]],
) -> list[tuple[float, list[Reading]]]:
    """Priming batches: one batch per distinct ``fetched_at``, ascending."""
    batches: list[tuple[float, list[Reading]]] = []
    for reading, fetched_at in sorted(
        cached, key=lambda rf: (rf[1], rf[0].sensor_id)
    ):
        if batches and batches[-1][0] == fetched_at:
            batches[-1][1].append(reading)
        else:
            batches.append((fetched_at, [reading]))
    return batches
