"""Storage-engine tunables.

``StorageConfig`` is the single opt-in knob: handing one to
``SensorMapPortal`` (or ``FederatedPortal``, which derives per-shard
sub-directories with :meth:`StorageConfig.for_shard`) turns the
in-memory portal into a durable one.  The cost constants convert
recovery work (checkpoint pages read, WAL records replayed) into
deterministic modeled seconds, exactly like
:class:`~repro.core.stats.ProcessingCostModel` converts query work —
so ``revive_shard`` can charge real recovery time to the gather clock
without depending on host speed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path


@dataclass(frozen=True)
class StorageConfig:
    """Where and how a portal persists its state.

    Parameters
    ----------
    data_dir:
        Directory holding the manifest, checkpoint page file and WAL.
        Created on first open.  Federations place shard ``i`` under
        ``data_dir/shard-<i>``.
    page_size:
        Page file granularity in bytes (power of two, >= 256).
    wal_fsync_batch:
        Group-commit width: one ``fsync`` per this many WAL appends.
        Every append is still flushed to the OS, so a process kill
        (SIGKILL) loses nothing; the batch only bounds what an *OS*
        crash could lose.
    fsync_enabled:
        ``False`` skips all fsyncs (tests and benchmarks that only
        simulate process crashes can run faster; durability against OS
        crashes is then off).
    per_page_read_seconds / per_wal_record_seconds:
        Recovery cost model: modeled seconds per checkpoint page read
        and per WAL record re-applied on open.
    """

    data_dir: str | Path
    page_size: int = 4096
    wal_fsync_batch: int = 32
    fsync_enabled: bool = True
    per_page_read_seconds: float = 100e-6
    per_wal_record_seconds: float = 20e-6

    def __post_init__(self) -> None:
        if self.page_size < 256 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a power of two >= 256")
        if self.wal_fsync_batch < 1:
            raise ValueError("wal_fsync_batch must be positive")

    @property
    def path(self) -> Path:
        return Path(self.data_dir)

    def for_shard(self, shard_id: int) -> "StorageConfig":
        """The derived config of one federation shard: same tunables,
        sub-directory ``shard-<id>`` of the federation's data dir."""
        return replace(self, data_dir=self.path / f"shard-{shard_id}")
