"""Paged, crash-safe storage under the portal.

The deployed portal (Section III) keeps its slot caches in SQL Server;
this package gives the reproduction the same durability posture without
a database server: a slotted page file with CRC-checksummed 4 KiB pages
and a free-list (:mod:`repro.storage.pager`), heap/sequential record
files over page chains (:mod:`repro.storage.heap`), a paged B+-tree the
relational layer tables spill to (:mod:`repro.storage.bplus`), a
redo-only fsync-batched write-ahead log journaling trigger-driven
slot-cache updates (:mod:`repro.storage.wal`), and the engine tying
them together with atomic checkpoints and crash recovery
(:mod:`repro.storage.engine`).

Everything is opt-in: ``SensorMapPortal(storage=StorageConfig(...))``
turns it on; the default ``storage=None`` portal is bit-identical to
the historical in-memory behavior.
"""

from repro.storage.bplus import BPlusTree, PagedTableBacking
from repro.storage.config import StorageConfig
from repro.storage.engine import (
    RecoveredState,
    StorageEngine,
    stored_sensor_ids,
    wipe_data_dir,
)
from repro.storage.heap import RecordHeap
from repro.storage.pager import PageCorruptionError, Pager
from repro.storage.stats import StorageStats
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BPlusTree",
    "PageCorruptionError",
    "PagedTableBacking",
    "Pager",
    "RecordHeap",
    "RecoveredState",
    "StorageConfig",
    "StorageEngine",
    "StorageStats",
    "WriteAheadLog",
    "stored_sensor_ids",
    "wipe_data_dir",
]
