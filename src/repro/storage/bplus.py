"""A paged B+-tree.

The relational layer's tables spill here: each table maps to one named
B+-tree inside a shared page file, keyed by the encoded primary key.
Nodes are pickled and stored on page chains (a node larger than one
page simply spans several), and the node's *head page id* is its stable
identity — rewriting a node reuses its chain, so parent pointers never
go stale.

Keys and values are opaque byte strings; the tree only needs a
consistent total order, and bytes compare consistently.  Deletion is
lazy (no rebalancing): an underfull node is tolerated, which keeps the
on-disk format append-friendly and is fine for the portal's
workload — registrations vastly outnumber withdrawals.
"""

from __future__ import annotations

import pickle
import struct
from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.storage.pager import PageCorruptionError, Pager

_LEN = struct.Struct("<I")

_LEAF = "L"
_INNER = "I"


class BPlusTree:
    """A named B+-tree of byte keys/values inside a page file."""

    def __init__(self, pager: Pager, name: str, order: int = 64) -> None:
        if order < 4:
            raise ValueError("order must be >= 4")
        self.pager = pager
        self.name = name
        self._key = f"bplus:{name}"
        entry = pager.catalog_get(self._key)
        if entry is None:
            root = self._write_node(0, (_LEAF, [], [], 0))
            entry = {"root": root, "count": 0, "order": order}
            pager.catalog_put(self._key, entry)
        self.root = int(entry["root"])
        self.count = int(entry["count"])
        self.order = int(entry["order"])

    def __len__(self) -> int:
        return self.count

    # ------------------------------------------------------------------
    # Node I/O: a pickled node on a page chain headed by its id
    # ------------------------------------------------------------------
    def _read_node(self, head: int) -> tuple:
        stream = bytearray()
        page_id = head
        total: int | None = None
        while page_id:
            payload, page_id = self.pager.read(page_id)
            stream.extend(payload)
            if total is None and len(stream) >= _LEN.size:
                (total,) = _LEN.unpack_from(stream)
            if total is not None and len(stream) >= _LEN.size + total:
                break
        if total is None or len(stream) < _LEN.size + total:
            raise PageCorruptionError(
                f"bplus {self.name!r}: node {head} chain is incomplete"
            )
        return pickle.loads(bytes(stream[_LEN.size : _LEN.size + total]))

    def _chain_ids(self, head: int) -> list[int]:
        ids = []
        page_id = head
        while page_id:
            ids.append(page_id)
            _, page_id = self.pager.read(page_id)
        return ids

    def _write_node(self, head: int, node: tuple) -> int:
        """Write a node over its chain (allocating/freeing as needed);
        returns the head page id (freshly allocated when ``head`` is 0)."""
        blob = pickle.dumps(node, protocol=pickle.HIGHEST_PROTOCOL)
        data = _LEN.pack(len(blob)) + blob
        capacity = self.pager.capacity
        chunks = [data[i : i + capacity] for i in range(0, len(data), capacity)]
        ids = self._chain_ids(head) if head else []
        while len(ids) < len(chunks):
            ids.append(self.pager.allocate())
        for surplus in ids[len(chunks) :]:
            self.pager.free(surplus)
        ids = ids[: len(chunks)]
        for i, chunk in enumerate(chunks):
            next_id = ids[i + 1] if i + 1 < len(ids) else 0
            self.pager.write(ids[i], chunk, next_id)
        return ids[0]

    def _free_node(self, head: int) -> None:
        self.pager.free_chain(head)

    def _save(self) -> None:
        self.pager.catalog_put(
            self._key, {"root": self.root, "count": self.count, "order": self.order}
        )

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        node = self._read_node(self._find_leaf(key))
        keys = node[1]
        idx = bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            return node[2][idx]
        return None

    def put(self, key: bytes, value: bytes) -> None:
        path = self._descend(key)
        leaf_id = path[-1][0]
        kind, keys, values, next_leaf = self._read_node(leaf_id)
        assert kind == _LEAF
        idx = bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            values[idx] = value
            self._write_node(leaf_id, (_LEAF, keys, values, next_leaf))
            return
        keys.insert(idx, key)
        values.insert(idx, value)
        self.count += 1
        if len(keys) <= self.order:
            self._write_node(leaf_id, (_LEAF, keys, values, next_leaf))
            self._save()
            return
        # Split the leaf; the right sibling takes the upper half and the
        # separator is its first key.
        mid = len(keys) // 2
        right_id = self._write_node(
            0, (_LEAF, keys[mid:], values[mid:], next_leaf)
        )
        self._write_node(leaf_id, (_LEAF, keys[:mid], values[:mid], right_id))
        self._insert_into_parent(path[:-1], leaf_id, keys[mid], right_id)
        self._save()

    def delete(self, key: bytes) -> bool:
        """Remove a key; returns whether it was present.  Lazy: no
        rebalancing, empty leaves persist as chain links."""
        leaf_id = self._find_leaf(key)
        kind, keys, values, next_leaf = self._read_node(leaf_id)
        assert kind == _LEAF
        idx = bisect_left(keys, key)
        if idx >= len(keys) or keys[idx] != key:
            return False
        del keys[idx]
        del values[idx]
        self._write_node(leaf_id, (_LEAF, keys, values, next_leaf))
        self.count -= 1
        self._save()
        return True

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Every (key, value) in key order via the leaf chain."""
        node = self._read_node(self.root)
        while node[0] == _INNER:
            node = self._read_node(node[2][0])
        while True:
            _, keys, values, next_leaf = node
            yield from zip(keys, values)
            if not next_leaf:
                return
            node = self._read_node(next_leaf)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find_leaf(self, key: bytes) -> int:
        node_id = self.root
        node = self._read_node(node_id)
        while node[0] == _INNER:
            node_id = node[2][bisect_right(node[1], key)]
            node = self._read_node(node_id)
        return node_id

    def _descend(self, key: bytes) -> list[tuple[int, tuple]]:
        """Root-to-leaf path as (node_id, node) pairs."""
        path = []
        node_id = self.root
        node = self._read_node(node_id)
        path.append((node_id, node))
        while node[0] == _INNER:
            node_id = node[2][bisect_right(node[1], key)]
            node = self._read_node(node_id)
            path.append((node_id, node))
        return path

    def _insert_into_parent(
        self,
        ancestors: list[tuple[int, tuple]],
        left_id: int,
        separator: bytes,
        right_id: int,
    ) -> None:
        if not ancestors:
            self.root = self._write_node(
                0, (_INNER, [separator], [left_id, right_id])
            )
            return
        parent_id, node = ancestors[-1]
        kind, keys, children = node
        assert kind == _INNER
        idx = children.index(left_id)
        keys.insert(idx, separator)
        children.insert(idx + 1, right_id)
        if len(keys) <= self.order:
            self._write_node(parent_id, (_INNER, keys, children))
            return
        mid = len(keys) // 2
        up = keys[mid]
        right = self._write_node(0, (_INNER, keys[mid + 1 :], children[mid + 1 :]))
        self._write_node(parent_id, (_INNER, keys[:mid], children[: mid + 1]))
        self._insert_into_parent(ancestors[:-1], parent_id, up, right)


class PagedTableBacking:
    """Write-through persistence of one relational table.

    ``Table`` keeps serving reads from its in-memory rows; every store /
    erase mirrors into the B+-tree, and a reopened database reloads the
    rows from here before serving.
    """

    def __init__(self, tree: BPlusTree) -> None:
        self.tree = tree

    @staticmethod
    def _encode_key(key: tuple) -> bytes:
        return pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)

    def store(self, key: tuple, row: dict) -> None:
        self.tree.put(
            self._encode_key(key),
            pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def erase(self, key: tuple) -> None:
        self.tree.delete(self._encode_key(key))

    def rows(self) -> list[dict]:
        """Every persisted row (order: encoded-key byte order)."""
        return [pickle.loads(value) for _, value in self.tree.items()]

    def clear(self) -> None:
        """Drop every persisted row (table drop)."""
        for key, _ in list(self.tree.items()):
            self.tree.delete(key)
