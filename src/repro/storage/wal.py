"""The redo-only write-ahead log.

Every acknowledged slot-cache ingestion appends one record; recovery
replays the records (in order) on top of the last checkpoint.  Records
are pickled payloads framed as ``u32 len | u32 crc32 | payload`` after
an 8-byte magic header, so a torn tail — a crash mid-append — is
detected by length or CRC and truncated instead of replayed.

Durability contract
-------------------
``append`` always flushes Python's buffer to the OS, so a *process*
kill (SIGKILL, the failure the kill/revive benchmarks simulate) loses
nothing that was acknowledged.  ``fsync`` runs once per
``fsync_batch`` appends (group commit): an *OS* crash can lose at most
the last unsynced batch, which recovery's prefix property absorbs.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path

from repro.storage.stats import StorageStats

MAGIC = b"COLRWAL1"
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


class WriteAheadLog:
    """An append-only journal of redo records."""

    def __init__(
        self,
        path: str | Path,
        stats: StorageStats | None = None,
        fsync_batch: int = 32,
        fsync_enabled: bool = True,
    ) -> None:
        self.path = Path(path)
        self.stats = stats if stats is not None else StorageStats()
        self.fsync_batch = max(1, int(fsync_batch))
        self.fsync_enabled = fsync_enabled
        self._pending = 0
        self._closed = False
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._file = open(self.path, "ab")
        if fresh:
            self._file.write(MAGIC)
            self._file.flush()
            self._fsync()

    def _fsync(self) -> None:
        if self.fsync_enabled:
            os.fsync(self._file.fileno())
            self.stats.wal_fsyncs += 1
        self._pending = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, record: object) -> None:
        """Journal one record: frame, flush to the OS, group-commit."""
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._file.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        self._file.write(payload)
        self._file.flush()
        self.stats.wal_appends += 1
        self._pending += 1
        if self._pending >= self.fsync_batch:
            self._fsync()

    def sync(self) -> None:
        """Force the group-commit boundary (checkpoint/close path)."""
        self._file.flush()
        if self._pending:
            self._fsync()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        self._file.close()
        self._closed = True

    def crash(self) -> None:
        """Abandon the log the way a killed process would: no final
        fsync, no cleanup — just drop the file handle."""
        if self._closed:
            return
        self._file.close()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def replay(
    path: str | Path,
    stats: StorageStats | None = None,
    truncate_torn_tail: bool = True,
) -> list[object]:
    """Read every intact record of a WAL file, in append order.

    A torn tail — short frame, short payload, or CRC mismatch — ends
    the replay at the last intact record; with ``truncate_torn_tail``
    the file is truncated there so the next append writes over the
    garbage.  A missing file replays as empty.
    """
    path = Path(path)
    if stats is None:
        stats = StorageStats()
    if not path.exists():
        return []
    records: list[object] = []
    with open(path, "r+b") as f:
        header = f.read(len(MAGIC))
        if header != MAGIC:
            # Unrecognizable header: treat the whole file as torn.
            if truncate_torn_tail:
                f.seek(0)
                f.truncate(0)
                f.write(MAGIC)
                stats.torn_tail_truncations += 1
            return []
        good_offset = f.tell()
        torn = False
        while True:
            frame = f.read(_FRAME.size)
            if not frame:
                break
            if len(frame) < _FRAME.size:
                torn = True
                break
            length, crc = _FRAME.unpack(frame)
            payload = f.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                torn = True
                break
            try:
                records.append(pickle.loads(payload))
            except Exception:
                torn = True
                break
            good_offset = f.tell()
        if torn:
            stats.torn_tail_truncations += 1
            if truncate_torn_tail:
                f.truncate(good_offset)
        stats.wal_records_replayed += len(records)
    return records
