"""The evaluation's comparison systems (Section VII).

* ``plain_rtree`` — a standard R-tree range lookup that probes every
  matching sensor (no caching, no sampling): COLR-Tree with both
  features disabled.
* ``hierarchical_cache`` — slot caches at every node plus a standard
  range query (caching without sampling).
* ``FlatCache`` — the unindexed strawman: a single pool of raw readings
  scanned in full for every query, probing relevant sensors whose
  cached reading is missing or stale.

The first two share all of COLR-Tree's code (they are configurations of
the same index, exactly as in the paper's experiments); the flat cache
is its own small implementation because it has no tree to share.
"""

from repro.baselines.flat_cache import FlatCache
from repro.baselines.factory import (
    full_colr_tree,
    hierarchical_cache,
    plain_rtree,
)

__all__ = ["FlatCache", "full_colr_tree", "hierarchical_cache", "plain_rtree"]
