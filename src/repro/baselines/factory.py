"""Factories for the three indexed configurations under evaluation."""

from __future__ import annotations

from typing import Sequence

from repro.core.config import COLRTreeConfig
from repro.core.stats import ProcessingCostModel
from repro.core.tree import COLRTree
from repro.sensors.availability import AvailabilityModel
from repro.sensors.network import SensorNetwork
from repro.sensors.sensor import Sensor


def plain_rtree(
    sensors: Sequence[Sensor],
    config: COLRTreeConfig,
    network: SensorNetwork,
    availability_model: AvailabilityModel | None = None,
    cost_model: ProcessingCostModel | None = None,
) -> COLRTree:
    """The "regular R-Tree" configuration: no caching, no sampling."""
    return COLRTree(
        sensors,
        config.as_plain_rtree(),
        network=network,
        availability_model=availability_model,
        cost_model=cost_model,
    )


def hierarchical_cache(
    sensors: Sequence[Sensor],
    config: COLRTreeConfig,
    network: SensorNetwork,
    availability_model: AvailabilityModel | None = None,
    cost_model: ProcessingCostModel | None = None,
) -> COLRTree:
    """Slot caches + standard range query (no sampling)."""
    return COLRTree(
        sensors,
        config.as_hierarchical_cache(),
        network=network,
        availability_model=availability_model,
        cost_model=cost_model,
    )


def full_colr_tree(
    sensors: Sequence[Sensor],
    config: COLRTreeConfig,
    network: SensorNetwork,
    availability_model: AvailabilityModel | None = None,
    cost_model: ProcessingCostModel | None = None,
) -> COLRTree:
    """The full-fledged index: caching and sampling enabled."""
    return COLRTree(
        sensors,
        config,
        network=network,
        availability_model=availability_model,
        cost_model=cost_model,
    )
