"""The flat-cache baseline.

The simplest collection-aware design Section VII compares against: one
pool of raw sensor readings (no aggregates, no index) scanned in full
for every query.  Sensors inside the region whose cached reading is
missing, expired or stale are probed; everything else is served from
the pool.  There is no sampling, so large regions probe every matching
sensor on a cold cache — which is exactly why its probe counts and scan
latencies dominate the Figure 4 ratios.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.lookup import QueryAnswer, Region, region_bbox
from repro.core.stats import ProcessingCostModel, QueryStats, TreeStats
from repro.sensors.network import SensorNetwork
from repro.sensors.sensor import Reading, Sensor


class FlatCache:
    """An unindexed reading pool with the same query interface shape as
    :class:`~repro.core.tree.COLRTree` (region, now, staleness)."""

    def __init__(
        self,
        sensors: Sequence[Sensor],
        network: SensorNetwork,
        cost_model: ProcessingCostModel | None = None,
        cache_capacity: int | None = None,
    ) -> None:
        self._sensors = list(sensors)
        # Vectorized directory coordinates: the full scan the flat cache
        # pays per query is charged to readings_scanned either way, but
        # numpy keeps paper-scale populations tractable to simulate.
        self._xs = np.array([s.location.x for s in self._sensors])
        self._ys = np.array([s.location.y for s in self._sensors])
        self.network = network
        self.cost_model = cost_model if cost_model is not None else ProcessingCostModel()
        self.cache_capacity = cache_capacity
        self._pool: dict[int, tuple[Reading, float]] = {}
        self.stats = TreeStats()

    def __len__(self) -> int:
        return len(self._sensors)

    @property
    def cached_reading_count(self) -> int:
        return len(self._pool)

    def query(
        self,
        region: Region,
        now: float,
        max_staleness: float,
        sample_size: int | None = None,
    ) -> QueryAnswer:
        """Scan the pool, probe uncovered matching sensors.

        ``sample_size`` is accepted for interface parity but ignored —
        the flat cache has no sampling machinery.
        """
        del sample_size
        answer = QueryAnswer()
        stats = answer.stats
        # Full scan of the pool: the scan cost the paper's latency plots
        # penalize.  Expired entries are dropped as they are met.
        stats.readings_scanned += len(self._pool)
        fresh: dict[int, Reading] = {}
        for sensor_id in list(self._pool):
            reading, _ = self._pool[sensor_id]
            if not reading.is_valid_at(now):
                del self._pool[sensor_id]
                continue
            if now - reading.timestamp <= max_staleness:
                fresh[sensor_id] = reading
        # Linear scan of the sensor directory for the spatial filter —
        # there is no index to prune with.
        stats.readings_scanned += len(self._sensors)
        bbox = region_bbox(region)
        mask = (
            (self._xs >= bbox.min_x)
            & (self._xs <= bbox.max_x)
            & (self._ys >= bbox.min_y)
            & (self._ys <= bbox.max_y)
        )
        to_probe: list[int] = []
        for idx in np.flatnonzero(mask):
            sensor = self._sensors[int(idx)]
            if not region.contains_point(sensor.location):
                continue
            cached = fresh.get(sensor.sensor_id)
            if cached is not None:
                answer.cached_readings.append(cached)
            else:
                to_probe.append(sensor.sensor_id)
        if to_probe:
            result = self.network.probe(to_probe, now)
            stats.sensors_probed += len(to_probe)
            stats.probe_successes += len(result.readings)
            stats.probe_batches += 1
            stats.collection_latency_seconds += result.latency_seconds
            for reading in result.readings.values():
                self._pool[reading.sensor_id] = (reading, now)
                stats.maintenance_ops += 1
                answer.probed_readings.append(reading)
            self._enforce_capacity()
        self.stats.record(stats)
        return answer

    def processing_seconds(self, stats: QueryStats) -> float:
        return self.cost_model.processing_seconds(stats)

    def _enforce_capacity(self) -> None:
        """Least-recently-fetched eviction over the whole pool (it has
        no slots to scope the policy to)."""
        if self.cache_capacity is None:
            return
        overflow = len(self._pool) - self.cache_capacity
        if overflow <= 0:
            return
        victims = sorted(self._pool.items(), key=lambda kv: kv[1][1])[:overflow]
        for sensor_id, _ in victims:
            del self._pool[sensor_id]
