"""Federated Theorem 2 *during* rebalancing.

PR 5's Monte-Carlo suite pinned flat inclusion probability across
skewed static partitions.  Live rebalancing restages shards and
rewrites the directory mid-flight, so the same guarantee is re-checked
at two-phase checkpoints: at ``prepared`` (replacements staged, old
directory still serving), at ``committed`` (flipped), and after the
loop settles.  Whatever membership a checkpoint observes, repeated
sampling must include every shard's sensors at the uniform ``R/N``
within the share-quantization + binomial tolerance of the original
harness — a migration that skewed inclusion toward (or away from)
restaged shards fails here.

The skew device, fleet builder and tolerance arithmetic are imported
from the PR-5 harness (``tests/federation/test_sampling_guarantees``)
rather than re-derived, so the two suites cannot drift apart.
"""

from __future__ import annotations

import math

from repro.portal import SensorQuery
from repro.rebalance import RebalanceConfig, Rebalancer

from tests.federation.test_sampling_guarantees import (
    WHOLE,
    _included_ids,
    _skewed_portal,
)

N_SENSORS = 900
TARGET = 150
REPEATS = 30


def _assert_uniform_inclusion(fed, label: str) -> None:
    """The PR-5 per-shard check against the fed's *current* directory:
    inclusion frequency within 1/n_i quantization + 5-sigma binomial of
    the global rate, for every shard."""
    query = SensorQuery(
        region=WHOLE, staleness_seconds=600.0, sample_size=TARGET
    )
    counts: dict[int, int] = {}
    for _ in range(REPEATS):
        for sid in _included_ids(fed.execute(query)):
            counts[sid] = counts.get(sid, 0) + 1
    p = TARGET / len(fed.registry)
    for entry in fed.directory.entries():
        members = [s.sensor_id for s in fed.shard_members(entry.shard_id)]
        n_i = len(members)
        freq = sum(counts.get(sid, 0) for sid in members) / (REPEATS * n_i)
        sigma = math.sqrt(p * (1.0 - p) / (REPEATS * n_i))
        tolerance = 1.0 / n_i + 5.0 * sigma
        assert abs(freq - p) <= tolerance, (
            f"{label}: shard {entry.shard_id} (n={n_i}) inclusion "
            f"{freq:.4f} vs uniform {p:.4f} (tolerance {tolerance:.4f})"
        )


class TestUniformityDuringRebalance:
    def test_inclusion_stays_flat_at_two_phase_checkpoints(self):
        fed = _skewed_portal(N_SENSORS, 4, seed=7)
        populations = [e.weight for e in fed.directory.entries()]
        assert max(populations) >= 2 * min(populations)

        checkpoints: list[str] = []

        def on_phase(phase: str) -> None:
            checkpoints.append(phase)
            _assert_uniform_inclusion(fed, f"step{len(checkpoints)}:{phase}")

        rebalancer = Rebalancer(
            fed,
            RebalanceConfig(max_moves_per_step=N_SENSORS // 8),
            on_phase=on_phase,
        )
        initial = rebalancer.imbalance()
        rebalancer.run(max_steps=4)
        assert "prepared" in checkpoints and "committed" in checkpoints
        assert rebalancer.imbalance() < initial
        _assert_uniform_inclusion(fed, "settled")
        rebalancer.verify_invariants()

    def test_inclusion_flat_after_split_and_merge(self):
        """The shard count itself changing (split of the heaviest, merge
        of the lightest) must not dent per-shard inclusion."""
        fed = _skewed_portal(N_SENSORS, 4, seed=11)
        rebalancer = Rebalancer(fed)
        heavy = max(
            range(len(fed.directory)),
            key=lambda i: fed.directory.entry(i).weight,
        )
        rebalancer.mover.split(heavy)
        _assert_uniform_inclusion(fed, "after-split")
        light = min(
            range(len(fed.directory)),
            key=lambda i: fed.directory.entry(i).weight,
        )
        partner = rebalancer._nearest_alive(light)
        rebalancer.mover.merge(light, partner)
        _assert_uniform_inclusion(fed, "after-merge")
        rebalancer.verify_invariants()
