"""Property-based invariants of the migration engine.

Hypothesis drives random sequences of move / split / merge / join /
leave operations against a small federation and checks, after every
sequence, the contract the whole subsystem rests on:

* every registered sensor has exactly one owner (no orphans, no
  duplicates, shard groups partition the registry);
* every shard's directory MBR covers its population and its weight
  equals its population;
* ``split_target`` shares over the live directory sum exactly to any
  requested target (conservation-exact scatter splitting survives any
  membership history);
* shard ids stay dense after any amount of split/merge/leave churn.

Operations are drawn as raw integers and interpreted modulo the live
state, so every drawn sequence is executable — shrinking stays
meaningful instead of tripping validation errors.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import COLRTreeConfig
from repro.federation import FederatedPortal
from repro.federation.directory import ShardDirectory
from repro.geometry import GeoPoint
from repro.rebalance import JoinSpec, Rebalancer, ShardMover

from tests.rebalance.conftest import EXTENT, WHOLE

# One op = (kind, a, b, c); integers are reduced modulo live state.
_OP = st.tuples(
    st.sampled_from(["move", "split", "merge", "join", "leave"]),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=12),
)


def _build_fed(n: int = 60, n_shards: int = 3, seed: int = 0) -> FederatedPortal:
    fed = FederatedPortal(
        n_shards=n_shards,
        config=COLRTreeConfig(caching_enabled=False, oversampling_enabled=False),
        max_sensors_per_query=None,
        network_options={"latency_jitter": 0.0},
    )
    rng = np.random.default_rng(seed)
    for x, y in rng.random((n, 2)) * EXTENT:
        fed.register_sensor(
            GeoPoint(float(x), float(y)),
            expiry_seconds=600.0,
            availability=1.0,
        )
    fed.rebuild_index()
    return fed


def _apply(mover: ShardMover, op: tuple) -> str | None:
    """Interpret one drawn op against the live state; returns the op
    actually performed (None when the draw degenerates to a no-op)."""
    fed = mover.fed
    kind, a, b, c = op
    n = len(fed.directory)
    if kind == "move" and n >= 2:
        src = a % n
        dst = (src + 1 + b % (n - 1)) % n
        members = sorted(s.sensor_id for s in fed.shard_members(src))
        batch = min(c, len(members) - 1)
        if batch >= 1:
            mover.move(members[:batch], src, dst)
            return "move"
    elif kind == "split":
        shard = a % n
        if fed.directory.entry(shard).weight >= 2:
            mover.split(shard)
            return "split"
    elif kind == "merge" and n >= 2:
        x = a % n
        y = (x + 1 + b % (n - 1)) % n
        mover.merge(x, y)
        return "merge"
    elif kind == "join":
        rng = np.random.default_rng(a)
        mover.absorb_joins(
            [
                JoinSpec(
                    location=GeoPoint(
                        float(rng.uniform(0, EXTENT)),
                        float(rng.uniform(0, EXTENT)),
                    ),
                    expiry_seconds=600.0,
                )
                for _ in range(1 + c % 4)
            ]
        )
        return "join"
    elif kind == "leave":
        everyone = sorted(s.sensor_id for s in fed.registry)
        batch = min(c, len(everyone) - 1)
        if batch >= 1:
            rng = np.random.default_rng(b)
            chosen = rng.choice(len(everyone), size=batch, replace=False)
            mover.absorb_leaves([everyone[i] for i in chosen])
            return "leave"
    return None


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(_OP, min_size=1, max_size=8), target=st.integers(1, 200))
def test_any_migration_history_preserves_the_contract(ops, target):
    fed = _build_fed()
    mover = ShardMover(fed)
    for op in ops:
        _apply(mover, op)

    # Exactly one owner per registered sensor; weights == populations;
    # MBRs cover; ids dense.  verify_invariants asserts all of it.
    Rebalancer(fed).verify_invariants()

    # Conservation-exact scatter splitting over whatever directory the
    # history produced: shares sum exactly to the target and are
    # non-negative; whenever the target fits the fleet, no shard is
    # asked for more than it owns.
    routes = fed.directory.route(WHOLE)
    shares = ShardDirectory.split_target(target, routes)
    assert sum(shares.values()) == target
    fits = target <= fed.directory.total_weight()
    for route in routes:
        share = shares[route.shard_id]
        assert share >= 0
        if fits:
            assert share <= fed.directory.entry(route.shard_id).weight


@settings(max_examples=15, deadline=None)
@given(ops=st.lists(_OP, min_size=2, max_size=6))
def test_exact_queries_conserve_after_any_history(ops):
    fed = _build_fed(n=40, seed=2)
    mover = ShardMover(fed)
    for op in ops:
        _apply(mover, op)
    from repro.portal import SensorQuery

    from tests.rebalance.conftest import distinct_ids

    result = fed.execute(SensorQuery(region=WHOLE, staleness_seconds=600.0))
    ids, raw = distinct_ids(result)
    assert len(ids) == len(fed.registry)
    assert raw == len(ids)
    assert not result.partial
