"""Shared builders for the rebalance suite.

Two fleet shapes cover every test:

* ``make_skewed_fed`` — quadratic-in-x density behind the fixed-width
  strip partitioner (the PR-5 skew device), so the rebalancer has real
  work to do and triggers fire deterministically;
* ``make_uniform_fed`` — a balanced grid-partitioned fleet for the
  mechanics tests, where *any* membership drift would be a bug.

Both run with caching and oversampling off and availability 1.0, so an
exact query's distinct sensor ids measure ownership directly (every
reading is a real per-sensor probe or a shipped warm entry, never a
multi-sensor cache representative).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import COLRTreeConfig
from repro.federation import FederatedPortal
from repro.geometry import GeoPoint, Rect

EXTENT = 100.0
WHOLE = Rect(0.0, 0.0, EXTENT, EXTENT)
STALENESS = 600.0


class FixedStripsPartitioner:
    """Equal-*width* vertical strips (NOT equal population)."""

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards

    def assign(self, sensors) -> list[int]:
        width = EXTENT / self.n_shards
        return [
            min(int(s.location.x / width), self.n_shards - 1) for s in sensors
        ]


def _populate(fed: FederatedPortal, xs, ys) -> FederatedPortal:
    for x, y in zip(xs, ys):
        fed.register_sensor(
            GeoPoint(float(x), float(y)),
            expiry_seconds=STALENESS,
            availability=1.0,
        )
    fed.rebuild_index()
    return fed


def make_skewed_fed(
    n: int = 400, n_shards: int = 4, seed: int = 0, **kwargs
) -> FederatedPortal:
    """Crowded low-x strips, sparse high-x strips."""
    fed = FederatedPortal(
        partitioner=FixedStripsPartitioner(n_shards),
        config=COLRTreeConfig(caching_enabled=False, oversampling_enabled=False),
        max_sensors_per_query=None,
        network_options={"latency_jitter": 0.0},
        **kwargs,
    )
    rng = np.random.default_rng(seed)
    return _populate(fed, EXTENT * rng.random(n) ** 2, EXTENT * rng.random(n))


def make_uniform_fed(
    n: int = 240, n_shards: int = 4, seed: int = 0, **kwargs
) -> FederatedPortal:
    """A balanced grid-partitioned fleet."""
    fed = FederatedPortal(
        n_shards=n_shards,
        config=COLRTreeConfig(caching_enabled=False, oversampling_enabled=False),
        max_sensors_per_query=None,
        network_options={"latency_jitter": 0.0},
        **kwargs,
    )
    rng = np.random.default_rng(seed)
    return _populate(fed, EXTENT * rng.random(n), EXTENT * rng.random(n))


def distinct_ids(result) -> tuple[set[int], int]:
    """Distinct sensor ids in a merged answer plus the raw reading
    count (distinct < raw means a duplicate slipped through)."""
    ids: set[int] = set()
    raw = 0
    for answer in result.answers:
        for reading in list(answer.probed_readings) + list(answer.cached_readings):
            ids.add(reading.sensor_id)
            raw += 1
    return ids, raw


def total_probes(fed: FederatedPortal) -> int:
    return sum(
        shard.network.stats.probes_attempted for shard in fed.shards()
    )
