"""Fault injection for live migration: worker SIGKILL mid-step and
coordinator crashes between the two-phase flip's phases.

The contract under any fault: **no orphaned and no duplicated
sensors**.  A crash before ``prepared`` rolls back (the before-map
wins), from ``prepared`` on it rolls forward (the after-map wins), and
either way :func:`repro.rebalance.journal.resolve_pending` hands back
one consistent membership that a ``FixedPartitioner`` rebuild turns
into a serving federation covering exactly the fleet.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core.config import COLRTreeConfig
from repro.federation import FederatedPortal, FederationConfig
from repro.federation.partitioner import FixedPartitioner
from repro.geometry import GeoPoint
from repro.portal import SensorQuery
from repro.rebalance import Rebalancer, ShardMover, resolve_pending
from repro.rebalance.journal import JOURNAL_NAME
from repro.sensors.registry import SensorRegistry
from repro.storage import StorageConfig

from tests.rebalance.conftest import EXTENT, STALENESS, WHOLE, distinct_ids

EXACT = SensorQuery(region=WHOLE, staleness_seconds=STALENESS)


class _Crash(RuntimeError):
    """The injected coordinator crash."""


def _crash_at(point: str):
    def failpoint(reached: str) -> None:
        if reached == point:
            raise _Crash(point)

    return failpoint


def _fleet(n: int = 60, seed: int = 3):
    rng = np.random.default_rng(seed)
    registry = SensorRegistry()
    return [
        registry.register(
            GeoPoint(float(rng.uniform(0, EXTENT)), float(rng.uniform(0, EXTENT))),
            expiry_seconds=STALENESS,
            availability=1.0,
        )
        for _ in range(n)
    ]


def _durable_fed(fleet, tmp_path, n_shards: int = 3, **kwargs) -> FederatedPortal:
    fed = FederatedPortal(
        n_shards=n_shards,
        config=COLRTreeConfig(caching_enabled=False, oversampling_enabled=False),
        max_sensors_per_query=None,
        network_options={"latency_jitter": 0.0},
        storage=StorageConfig(data_dir=tmp_path / "fed", fsync_enabled=False),
        **kwargs,
    )
    fed.register_all(list(fleet))
    fed.rebuild_index()
    return fed


def _assert_fleet_conserved(fed, fleet) -> None:
    ids, raw = distinct_ids(fed.execute(EXACT))
    assert ids == {s.sensor_id for s in fleet}, "orphaned or phantom sensors"
    assert raw == len(ids), "duplicated sensors"
    Rebalancer(fed).verify_invariants()


class TestCoordinatorCrash:
    """Crash the coordinator between phases of a durable migration,
    recover via the journal, and rebuild from the resolved membership."""

    def test_crash_before_intent_leaves_no_journal(self, tmp_path):
        fleet = _fleet()
        fed = _durable_fed(fleet, tmp_path)
        mover = ShardMover(fed, failpoint=_crash_at("captured"))
        movers = [s.sensor_id for s in fed.shard_members(0)[:5]]
        with pytest.raises(_Crash):
            mover.move(movers, src=0, dst=1)
        # Nothing durable was touched yet: no journal, nothing pending.
        storage = StorageConfig(data_dir=tmp_path / "fed", fsync_enabled=False)
        assert resolve_pending(storage) is None
        # The in-memory coordinator is un-flipped and fully consistent.
        _assert_fleet_conserved(fed, fleet)
        fed.close()

    def test_crash_at_intent_rolls_back(self, tmp_path):
        fleet = _fleet()
        fed = _durable_fed(fleet, tmp_path)
        before_members = {
            sid: sorted(s.sensor_id for s in fed.shard_members(sid))
            for sid in range(3)
        }
        mover = ShardMover(fed, failpoint=_crash_at("intent"))
        movers = [s.sensor_id for s in fed.shard_members(0)[:5]]
        with pytest.raises(_Crash):
            mover.move(movers, src=0, dst=1)
        del fed, mover  # the coordinator is gone; recovery is disk-only

        storage = StorageConfig(data_dir=tmp_path / "fed", fsync_enabled=False)
        resolution = resolve_pending(storage)
        assert resolution is not None
        assert resolution.action == "rolled_back"
        resolved = {
            sid: sorted(ids) for sid, ids in resolution.membership.items()
        }
        assert resolved == before_members
        assert not (tmp_path / "fed" / JOURNAL_NAME).exists()

        rebuilt = FederatedPortal(
            partitioner=FixedPartitioner(
                resolution.assignment, n_shards=resolution.n_shards
            ),
            config=COLRTreeConfig(
                caching_enabled=False, oversampling_enabled=False
            ),
            max_sensors_per_query=None,
            network_options={"latency_jitter": 0.0},
            storage=storage,
        )
        rebuilt.register_all(list(fleet))
        rebuilt.rebuild_index()
        _assert_fleet_conserved(rebuilt, fleet)
        rebuilt.close()

    def test_crash_between_prepare_and_commit_rolls_forward(self, tmp_path):
        fleet = _fleet()
        fed = _durable_fed(fleet, tmp_path)
        mover = ShardMover(fed, failpoint=_crash_at("prepared"))
        movers = [s.sensor_id for s in fed.shard_members(0)[:5]]
        with pytest.raises(_Crash):
            mover.move(movers, src=0, dst=1)
        del fed, mover

        storage = StorageConfig(data_dir=tmp_path / "fed", fsync_enabled=False)
        resolution = resolve_pending(storage)
        assert resolution is not None
        assert resolution.action == "rolled_forward"
        # The after-map owns the movers at their destination.
        assert set(movers) <= set(resolution.membership[1])
        assert not set(movers) & set(resolution.membership[0])
        assert not (tmp_path / "fed" / JOURNAL_NAME).exists()

        rebuilt = FederatedPortal(
            partitioner=FixedPartitioner(
                resolution.assignment, n_shards=resolution.n_shards
            ),
            config=COLRTreeConfig(
                caching_enabled=False, oversampling_enabled=False
            ),
            max_sensors_per_query=None,
            network_options={"latency_jitter": 0.0},
            storage=storage,
        )
        rebuilt.register_all(list(fleet))
        rebuilt.rebuild_index()
        owned_by_dst = {s.sensor_id for s in rebuilt.shard_members(1)}
        assert set(movers) <= owned_by_dst
        _assert_fleet_conserved(rebuilt, fleet)
        rebuilt.close()

    def test_crashed_split_rolls_forward_to_the_new_shard_count(self, tmp_path):
        fleet = _fleet(n=80, seed=5)
        fed = _durable_fed(fleet, tmp_path)
        mover = ShardMover(fed, failpoint=_crash_at("prepared"))
        with pytest.raises(_Crash):
            mover.split(0)
        del fed, mover
        storage = StorageConfig(data_dir=tmp_path / "fed", fsync_enabled=False)
        resolution = resolve_pending(storage)
        assert resolution is not None
        assert resolution.action == "rolled_forward"
        assert resolution.n_shards == 4
        rebuilt = FederatedPortal(
            partitioner=FixedPartitioner(
                resolution.assignment, n_shards=resolution.n_shards
            ),
            config=COLRTreeConfig(
                caching_enabled=False, oversampling_enabled=False
            ),
            max_sensors_per_query=None,
            network_options={"latency_jitter": 0.0},
            storage=storage,
        )
        rebuilt.register_all(list(fleet))
        rebuilt.rebuild_index()
        assert len(rebuilt.directory) == 4
        _assert_fleet_conserved(rebuilt, fleet)
        rebuilt.close()


class TestWorkerSigkill:
    """SIGKILL a target shard's worker process mid-migration: the
    membership change still lands, the dead worker respawns fresh, and
    ownership stays exact."""

    def _process_fed(self, n: int = 200, n_shards: int = 3) -> FederatedPortal:
        rng = np.random.default_rng(11)
        fed = FederatedPortal(
            n_shards=n_shards,
            max_sensors_per_query=None,
            federation=FederationConfig(execution="process"),
        )
        for _ in range(n):
            fed.register_sensor(
                GeoPoint(
                    float(rng.uniform(0, EXTENT)), float(rng.uniform(0, EXTENT))
                ),
                expiry_seconds=STALENESS,
                availability=1.0,
            )
        fed.rebuild_index()
        return fed

    def test_sigkill_target_mid_migration(self):
        with self._process_fed() as fed:
            fed.execute(EXACT)
            dst_pid = fed.worker_pid(1)
            bystander_pid = fed.worker_pid(2)
            assert dst_pid is not None and bystander_pid is not None

            def kill_dst(point: str) -> None:
                if point == "captured":
                    os.kill(dst_pid, signal.SIGKILL)
                    os.waitpid(dst_pid, 0)

            mover = ShardMover(fed, failpoint=kill_dst)
            movers = [s.sensor_id for s in fed.shard_members(0)[:6]]
            moved = mover.move(movers, src=0, dst=1)
            assert sorted(s.sensor_id for s in moved) == sorted(movers)
            # The affected shards respawned; the bystander never cycled.
            assert fed.worker_pid(1) not in (None, dst_pid)
            assert fed.worker_pid(2) == bystander_pid
            result = fed.execute(EXACT)
            assert result.result_weight == len(fed.registry)
            assert not result.partial
            owned = {s.sensor_id for s in fed.shard_members(1)}
            assert set(movers) <= owned
            Rebalancer(fed).verify_invariants()

    def test_sigkill_source_mid_migration(self):
        """Killing the *source* worker after capture must not lose the
        movers: their warm entries were already exported."""
        with self._process_fed() as fed:
            fed.execute(EXACT)
            src_pid = fed.worker_pid(0)
            assert src_pid is not None

            def kill_src(point: str) -> None:
                if point == "captured":
                    os.kill(src_pid, signal.SIGKILL)
                    os.waitpid(src_pid, 0)

            mover = ShardMover(fed, failpoint=kill_src)
            movers = [s.sensor_id for s in fed.shard_members(0)[:6]]
            mover.move(movers, src=0, dst=2)
            result = fed.execute(EXACT)
            assert result.result_weight == len(fed.registry)
            assert not result.partial
            Rebalancer(fed).verify_invariants()
