"""Core mechanics of live rebalancing: bounded moves, split/merge with
dense ids, churn absorption, the two-phase flip's conservation, warm
(probe-free) migration, and the policy loop's triggers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federation import FederatedPortal
from repro.frontdoor import AdmissionConfig, FrontDoor, FrontDoorConfig
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorQuery
from repro.rebalance import (
    JoinSpec,
    MigrationAborted,
    RebalanceConfig,
    Rebalancer,
    ShardMover,
)

from tests.rebalance.conftest import (
    STALENESS,
    WHOLE,
    distinct_ids,
    make_skewed_fed,
    make_uniform_fed,
    total_probes,
)

EXACT = SensorQuery(region=WHOLE, staleness_seconds=STALENESS)


class TestMove:
    def test_move_updates_directory_and_groups(self):
        fed = make_uniform_fed()
        mover = ShardMover(fed)
        before = [fed.directory.entry(i).weight for i in range(4)]
        version = fed.directory.version
        movers = [s.sensor_id for s in fed.shard_members(0)[:5]]
        moved = mover.move(movers, src=0, dst=1)
        assert sorted(s.sensor_id for s in moved) == sorted(movers)
        assert fed.directory.entry(0).weight == before[0] - 5
        assert fed.directory.entry(1).weight == before[1] + 5
        assert fed.directory.version == version + 1
        owned = {s.sensor_id for s in fed.shard_members(1)}
        assert set(movers) <= owned
        Rebalancer(fed).verify_invariants()

    def test_move_is_probe_free_for_everyone(self):
        """After a warm fleet migrates a batch, the next exact query
        probes nothing: the moved sensors AND the restaged shards'
        stay-put sensors all arrive with their warm cache entries.
        (Needs the slot cache on — the default config — since shipped
        warm state IS the slot-cache entries.)"""
        fed = FederatedPortal(n_shards=4, max_sensors_per_query=None)
        rng = np.random.default_rng(3)
        for x, y in rng.random((240, 2)) * 100.0:
            fed.register_sensor(
                GeoPoint(float(x), float(y)),
                expiry_seconds=STALENESS,
                availability=1.0,
            )
        fed.rebuild_index()
        fed.execute(EXACT)  # warm every shard
        mover = ShardMover(fed)
        movers = [s.sensor_id for s in fed.shard_members(0)[:8]]
        mover.move(movers, src=0, dst=2)
        # Restaged shards carry fresh probe counters; sample after the
        # move so the delta is exactly what the next query costs.
        before = total_probes(fed)
        result = fed.execute(EXACT)
        assert total_probes(fed) - before == 0
        assert result.result_weight == len(fed.registry)

    def test_move_validation(self):
        fed = make_uniform_fed(n=60, n_shards=2)
        mover = ShardMover(fed)
        members = [s.sensor_id for s in fed.shard_members(0)]
        with pytest.raises(ValueError, match="must differ"):
            mover.move(members[:2], src=0, dst=0)
        with pytest.raises(ValueError, match="not owned"):
            mover.move([10**9], src=0, dst=1)
        with pytest.raises(ValueError, match="empty"):
            mover.move(members, src=0, dst=1)
        assert mover.move([], src=0, dst=1) == []

    def test_move_to_killed_shard_aborts_without_mutation(self):
        fed = make_uniform_fed()
        mover = ShardMover(fed)
        version = fed.directory.version
        weights = [fed.directory.entry(i).weight for i in range(4)]
        fed.kill_shard(2)
        movers = [s.sensor_id for s in fed.shard_members(0)[:4]]
        with pytest.raises(MigrationAborted):
            mover.move(movers, src=0, dst=2)
        assert fed.directory.version == version
        assert [fed.directory.entry(i).weight for i in range(4)] == weights
        fed.revive_shard(2)
        Rebalancer(fed).verify_invariants()


class TestSplitMerge:
    def test_split_appends_dense_id_and_halves_population(self):
        fed = make_uniform_fed()
        weight = fed.directory.entry(1).weight
        new_id = ShardMover(fed).split(1)
        assert new_id == 4 and len(fed.directory) == 5
        halves = (fed.directory.entry(1).weight, fed.directory.entry(4).weight)
        assert sum(halves) == weight
        assert abs(halves[0] - halves[1]) <= 1
        Rebalancer(fed).verify_invariants()

    def test_merge_swap_remove_keeps_ids_dense(self):
        fed = make_uniform_fed()
        weights = [fed.directory.entry(i).weight for i in range(4)]
        last_ids = {s.sensor_id for s in fed.shard_members(3)}
        kept = ShardMover(fed).merge(0, 2)
        assert kept == 0 and len(fed.directory) == 3
        assert fed.directory.entry(0).weight == weights[0] + weights[2]
        # The old last shard renumbered into the vacated slot 2.
        assert {s.sensor_id for s in fed.shard_members(2)} == last_ids
        Rebalancer(fed).verify_invariants()

    def test_split_then_merge_conserves_the_fleet(self):
        fed = make_uniform_fed()
        new_id = ShardMover(fed).split(0)
        ShardMover(fed).merge(0, new_id)
        ids, raw = distinct_ids(fed.execute(EXACT))
        assert len(ids) == len(fed.registry) and raw == len(ids)
        Rebalancer(fed).verify_invariants()

    def test_split_single_sensor_shard_rejected(self):
        fed = make_uniform_fed(n=40, n_shards=2)
        mover = ShardMover(fed)
        keep = [s.sensor_id for s in fed.shard_members(0)[:1]]
        mover.move(
            [s.sensor_id for s in fed.shard_members(0) if s.sensor_id not in keep],
            src=0,
            dst=1,
        )
        with pytest.raises(ValueError, match="fewer than 2"):
            mover.split(0)


class TestJoinsLeaves:
    def test_joins_land_in_the_containing_shard(self):
        fed = make_uniform_fed()
        mover = ShardMover(fed)
        target = fed.directory.entry(1).mbr
        spot = GeoPoint(
            (target.min_x + target.max_x) / 2, (target.min_y + target.max_y) / 2
        )
        weight = fed.directory.entry(1).weight
        joined = mover.absorb_joins([JoinSpec(location=spot, expiry_seconds=300.0)])
        assert len(joined) == 1
        owner = next(
            sid
            for sid in range(len(fed.directory))
            if joined[0].sensor_id in {s.sensor_id for s in fed.shard_members(sid)}
        )
        assert fed.directory.entry(owner).mbr.contains_point(spot)
        if owner == 1:
            assert fed.directory.entry(1).weight == weight + 1
        Rebalancer(fed).verify_invariants()

    def test_leaves_compact_an_emptied_shard(self):
        fed = make_uniform_fed()
        mover = ShardMover(fed)
        emptied = [s.sensor_id for s in fed.shard_members(1)]
        survivors = len(fed.registry) - len(emptied)
        mover.absorb_leaves(emptied)
        assert len(fed.directory) == 3
        assert len(fed.registry) == survivors
        ids, raw = distinct_ids(fed.execute(EXACT))
        assert len(ids) == survivors and raw == len(ids)
        assert not ids & set(emptied)
        Rebalancer(fed).verify_invariants()

    def test_leaving_the_whole_fleet_rejected(self):
        fed = make_uniform_fed(n=30, n_shards=2)
        everyone = [s.sensor_id for s in fed.registry]
        with pytest.raises(ValueError, match="empty the whole fleet"):
            ShardMover(fed).absorb_leaves(everyone)


class TestTwoPhaseFlip:
    def test_conservation_exact_at_every_phase(self):
        """A query racing the flip sees old-or-new ownership, never
        both/neither: the exact answer covers the whole fleet with no
        duplicates at ``prepared`` (staged, pre-flip) and ``committed``."""
        fed = make_skewed_fed()
        fleet = len(fed.registry)
        phases: list[str] = []

        def on_phase(phase: str) -> None:
            phases.append(phase)
            result = fed.execute(EXACT)
            ids, raw = distinct_ids(result)
            assert len(ids) == fleet, f"{phase}: saw {len(ids)}/{fleet}"
            assert raw == len(ids), f"{phase}: duplicates"
            assert not result.partial

        rebalancer = Rebalancer(
            fed, RebalanceConfig(max_moves_per_step=32), on_phase=on_phase
        )
        reports = rebalancer.run(max_steps=6)
        assert reports and all(r.op != "aborted" for r in reports)
        assert "prepared" in phases and "committed" in phases

    def test_directory_version_bumps_once_per_step(self):
        fed = make_skewed_fed()
        rebalancer = Rebalancer(fed, RebalanceConfig(max_moves_per_step=32))
        version = fed.directory.version
        report = rebalancer.step()
        assert report.op not in ("noop", "aborted")
        assert fed.directory.version == version + 1
        assert report.directory_version == version + 1


class TestRebalancerPolicy:
    def test_skewed_fleet_converges_in_bounded_steps(self):
        fed = make_skewed_fed()
        rebalancer = Rebalancer(fed, RebalanceConfig(max_moves_per_step=32))
        initial = rebalancer.imbalance()
        assert initial > rebalancer.config.imbalance_tolerance
        reports = rebalancer.run(max_steps=24)
        assert 0 < len(reports) <= 24
        assert rebalancer.imbalance() < initial
        assert rebalancer.imbalance() <= rebalancer.config.imbalance_tolerance + 0.05
        rebalancer.verify_invariants()

    def test_balanced_fleet_is_a_noop(self):
        fed = make_uniform_fed()
        report = Rebalancer(fed).step()
        assert report.op == "noop" and report.moved == 0

    def test_population_split_trigger(self):
        fed = make_skewed_fed(n=300, n_shards=3, seed=5)
        rebalancer = Rebalancer(
            fed, RebalanceConfig(split_factor=1.5, max_moves_per_step=8)
        )
        plan = rebalancer.plan()
        assert plan is not None and plan.op == "split"
        heavy = max(range(3), key=lambda i: fed.directory.entry(i).weight)
        assert plan.shards == (heavy,)

    def test_merge_trigger_for_a_starved_shard(self):
        fed = make_uniform_fed()
        mover = ShardMover(fed)
        group = fed.shard_members(3)
        mover.move([s.sensor_id for s in group[:-1]], src=3, dst=0)
        rebalancer = Rebalancer(
            fed,
            RebalanceConfig(
                split_factor=10.0, merge_fraction=0.25, max_moves_per_step=4
            ),
        )
        plan = rebalancer.plan()
        assert plan is not None and plan.op == "merge"
        assert plan.shards[0] == 3

    def test_load_split_trigger(self):
        fed = make_uniform_fed()
        rebalancer = Rebalancer(
            fed,
            RebalanceConfig(split_factor=10.0, split_load_factor=2.0),
        )
        for _ in range(40):
            rebalancer.note_queries([2])
        plan = rebalancer.plan()
        assert plan is not None and plan.op == "split"
        assert plan.shards == (2,)


class TestFrontDoorIntegration:
    def test_moved_sensor_tiles_invalidated_cell_precise(self):
        fed = make_uniform_fed()
        door = FrontDoor(
            fed,
            FrontDoorConfig(admission=AdmissionConfig(enabled=False)),
        )
        assert door._on_rebalance in fed.rebalance_listeners
        viewport = SensorQuery(
            region=Rect(0.0, 0.0, 50.0, 50.0), staleness_seconds=STALENESS
        )
        far = SensorQuery(
            region=Rect(60.0, 60.0, 90.0, 90.0), staleness_seconds=STALENESS
        )
        door.execute(viewport)
        door.execute(far)
        assert door.execute(viewport).cache_hit
        assert door.execute(far).cache_hit
        # Move sensors that sit inside the first viewport only.
        movers = [
            s.sensor_id
            for s in fed.shard_members(0)
            if viewport.region.contains_point(s.location)
        ][:4]
        src_ids = {s.sensor_id for s in fed.shard_members(0)}
        dst = next(i for i in range(1, 4))
        ShardMover(fed).move(movers, src=0, dst=dst)
        # The untouched far viewport stays warm; the touched one refills
        # from the post-move portal and still answers correctly.
        assert door.execute(far).cache_hit
        refreshed = door.execute(viewport)
        in_region = sum(
            1
            for s in fed.registry
            if viewport.region.contains_point(s.location)
        )
        assert refreshed.result.result_weight == in_region
        assert src_ids - set(movers) == {
            s.sensor_id for s in fed.shard_members(0)
        }
