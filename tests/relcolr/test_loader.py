import pytest

from repro import COLRTreeConfig, build_colr_tree
from repro.relational import Database, col
from repro.relcolr import SchemaNames, load_tree
from repro.relcolr.loader import tree_depth

from tests.conftest import make_registry


@pytest.fixture
def loaded():
    registry = make_registry(n=200, seed=3)
    root = build_colr_tree(registry.all(), fanout=4, leaf_capacity=16, method="str")
    db = Database()
    names = load_tree(db, root)
    return registry, root, db, names


class TestLoad:
    def test_tree_depth(self, loaded):
        _, root, _, _ = loaded
        assert tree_depth(root) == root.height() + 1

    def test_tables_created(self, loaded):
        _, root, db, names = loaded
        depth = tree_depth(root)
        for level in range(depth - 1):
            db.table(names.layer(level))
            db.table(names.cache(level))
        db.table(names.leaf_cache)
        db.table(names.sensors)
        db.table(names.node_meta)

    def test_every_sensor_loaded(self, loaded):
        registry, _, db, names = loaded
        assert len(db.table(names.sensors)) == len(registry)

    def test_node_meta_complete(self, loaded):
        _, root, db, names = loaded
        n_nodes = sum(1 for _ in root.iter_subtree())
        assert len(db.table(names.node_meta)) == n_nodes

    def test_edges_match_hierarchy(self, loaded):
        _, root, db, names = loaded
        for node in root.iter_subtree():
            if node.is_leaf:
                continue
            edges = db.table(names.layer(node.level)).scan(col("node_id") == node.node_id)
            assert {int(e["child_id"]) for e in edges} == {
                c.node_id for c in node.children
            }
            for edge in edges:
                child = next(c for c in node.children if c.node_id == edge["child_id"])
                assert edge["child_weight"] == child.weight
                assert edge["child_min_x"] == child.bbox.min_x

    def test_root_has_null_parent(self, loaded):
        _, root, db, names = loaded
        meta = db.table(names.node_meta).get((root.node_id,))
        assert meta["parent_id"] is None
        assert meta["level"] == 0

    def test_sensor_leaf_mapping(self, loaded):
        _, root, db, names = loaded
        for leaf in root.iter_leaves():
            rows = db.table(names.sensors).scan(col("leaf_id") == leaf.node_id)
            assert {int(r["sensor_id"]) for r in rows} == {
                s.sensor_id for s in leaf.sensors
            }
