"""Access methods of the relational COLR-Tree."""

import pytest

from repro import (
    AvailabilityModel,
    COLRTreeConfig,
    Reading,
    Rect,
    SensorNetwork,
)
from repro.relcolr import RelCOLRTree

from tests.conftest import make_registry


CFG = COLRTreeConfig(
    fanout=4,
    leaf_capacity=16,
    max_expiry_seconds=600.0,
    slot_seconds=120.0,
)


def make_rel(registry, cfg=CFG):
    network = SensorNetwork(registry.all(), availability_model=AvailabilityModel(), seed=2)
    return RelCOLRTree(registry.all(), cfg, network=network, build_method="str")


def reading_for(sensor, value, timestamp):
    return Reading(
        sensor_id=sensor.sensor_id,
        value=value,
        timestamp=timestamp,
        expires_at=timestamp + sensor.expiry_seconds,
    )


class TestCacheRead:
    def test_empty_cache_reads_nothing(self):
        rel = make_rel(make_registry(n=150, seed=4))
        sketches, readings = rel.cache_read(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0)
        assert sketches == [] and readings == []

    def test_full_coverage_served_as_aggregates(self):
        registry = make_registry(n=150, seed=4)
        rel = make_rel(registry)
        for sensor in registry.all():
            rel.insert_reading(reading_for(sensor, 1.0, 0.0), 0.0)
        sketches, readings = rel.cache_read(Rect(0, 0, 100, 100), now=1.0, max_staleness=600.0)
        # Everything is cached, so the root aggregate covers the query:
        # one weight-complete sketch set, no raw readings.
        assert sum(s.count for s in sketches) == len(registry)
        assert readings == []

    def test_no_double_counting_under_covered_nodes(self):
        registry = make_registry(n=150, seed=4)
        rel = make_rel(registry)
        for sensor in registry.all():
            rel.insert_reading(reading_for(sensor, 1.0, 0.0), 0.0)
        sketches, readings = rel.cache_read(Rect(0, 0, 100, 100), now=1.0, max_staleness=600.0)
        total = sum(s.count for s in sketches) + len(readings)
        assert total == len(registry)

    def test_partial_region_served_from_leaves(self):
        registry = make_registry(n=150, seed=4)
        rel = make_rel(registry)
        for sensor in registry.all():
            rel.insert_reading(reading_for(sensor, 1.0, 0.0), 0.0)
        region = Rect(10, 10, 35, 35)
        sketches, readings = rel.cache_read(region, now=1.0, max_staleness=600.0)
        expected = len(registry.within(region))
        assert sum(s.count for s in sketches) + len(readings) == expected

    def test_staleness_excludes_old_readings(self):
        registry = make_registry(n=150, seed=4)
        rel = make_rel(registry)
        for sensor in registry.all():
            rel.insert_reading(reading_for(sensor, 1.0, 0.0), 0.0)
        sketches, readings = rel.cache_read(
            Rect(0, 0, 100, 100), now=100.0, max_staleness=10.0
        )
        assert sketches == [] and readings == []


class TestSensorSelection:
    def test_zero_target(self):
        rel = make_rel(make_registry(n=150, seed=4))
        assert rel.sensor_selection(Rect(0, 0, 100, 100), 0.0, 600.0, 0) == []

    def test_target_respected_roughly(self):
        rel = make_rel(make_registry(n=300, seed=5))
        picks = rel.sensor_selection(Rect(0, 0, 100, 100), 0.0, 600.0, 30)
        assert 15 <= len(picks) <= 45

    def test_picks_are_unique_and_in_region(self):
        registry = make_registry(n=300, seed=5)
        rel = make_rel(registry)
        region = Rect(0, 0, 50, 50)
        picks = rel.sensor_selection(region, 0.0, 600.0, 25)
        assert len(picks) == len(set(picks))
        for sid in picks:
            assert region.contains_point(registry.get(sid).location)

    def test_cached_sensors_discounted(self):
        registry = make_registry(n=300, seed=5)
        rel = make_rel(registry)
        for sensor in registry.all():
            rel.insert_reading(reading_for(sensor, 1.0, 0.0), 0.0)
        picks = rel.sensor_selection(Rect(0, 0, 100, 100), 1.0, 600.0, 30)
        assert picks == []


class TestEndToEndQuery:
    def test_first_query_probes_second_hits_cache(self):
        registry = make_registry(n=300, seed=6)
        rel = make_rel(registry)
        region = Rect(0, 0, 100, 100)
        a1 = rel.query(region, now=0.0, max_staleness=600.0, sample_size=40)
        assert a1.stats.sensors_probed > 0
        a2 = rel.query(region, now=1.0, max_staleness=600.0, sample_size=40)
        assert a2.stats.sensors_probed < a1.stats.sensors_probed
        assert a2.result_weight > 0

    def test_exact_mode_returns_everything(self):
        registry = make_registry(n=200, seed=6)
        cfg = COLRTreeConfig(
            fanout=4,
            leaf_capacity=16,
            max_expiry_seconds=600.0,
            slot_seconds=120.0,
            sampling_enabled=False,
        )
        network = SensorNetwork(registry.all(), seed=2)
        rel = RelCOLRTree(registry.all(), cfg, network=network, build_method="str")
        region = Rect(0, 0, 50, 50)
        answer = rel.query(region, now=0.0, max_staleness=600.0)
        assert answer.result_weight == len(registry.within(region))

    def test_unknown_sensor_insert_rejected(self):
        rel = make_rel(make_registry(n=50, seed=6))
        with pytest.raises(KeyError):
            rel.insert_reading(
                Reading(sensor_id=9999, value=1.0, timestamp=0.0, expires_at=10.0), 0.0
            )


class TestWorkMetering:
    def test_query_stats_metered(self):
        registry = make_registry(n=300, seed=7)
        rel = make_rel(registry)
        answer = rel.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=30)
        assert answer.stats.nodes_traversed > 0
        assert answer.stats.sensors_probed > 0
        # Warm query consults caches.
        warm = rel.query(Rect(0, 0, 100, 100), now=1.0, max_staleness=600.0, sample_size=30)
        assert warm.stats.cached_nodes_accessed > 0
