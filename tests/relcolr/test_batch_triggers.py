"""Grouped-delta batch maintenance in the relational COLR-Tree.

``RelCOLRTree.insert_readings_batch`` must (a) leave the caches in the
same state as the in-memory tree's grouped-delta ingestion, and (b)
issue exactly one grouped cache statement per touched (ancestor, slot)
instead of the per-row trigger cascade.
"""

import pytest

from repro import COLRTree, COLRTreeConfig, Reading
from repro.core.slots import slot_of
from repro.relcolr import RelCOLRTree

from tests.conftest import make_registry
from tests.relcolr.test_triggers import CFG, assert_cache_equivalent, reading_for


@pytest.fixture
def pair():
    registry = make_registry(n=200, seed=8)
    mem = COLRTree(registry.all(), CFG, build_method="str")
    rel = RelCOLRTree(registry.all(), CFG, build_method="str")
    return registry, mem, rel


class TestBatchEquivalence:
    def test_batch_matches_object_tree_batch(self, pair):
        registry, mem, rel = pair
        readings = [
            reading_for(s, float(i % 11), timestamp=float(i))
            for i, s in enumerate(registry.all()[:120])
        ]
        mem.insert_readings_batch(readings, fetched_at=0.0)
        rel.insert_readings_batch(readings, fetched_at=0.0)
        assert rel.cached_reading_count() == mem.cached_reading_count
        assert_cache_equivalent(mem, rel)

    def test_batch_matches_per_row_inserts(self, pair):
        registry, _, rel = pair
        twin = RelCOLRTree(registry.all(), CFG, build_method="str")
        readings = [
            reading_for(s, float(i % 7), timestamp=float(i))
            for i, s in enumerate(registry.all()[:60])
        ]
        rel.insert_readings_batch(readings, fetched_at=0.0)
        for r in readings:
            twin.insert_reading(r, fetched_at=0.0)
        for level in range(rel.n_levels - 1):
            a = sorted(
                tuple(sorted(row.items()))
                for row in rel.db.table(rel.names.cache(level)).scan()
            )
            b = sorted(
                tuple(sorted(row.items()))
                for row in twin.db.table(twin.names.cache(level)).scan()
            )
            assert a == b, f"level {level} cache diverged"

    def test_batch_with_displacement_equivalent(self, pair):
        registry, mem, rel = pair
        sensors = registry.all()[:50]
        first = [reading_for(s, 3.0, 0.0) for s in sensors]
        mem.insert_readings_batch(first, fetched_at=0.0)
        rel.insert_readings_batch(first, fetched_at=0.0)
        # Re-probe half with new values/timestamps: the batch DELETE
        # fires one grouped decrement, the INSERT one grouped add.
        second = [
            reading_for(s, float(20 + i), 100.0) for i, s in enumerate(sensors[:25])
        ]
        mem.insert_readings_batch(second, fetched_at=100.0)
        rel.insert_readings_batch(second, fetched_at=100.0)
        assert rel.cached_reading_count() == mem.cached_reading_count == 50
        assert_cache_equivalent(mem, rel)

    def test_batch_min_max_displacement(self, pair):
        registry, mem, rel = pair
        sensors = registry.all()[:6]
        values = [1.0, 9.0, 5.0, 2.0, 8.0, 4.0]
        batch = [reading_for(s, v, 0.0) for s, v in zip(sensors, values)]
        mem.insert_readings_batch(batch, fetched_at=0.0)
        rel.insert_readings_batch(batch, fetched_at=0.0)
        # Displace both extremes at once; grouped delete must recompute.
        repl = [
            reading_for(sensors[1], 5.5, 50.0),  # was max 9.0
            reading_for(sensors[0], 4.5, 50.0),  # was min 1.0
        ]
        mem.insert_readings_batch(repl, fetched_at=50.0)
        rel.insert_readings_batch(repl, fetched_at=50.0)
        assert_cache_equivalent(mem, rel)

    def test_empty_batch_is_noop(self, pair):
        _, _, rel = pair
        rel.insert_readings_batch([], fetched_at=0.0)
        assert rel.cached_reading_count() == 0
        assert rel.maintenance.grouped_rows == 0

    def test_last_wins_duplicate_sensor(self, pair):
        registry, mem, rel = pair
        s = registry.all()[0]
        batch = [reading_for(s, 1.0, 0.0), reading_for(s, 2.0, 10.0)]
        mem.insert_readings_batch(batch, fetched_at=10.0)
        rel.insert_readings_batch(batch, fetched_at=10.0)
        assert rel.cached_reading_count() == mem.cached_reading_count == 1
        assert_cache_equivalent(mem, rel)


class TestStatementCounting:
    def test_one_statement_per_ancestor_slot(self, pair):
        registry, _, rel = pair
        readings = [
            reading_for(s, 1.0, timestamp=float(i))
            for i, s in enumerate(registry.all()[:80])
        ]
        rel.insert_readings_batch(readings, fetched_at=0.0)
        # Count the distinct (ancestor, slot) groups the batch touches.
        groups = set()
        for r in readings:
            slot = slot_of(r.expires_at, CFG.slot_seconds)
            for anc_id, anc_level in _ancestor_chain(rel, r.sensor_id):
                groups.add((anc_id, anc_level, slot))
        assert rel.maintenance.grouped_statements == len(groups)
        assert rel.maintenance.grouped_rows == len(readings)

    def test_grouped_beats_cascade(self, pair):
        registry, _, rel = pair
        twin = RelCOLRTree(registry.all(), CFG, build_method="str")
        readings = [
            reading_for(s, 1.0, timestamp=float(i))
            for i, s in enumerate(registry.all()[:120])
        ]
        rel.insert_readings_batch(readings, fetched_at=0.0)
        for r in readings:
            twin.insert_reading(r, fetched_at=0.0)
        # The cascade issues one statement per (row, ancestor); the
        # grouped path one per (ancestor, slot) — strictly fewer here
        # because many sensors share ancestors and slots.
        cascade_statements = sum(
            len(list(_ancestor_chain(twin, r.sensor_id))) for r in readings
        )
        assert rel.maintenance.grouped_statements < cascade_statements
        assert twin.maintenance.grouped_statements == 0

    def test_single_row_batch_uses_per_row_path(self, pair):
        registry, mem, rel = pair
        r = reading_for(registry.all()[0], 5.0, 10.0)
        mem.insert_readings_batch([r], fetched_at=10.0)
        rel.insert_readings_batch([r], fetched_at=10.0)
        assert rel.maintenance.grouped_statements == 0
        assert_cache_equivalent(mem, rel)


def _ancestor_chain(rel: RelCOLRTree, sensor_id: int):
    leaf_id = int(rel.db.table(rel.names.sensors).get((sensor_id,))["leaf_id"])
    return rel.maintenance._ancestors_of(rel.db, leaf_id)
