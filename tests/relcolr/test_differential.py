"""Differential testing: the relational COLR-Tree and the in-memory
COLR-Tree must hold identical cache state under long random mixed
operation sequences (insert / update / expiry / eviction).

The two implementations share the bulk loader (same tree structure by
construction) but maintain their caches through completely different
machinery — dict-based propagation vs relational triggers — so state
agreement after every operation is strong evidence both are right.
"""

import numpy as np
import pytest

from repro import COLRTree, COLRTreeConfig, Reading
from repro.relational import col
from repro.relcolr import RelCOLRTree

from tests.conftest import make_registry


def assert_equal_state(mem: COLRTree, rel: RelCOLRTree):
    assert rel.cached_reading_count() == mem.cached_reading_count
    # Leaf contents.
    rel_leaf = {
        int(r["sensor_id"]): (float(r["value"]), float(r["expires_at"]))
        for r in rel.db.table(rel.names.leaf_cache).scan()
    }
    mem_leaf = {}
    for leaf in mem.root.iter_leaves():
        assert leaf.leaf_cache is not None
        for reading in leaf.leaf_cache.all_readings():
            mem_leaf[reading.sensor_id] = (reading.value, reading.expires_at)
    assert rel_leaf == mem_leaf
    # Aggregate sketches per (internal node, slot).
    for node in mem.root.iter_subtree():
        if node.is_leaf:
            continue
        rel_rows = {
            int(r["slot_id"]): r
            for r in rel.db.table(rel.names.cache(node.level)).scan(
                col("node_id") == node.node_id
            )
        }
        mem_slots = {s: node.agg_cache.sketch(s) for s in node.agg_cache.slot_ids()}
        assert set(rel_rows) == set(mem_slots), node.node_id
        for slot, sketch in mem_slots.items():
            row = rel_rows[slot]
            assert int(row["value_count"]) == sketch.count
            assert float(row["value_sum"]) == pytest.approx(sketch.total, abs=1e-6)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("capacity", [None, 40])
def test_random_sequences_keep_implementations_in_lockstep(seed, capacity):
    registry = make_registry(n=150, seed=seed, expiry_range=(60.0, 600.0))
    config = COLRTreeConfig(
        fanout=4,
        leaf_capacity=16,
        max_expiry_seconds=600.0,
        slot_seconds=120.0,
        cache_capacity=capacity,
    )
    mem = COLRTree(registry.all(), config, build_method="str")
    rel = RelCOLRTree(registry.all(), config, build_method="str")
    rng = np.random.default_rng(seed + 50)
    sensors = registry.all()
    now = 0.0
    for step in range(250):
        now += float(rng.exponential(8.0))
        sensor = sensors[int(rng.integers(len(sensors)))]
        reading = Reading(
            sensor_id=sensor.sensor_id,
            value=float(rng.uniform(-100, 100)),
            timestamp=now,
            expires_at=now + sensor.expiry_seconds,
        )
        mem.insert_reading(reading, fetched_at=now)
        mem._enforce_capacity()
        rel.insert_reading(reading, fetched_at=now)
        if rng.random() < 0.15:
            now += float(rng.exponential(300.0))
            mem._prune_expired(now)
            rel.expire(now)
        if step % 20 == 0:
            # Expiry is lazy in both implementations (the in-memory tree
            # prunes at query time, the relational one on window rolls),
            # so force both to the same boundary before comparing.
            mem._prune_expired(now)
            rel.expire(now)
            assert_equal_state(mem, rel)
    # Final reconciliation after forcing both to the same time.
    mem._prune_expired(now)
    rel.expire(now)
    assert_equal_state(mem, rel)


def test_cache_read_weight_matches_memory_answer():
    """The relational cache-read access method must account for exactly
    the same readings as an in-memory exact lookup served from cache."""
    from repro import Rect

    registry = make_registry(n=150, seed=3)
    config = COLRTreeConfig(
        fanout=4, leaf_capacity=16, max_expiry_seconds=600.0, slot_seconds=120.0
    )
    mem = COLRTree(registry.all(), config, build_method="str")
    rel = RelCOLRTree(registry.all(), config, build_method="str")
    now = 0.0
    for sensor in registry.all():
        reading = Reading(
            sensor_id=sensor.sensor_id,
            value=1.0,
            timestamp=now,
            expires_at=now + sensor.expiry_seconds,
        )
        mem.insert_reading(reading, fetched_at=now)
        rel.insert_reading(reading, fetched_at=now)
    region = Rect(10, 10, 70, 70)
    sketches, readings = rel.cache_read(region, now=1.0, max_staleness=600.0)
    rel_weight = sum(s.count for s in sketches) + len(readings)
    expected = len(registry.within(region))
    assert rel_weight == expected
