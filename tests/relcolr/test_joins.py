"""The declarative join-based descent must agree with the imperative
frontier descent on candidate node sets and cached weights."""

import pytest

from repro import COLRTreeConfig, Reading, Rect
from repro.relcolr import RelCOLRTree
from repro.relcolr.joins import descend_by_joins

from tests.conftest import make_registry


CFG = COLRTreeConfig(
    fanout=4, leaf_capacity=16, max_expiry_seconds=600.0, slot_seconds=120.0
)


@pytest.fixture
def rel():
    registry = make_registry(n=300, seed=80)
    rel = RelCOLRTree(registry.all(), CFG, build_method="str")
    for sensor in registry.all()[:120]:
        rel.insert_reading(
            Reading(
                sensor_id=sensor.sensor_id,
                value=1.0,
                timestamp=0.0,
                expires_at=sensor.expiry_seconds,
            ),
            fetched_at=0.0,
        )
    return registry, rel


def run_joins(rel, region, now=1.0, staleness=600.0):
    return descend_by_joins(
        rel.db,
        rel.names,
        rel.root_id,
        rel.n_levels,
        region,
        now,
        staleness,
        rel.config.slot_seconds,
    )


class TestJoinDescent:
    def test_full_region_reaches_every_node(self, rel):
        registry, tree = rel
        layers = run_joins(tree, Rect(0, 0, 100, 100))
        # Every node except the root appears exactly once.
        all_ids = [row["node_id"] for layer in layers for row in layer]
        n_nodes = len(tree.db.table(tree.names.node_meta))
        assert len(all_ids) == n_nodes - 1
        assert len(set(all_ids)) == len(all_ids)

    def test_partial_region_prunes(self, rel):
        _, tree = rel
        full = run_joins(tree, Rect(0, 0, 100, 100))
        partial = run_joins(tree, Rect(0, 0, 20, 20))
        assert sum(len(l) for l in partial) < sum(len(l) for l in full)

    def test_disjoint_region_empty(self, rel):
        _, tree = rel
        layers = run_joins(tree, Rect(500, 500, 600, 600))
        assert all(layer == [] for layer in layers)

    def test_cached_weights_match_access_method(self, rel):
        _, tree = rel
        layers = run_joins(tree, Rect(0, 0, 100, 100))
        from repro.core.slots import slot_of
        from repro.relational import col

        boundary = slot_of(1.0, tree.config.slot_seconds)
        for layer in layers:
            for row in layer:
                meta = tree.db.table(tree.names.node_meta).get((row["node_id"],))
                expected = tree._usable_cached_weight(
                    row["node_id"], meta, boundary, 1.0 - 600.0
                )
                assert row["cached_weight"] == expected, row

    def test_total_cached_weight_matches_leaf_cache(self, rel):
        _, tree = rel
        layers = run_joins(tree, Rect(0, 0, 100, 100))
        leaf_layer = layers[-1]
        assert sum(r["cached_weight"] for r in leaf_layer) == tree.cached_reading_count()

    def test_weights_match_structure(self, rel):
        _, tree = rel
        layers = run_joins(tree, Rect(0, 0, 100, 100))
        for layer in layers:
            for row in layer:
                meta = tree.db.table(tree.names.node_meta).get((row["node_id"],))
                assert row["weight"] == int(meta["weight"])

    def test_parent_child_linkage(self, rel):
        _, tree = rel
        layers = run_joins(tree, Rect(0, 0, 100, 100))
        previous = {tree.root_id}
        for layer in layers:
            for row in layer:
                assert row["parent_id"] in previous
            previous = {row["node_id"] for row in layer}
