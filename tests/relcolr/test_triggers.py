"""The four maintenance triggers: invariants and in-memory equivalence."""

import pytest

from repro import COLRTree, COLRTreeConfig, Reading
from repro.core.slots import slot_of
from repro.relational import col
from repro.relcolr import RelCOLRTree

from tests.conftest import make_registry


CFG = COLRTreeConfig(
    fanout=4,
    leaf_capacity=16,
    max_expiry_seconds=600.0,
    slot_seconds=120.0,
)


@pytest.fixture
def pair():
    """An in-memory tree and a relational tree over the same structure."""
    registry = make_registry(n=200, seed=8)
    mem = COLRTree(registry.all(), CFG, build_method="str")
    rel = RelCOLRTree(registry.all(), CFG, build_method="str")
    return registry, mem, rel


def reading_for(sensor, value, timestamp):
    return Reading(
        sensor_id=sensor.sensor_id,
        value=value,
        timestamp=timestamp,
        expires_at=timestamp + sensor.expiry_seconds,
    )


def assert_cache_equivalent(mem: COLRTree, rel: RelCOLRTree):
    """Every internal (node, slot) sketch must agree across the two
    implementations (count / sum / min / max / oldest timestamp)."""
    for node in mem.root.iter_subtree():
        if node.is_leaf or node.agg_cache is None:
            continue
        rel_rows = {
            int(r["slot_id"]): r
            for r in rel.db.table(rel.names.cache(node.level)).scan(
                col("node_id") == node.node_id
            )
        }
        mem_slots = {s: node.agg_cache.sketch(s) for s in node.agg_cache.slot_ids()}
        assert set(rel_rows) == set(mem_slots), (node.node_id, rel_rows, mem_slots)
        for slot, sketch in mem_slots.items():
            row = rel_rows[slot]
            assert int(row["value_count"]) == sketch.count
            assert float(row["value_sum"]) == pytest.approx(sketch.total)
            if not sketch.minmax_dirty:
                assert float(row["value_min"]) == pytest.approx(sketch.minimum)
                assert float(row["value_max"]) == pytest.approx(sketch.maximum)


class TestInsertTriggers:
    def test_single_insert_propagates_to_root(self, pair):
        registry, mem, rel = pair
        sensor = registry.all()[0]
        r = reading_for(sensor, 5.0, 10.0)
        mem.insert_reading(r, fetched_at=10.0)
        rel.insert_reading(r, fetched_at=10.0)
        slot = slot_of(r.expires_at, CFG.slot_seconds)
        root_row = rel.cache_row(rel.root_id, slot)
        assert root_row is not None
        assert root_row["value_count"] == 1
        assert root_row["value_sum"] == 5.0
        assert_cache_equivalent(mem, rel)

    def test_bulk_inserts_equivalent(self, pair):
        registry, mem, rel = pair
        for i, sensor in enumerate(registry.all()[:80]):
            r = reading_for(sensor, float(i % 7), timestamp=float(i))
            mem.insert_reading(r, fetched_at=float(i))
            rel.insert_reading(r, fetched_at=float(i))
        assert rel.cached_reading_count() == mem.cached_reading_count
        assert_cache_equivalent(mem, rel)

    def test_update_decrements_equivalent(self, pair):
        registry, mem, rel = pair
        sensor = registry.all()[0]
        r1 = reading_for(sensor, 5.0, 0.0)
        r2 = reading_for(sensor, 9.0, 100.0)
        for t in (mem,):
            t.insert_reading(r1, 0.0)
            t.insert_reading(r2, 100.0)
        rel.insert_reading(r1, 0.0)
        rel.insert_reading(r2, 100.0)
        assert rel.cached_reading_count() == 1
        assert_cache_equivalent(mem, rel)

    def test_min_max_recompute_on_update(self, pair):
        registry, mem, rel = pair
        sensors = registry.all()[:3]
        t0 = 0.0
        values = (1.0, 5.0, 9.0)
        for sensor, v in zip(sensors, values):
            r = reading_for(sensor, v, t0)
            mem.insert_reading(r, t0)
            rel.insert_reading(r, t0)
        # Replace the max with a mid value.
        r_new = reading_for(sensors[2], 4.0, 50.0)
        mem.insert_reading(r_new, 50.0)
        rel.insert_reading(r_new, 50.0)
        assert_cache_equivalent(mem, rel)


class TestRollTrigger:
    def test_window_slide_expunges_old_slots(self, pair):
        registry, _, rel = pair
        sensors = registry.all()
        rel.insert_reading(reading_for(sensors[0], 1.0, 0.0), 0.0)
        n_before = rel.cached_reading_count()
        assert n_before == 1
        # Insert far in the future: window slides past the first slot.
        future = 100_000.0
        rel.insert_reading(reading_for(sensors[1], 2.0, future), future)
        assert rel.cached_reading_count() == 1
        remaining = rel.db.table(rel.names.leaf_cache).scan()
        assert int(remaining[0]["sensor_id"]) == sensors[1].sensor_id

    def test_roll_cleans_aggregates(self, pair):
        registry, _, rel = pair
        sensors = registry.all()
        rel.insert_reading(reading_for(sensors[0], 1.0, 0.0), 0.0)
        old_slot = slot_of(sensors[0].expiry_seconds, CFG.slot_seconds)
        future = 100_000.0
        rel.insert_reading(reading_for(sensors[1], 2.0, future), future)
        assert rel.cache_row(rel.root_id, old_slot) is None


class TestCapacityEviction:
    def test_capacity_enforced_lrf(self):
        registry = make_registry(n=100, seed=9)
        cfg = COLRTreeConfig(
            fanout=4,
            leaf_capacity=16,
            max_expiry_seconds=600.0,
            slot_seconds=120.0,
            cache_capacity=10,
        )
        rel = RelCOLRTree(registry.all(), cfg, build_method="str")
        for i, sensor in enumerate(registry.all()[:30]):
            rel.insert_reading(reading_for(sensor, 1.0, 0.0), fetched_at=float(i))
        assert rel.cached_reading_count() <= 10

    def test_aggregates_consistent_after_eviction(self):
        registry = make_registry(n=100, seed=9)
        cfg = COLRTreeConfig(
            fanout=4,
            leaf_capacity=16,
            max_expiry_seconds=600.0,
            slot_seconds=120.0,
            cache_capacity=10,
        )
        rel = RelCOLRTree(registry.all(), cfg, build_method="str")
        for i, sensor in enumerate(registry.all()[:30]):
            rel.insert_reading(reading_for(sensor, float(i), 0.0), fetched_at=float(i))
        # Root count must equal the surviving leaf-cache rows.
        total = 0
        for level in range(rel.n_levels - 1):
            if level == 0:
                rows = rel.db.table(rel.names.cache(0)).scan(
                    col("node_id") == rel.root_id
                )
                total = sum(int(r["value_count"]) for r in rows)
        assert total == rel.cached_reading_count()
