"""Relational COLR-Tree probe collection through the transport layer.

``RelCOLRTree(transport=...)`` routes ``query()``'s probe round through
a ``ProbeDispatcher`` instead of the direct synchronous
``network.probe`` call; ingestion stays pure DML (the dispatcher gets
``tree=None``), so the trigger cascade is untouched.  In parity mode the
transport path must be bit-identical to the synchronous one; with the
dedup tables on, overlapping queries stop re-contacting sensors."""

from __future__ import annotations

import pytest

from repro import (
    AvailabilityModel,
    COLRTreeConfig,
    Rect,
    SensorNetwork,
)
from repro.relcolr import RelCOLRTree
from repro.transport import TransportConfig

from tests.conftest import make_registry


CFG = COLRTreeConfig(
    fanout=4,
    leaf_capacity=16,
    max_expiry_seconds=600.0,
    slot_seconds=120.0,
)


def make_rel(registry, transport=None, availability=None, seed=2):
    network = SensorNetwork(
        registry.all(), availability_model=AvailabilityModel(), seed=seed
    )
    return RelCOLRTree(
        registry.all(), CFG, network=network, build_method="str", transport=transport
    )


REGIONS = [
    Rect(10.0, 10.0, 60.0, 60.0),
    Rect(30.0, 25.0, 90.0, 80.0),
    Rect(0.0, 0.0, 100.0, 100.0),
]


class TestConstruction:
    def test_no_transport_means_no_dispatcher(self):
        rel = make_rel(make_registry(n=40, seed=4))
        assert rel.dispatcher is None

    def test_disabled_transport_means_no_dispatcher(self):
        rel = make_rel(
            make_registry(n=40, seed=4),
            transport=TransportConfig(enabled=False),
        )
        assert rel.dispatcher is None

    def test_transport_requires_network(self):
        registry = make_registry(n=40, seed=4)
        with pytest.raises(ValueError):
            RelCOLRTree(registry.all(), CFG, transport=TransportConfig.parity())


class TestParity:
    @pytest.mark.parametrize("availability", [1.0, 0.7])
    def test_query_parity_with_sync_path(self, availability):
        """Parity-mode transport leaves no observable trace on the
        relational query path: answers, stats, cached state and network
        counters all match the synchronous tree over multiple ticks."""
        sync = make_rel(make_registry(n=150, availability=availability, seed=4))
        via = make_rel(
            make_registry(n=150, availability=availability, seed=4),
            transport=TransportConfig.parity(),
        )
        assert via.dispatcher is not None
        for tick in range(3):
            now = tick * 45.0
            for region in REGIONS:
                a = sync.query(region, now=now, max_staleness=120.0, sample_size=25)
                b = via.query(region, now=now, max_staleness=120.0, sample_size=25)
                assert a.probed_readings == b.probed_readings
                assert a.cached_readings == b.cached_readings
                assert a.cached_sketches == b.cached_sketches
                assert a.stats == b.stats
                assert a.terminals == b.terminals
        assert sync.network.stats == via.network.stats
        assert sync.cached_reading_count() == via.cached_reading_count()

    def test_exact_query_parity(self):
        sync = make_rel(make_registry(n=100, seed=9))
        via = make_rel(
            make_registry(n=100, seed=9), transport=TransportConfig.parity()
        )
        a = sync.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=60.0,
                       sample_size=10**9)
        b = via.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=60.0,
                      sample_size=10**9)
        assert a.probed_readings == b.probed_readings
        assert a.stats == b.stats


class TestDedup:
    def test_recent_failures_not_recontacted_within_ttl(self):
        """With the recently-probed table on, a failed sensor is not
        re-contacted by a second query inside the ttl — the relational
        path gets the transport layer's traffic savings."""
        registry = make_registry(n=120, availability=0.5, seed=4)
        rel = make_rel(
            registry,
            transport=TransportConfig.parity(inflight_ttl=60.0),
        )
        region = Rect(0.0, 0.0, 100.0, 100.0)
        rel.query(region, now=0.0, max_staleness=120.0, sample_size=10**9)
        attempted = rel.network.stats.probes_attempted
        failures = attempted - rel.network.stats.probes_succeeded
        assert failures > 0
        # Same exact query 10s later: successes are in the leaf cache
        # (not re-selected), failures are re-selected but absorbed by
        # the dispatcher's cached-failure entries.
        rel.query(region, now=10.0, max_staleness=120.0, sample_size=10**9)
        assert rel.network.stats.probes_attempted == attempted
        assert rel.dispatcher.stats.dedup_recent == failures

    def test_ingestion_stays_relational(self):
        """The dispatcher never ingests for the relational tree — the
        round is submitted with ``tree=None`` and readings land in the
        leaf-cache table via DML (visible to a later cache read)."""
        registry = make_registry(n=80, seed=4)
        rel = make_rel(registry, transport=TransportConfig.parity())
        answer = rel.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=120.0, sample_size=10**9
        )
        assert rel.dispatcher.stats.streamed_readings == 0
        assert rel.cached_reading_count() == len(answer.probed_readings)
