import pytest

from repro.relational import Column, Database, TableSchema, col


@pytest.fixture
def db() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "readings",
            columns=(
                Column("id", "int"),
                Column("slot", "int"),
                Column("node", "int"),
                Column("value", "float", nullable=True),
            ),
            primary_key=("id",),
        )
    )
    rows = [
        {"id": 0, "slot": 1, "node": 10, "value": 5.0},
        {"id": 1, "slot": 1, "node": 10, "value": 7.0},
        {"id": 2, "slot": 2, "node": 10, "value": 1.0},
        {"id": 3, "slot": 1, "node": 20, "value": -4.0},
        {"id": 4, "slot": 2, "node": 20, "value": None},
    ]
    db.insert("readings", rows)
    return db


class TestGroupAggregate:
    def test_single_key_grouping(self, db):
        groups = {g["node"]: g for g in db.group_aggregate("readings", ["node"], "value")}
        assert groups[10]["count"] == 3
        assert groups[10]["sum"] == pytest.approx(13.0)
        assert groups[10]["min"] == 1.0 and groups[10]["max"] == 7.0
        assert groups[20]["count"] == 1  # the None value is skipped
        assert groups[20]["min"] == -4.0

    def test_composite_key_grouping(self, db):
        groups = {
            (g["node"], g["slot"]): g
            for g in db.group_aggregate("readings", ["node", "slot"], "value")
        }
        assert groups[(10, 1)]["count"] == 2
        assert groups[(10, 2)]["sum"] == 1.0
        assert groups[(20, 2)]["count"] == 0

    def test_where_filters_before_grouping(self, db):
        groups = db.group_aggregate("readings", ["node"], "value", col("slot") == 1)
        by_node = {g["node"]: g for g in groups}
        assert by_node[10]["count"] == 2
        assert by_node[20]["sum"] == -4.0

    def test_empty_group_by_rejected(self, db):
        with pytest.raises(ValueError):
            db.group_aggregate("readings", [], "value")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(KeyError):
            db.group_aggregate("readings", ["nope"], "value")
        with pytest.raises(KeyError):
            db.group_aggregate("readings", ["node"], "nope")

    def test_no_matching_rows(self, db):
        assert db.group_aggregate("readings", ["node"], "value", col("slot") == 99) == []
