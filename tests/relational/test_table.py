import pytest

from repro.relational import TableSchema, col
from repro.relational.table import Table


@pytest.fixture
def table() -> Table:
    schema = TableSchema.of(
        "readings",
        [("id", "int"), ("slot", "int"), ("value", "float")],
        ["id"],
    )
    t = Table(schema)
    for i in range(10):
        t._store({"id": i, "slot": i % 3, "value": float(i)})
    return t


class TestStorage:
    def test_len_and_iter(self, table):
        assert len(table) == 10
        assert len(list(table)) == 10

    def test_duplicate_pk_rejected(self, table):
        with pytest.raises(KeyError):
            table._store({"id": 3, "slot": 0, "value": 0.0})

    def test_get_returns_copy(self, table):
        row = table.get((3,))
        row["value"] = 999.0
        assert table.get((3,))["value"] == 3.0

    def test_get_missing(self, table):
        assert table.get((99,)) is None

    def test_erase(self, table):
        table._erase((3,))
        assert len(table) == 9
        assert not table.contains_key((3,))

    def test_modify_returns_old_and_new(self, table):
        old, new = table._modify((3,), {"value": 30.0})
        assert old["value"] == 3.0 and new["value"] == 30.0
        assert table.get((3,))["value"] == 30.0

    def test_modify_missing_rejected(self, table):
        with pytest.raises(KeyError):
            table._modify((99,), {"value": 1.0})

    def test_modify_key_collision_rejected(self, table):
        with pytest.raises(KeyError):
            table._modify((3,), {"id": 4})


class TestScanAndIndex:
    def test_scan_all(self, table):
        assert len(table.scan()) == 10

    def test_scan_with_predicate(self, table):
        rows = table.scan(col("slot") == 1)
        assert {r["id"] for r in rows} == {1, 4, 7}

    def test_index_used_and_maintained(self, table):
        table.create_index("slot")
        assert {r["id"] for r in table.scan(col("slot") == 1)} == {1, 4, 7}
        table._erase((4,))
        assert {r["id"] for r in table.scan(col("slot") == 1)} == {1, 7}
        table._store({"id": 40, "slot": 1, "value": 0.0})
        assert {r["id"] for r in table.scan(col("slot") == 1)} == {1, 7, 40}

    def test_index_with_conjunction(self, table):
        table.create_index("slot")
        rows = table.scan((col("slot") == 1) & (col("value") > 2.0))
        assert {r["id"] for r in rows} == {4, 7}

    def test_index_after_modify(self, table):
        table.create_index("slot")
        table._modify((1,), {"slot": 2})
        assert 1 not in {r["id"] for r in table.scan(col("slot") == 1)}
        assert 1 in {r["id"] for r in table.scan(col("slot") == 2)}

    def test_count(self, table):
        assert table.count(col("slot") == 0) == 4
        assert table.count() == 10

    def test_keys_matching(self, table):
        assert sorted(table.keys_matching(col("value") >= 8.0)) == [(8,), (9,)]

    def test_aggregate(self, table):
        total = table.aggregate("value", lambda a, b: a + b, 0.0, col("slot") == 0)
        assert total == 0.0 + 3.0 + 6.0 + 9.0

    def test_index_on_unknown_column_rejected(self, table):
        with pytest.raises(KeyError):
            table.create_index("nope")
