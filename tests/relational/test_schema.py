import pytest

from repro.relational import Column, TableSchema


class TestColumn:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            Column("x", "varchar")

    def test_validate_int(self):
        Column("x", "int").validate(5)
        with pytest.raises(TypeError):
            Column("x", "int").validate("5")

    def test_validate_float_accepts_int(self):
        Column("x", "float").validate(5)
        Column("x", "float").validate(5.0)

    def test_validate_float_rejects_bool(self):
        with pytest.raises(TypeError):
            Column("x", "float").validate(True)

    def test_nullable(self):
        Column("x", "int", nullable=True).validate(None)
        with pytest.raises(TypeError):
            Column("x", "int").validate(None)


class TestTableSchema:
    def test_of_constructor(self):
        s = TableSchema.of("t", [("a", "int"), ("b", "text")], ["a"])
        assert s.column_names() == ("a", "b")
        assert s.primary_key == ("a",)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema.of("t", [("a", "int"), ("a", "int")], ["a"])

    def test_missing_pk_column_rejected(self):
        with pytest.raises(ValueError):
            TableSchema.of("t", [("a", "int")], ["b"])

    def test_nullable_pk_rejected(self):
        with pytest.raises(ValueError):
            TableSchema(
                "t", columns=(Column("a", "int", nullable=True),), primary_key=("a",)
            )

    def test_empty_pk_rejected(self):
        with pytest.raises(ValueError):
            TableSchema.of("t", [("a", "int")], [])

    def test_validate_row(self):
        s = TableSchema.of("t", [("a", "int"), ("b", "float")], ["a"])
        s.validate_row({"a": 1, "b": 2.0})
        with pytest.raises(KeyError):
            s.validate_row({"a": 1})
        with pytest.raises(KeyError):
            s.validate_row({"a": 1, "b": 2.0, "c": 3})

    def test_composite_key_of(self):
        s = TableSchema.of("t", [("a", "int"), ("b", "int"), ("v", "float")], ["a", "b"])
        assert s.key_of({"a": 1, "b": 2, "v": 3.0}) == (1, 2)

    def test_unknown_column_lookup(self):
        s = TableSchema.of("t", [("a", "int")], ["a"])
        with pytest.raises(KeyError):
            s.column("z")
