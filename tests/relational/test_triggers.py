import pytest

from repro.relational import Database, TableSchema, Trigger, TriggerEvent, col
from repro.relational.triggers import TriggerInvocation, TriggerSet


def fresh_db() -> Database:
    db = Database()
    db.create_table(TableSchema.of("a", [("id", "int"), ("v", "float")], ["id"]))
    db.create_table(TableSchema.of("log", [("seq", "int"), ("msg", "text")], ["seq"]))
    return db


class TestDispatch:
    def test_insert_trigger_receives_statement_rows(self):
        db = fresh_db()
        seen = []
        db.create_trigger(
            Trigger(
                "t1",
                "a",
                TriggerEvent.INSERT,
                lambda d, inv: seen.append([r["id"] for r in inv.inserted]),
            )
        )
        db.insert("a", [{"id": 1, "v": 1.0}, {"id": 2, "v": 2.0}])
        # Statement-level: one invocation for the whole insert.
        assert seen == [[1, 2]]

    def test_update_trigger_gets_old_and_new(self):
        db = fresh_db()
        captured = {}
        def body(d, inv):
            captured["old"] = inv.deleted[0]["v"]
            captured["new"] = inv.inserted[0]["v"]
        db.create_trigger(Trigger("t1", "a", TriggerEvent.UPDATE, body))
        db.insert("a", [{"id": 1, "v": 1.0}])
        db.update("a", {"v": 9.0}, col("id") == 1)
        assert captured == {"old": 1.0, "new": 9.0}

    def test_delete_trigger_gets_old_rows(self):
        db = fresh_db()
        seen = []
        db.create_trigger(
            Trigger(
                "t1",
                "a",
                TriggerEvent.DELETE,
                lambda d, inv: seen.extend(r["id"] for r in inv.deleted),
            )
        )
        db.insert("a", [{"id": 1, "v": 1.0}, {"id": 2, "v": 2.0}])
        db.delete("a", col("id") == 2)
        assert seen == [2]

    def test_no_fire_on_empty_statement(self):
        db = fresh_db()
        fired = []
        db.create_trigger(
            Trigger("t1", "a", TriggerEvent.DELETE, lambda d, inv: fired.append(1))
        )
        db.delete("a", col("id") == 99)
        assert fired == []

    def test_trigger_on_unknown_table_rejected(self):
        db = fresh_db()
        with pytest.raises(KeyError):
            db.create_trigger(
                Trigger("t1", "nope", TriggerEvent.INSERT, lambda d, inv: None)
            )


class TestCascade:
    def test_trigger_dml_fires_further_triggers(self):
        db = fresh_db()
        db.create_table(TableSchema.of("b", [("id", "int")], ["id"]))
        def into_b(d, inv):
            d.insert("b", [{"id": r["id"]} for r in inv.inserted])
        log = []
        db.create_trigger(Trigger("a_to_b", "a", TriggerEvent.INSERT, into_b))
        db.create_trigger(
            Trigger(
                "b_log",
                "b",
                TriggerEvent.INSERT,
                lambda d, inv: log.extend(r["id"] for r in inv.inserted),
            )
        )
        db.insert("a", [{"id": 7, "v": 0.0}])
        assert log == [7]
        assert len(db.table("b")) == 1

    def test_infinite_cascade_guarded(self):
        db = fresh_db()
        def recurse(d, inv):
            next_id = max(r["id"] for r in inv.inserted) + 1
            d.insert("a", [{"id": next_id, "v": 0.0}])
        db.create_trigger(Trigger("loop", "a", TriggerEvent.INSERT, recurse))
        with pytest.raises(RecursionError):
            db.insert("a", [{"id": 0, "v": 0.0}])


class TestTriggerSet:
    def test_duplicate_name_rejected(self):
        ts = TriggerSet()
        t = Trigger("x", "a", TriggerEvent.INSERT, lambda d, inv: None)
        ts.register(t)
        with pytest.raises(ValueError):
            ts.register(t)

    def test_drop(self):
        ts = TriggerSet()
        ts.register(Trigger("x", "a", TriggerEvent.INSERT, lambda d, inv: None))
        ts.drop("x")
        assert ts.triggers_for("a", TriggerEvent.INSERT) == ()
        with pytest.raises(KeyError):
            ts.drop("x")

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            TriggerSet(max_depth=0)

    def test_fire_without_bindings_is_noop(self):
        ts = TriggerSet()
        ts.fire(None, TriggerInvocation(table="a", event=TriggerEvent.INSERT))
