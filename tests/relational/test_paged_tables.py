"""Paged table spill: write-through backing, reopen, drop semantics."""

import pytest

from repro.relational.engine import Database
from repro.relational.predicate import Comparison
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.storage import BPlusTree, PagedTableBacking, Pager

SCHEMA = TableSchema(
    "readings",
    (
        Column("id", "int"),
        Column("tag", "text"),
        Column("value", "float", nullable=True),
    ),
    ("id",),
)


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "tables.db"


def open_db(path) -> tuple[Database, Pager]:
    pager = Pager(path, page_size=1024)
    return Database(pager=pager), pager


class TestWriteThrough:
    def test_rows_survive_reopen(self, db_path):
        db, pager = open_db(db_path)
        db.create_table(SCHEMA)
        db.insert(
            "readings",
            [{"id": i, "tag": f"t{i}", "value": float(i)} for i in range(20)],
        )
        pager.close()
        db2, pager2 = open_db(db_path)
        table = db2.create_table(SCHEMA)  # reopen reloads persisted rows
        assert len(table) == 20
        assert db2.select("readings", Comparison("id", "==", 7)) == [
            {"id": 7, "tag": "t7", "value": 7.0}
        ]
        pager2.close()

    def test_updates_and_deletes_are_mirrored(self, db_path):
        db, pager = open_db(db_path)
        db.create_table(SCHEMA)
        db.insert(
            "readings",
            [{"id": i, "tag": "x", "value": 0.0} for i in range(10)],
        )
        db.update("readings", {"value": 9.5}, Comparison("id", "==", 3))
        db.delete("readings", Comparison("id", ">=", 8))
        pager.close()
        db2, pager2 = open_db(db_path)
        table = db2.create_table(SCHEMA)
        assert len(table) == 8
        assert table.get((3,))["value"] == 9.5
        assert table.get((8,)) is None
        pager2.close()

    def test_upsert_round_trips(self, db_path):
        db, pager = open_db(db_path)
        db.create_table(SCHEMA)
        db.upsert("readings", {"id": 1, "tag": "new", "value": 1.0})
        db.upsert("readings", {"id": 1, "tag": "updated", "value": 2.0})
        pager.close()
        db2, pager2 = open_db(db_path)
        table = db2.create_table(SCHEMA)
        assert len(table) == 1
        assert table.get((1,))["tag"] == "updated"
        pager2.close()


class TestDrop:
    def test_drop_clears_persisted_rows(self, db_path):
        db, pager = open_db(db_path)
        db.create_table(SCHEMA)
        db.insert("readings", [{"id": 1, "tag": "a", "value": None}])
        db.drop_table("readings")
        assert db.create_table(SCHEMA).scan() == []  # recreate: empty
        pager.close()
        db2, pager2 = open_db(db_path)
        assert db2.create_table(SCHEMA).scan() == []
        pager2.close()


class TestBackingContract:
    def test_load_into_populated_table_rejected(self, db_path):
        pager = Pager(db_path, page_size=1024)
        table = Table(SCHEMA)
        table._store({"id": 1, "tag": "a", "value": None})
        backing = PagedTableBacking(BPlusTree(pager, "readings"))
        with pytest.raises(ValueError):
            table.attach_backing(backing, load=True)
        pager.close()

    def test_no_pager_means_no_backing(self):
        db = Database()
        table = db.create_table(SCHEMA)
        assert table.backing is None
        db.insert("readings", [{"id": 1, "tag": "a", "value": None}])
        assert len(table) == 1
