import pytest

from repro.geometry import Rect
from repro.relational import (
    AllOf,
    AnyOf,
    BBoxIntersects,
    Between,
    Comparison,
    InSet,
    TruePredicate,
    col,
)


ROW = {"a": 5, "b": 2.5, "s": "x", "n": None}


class TestComparison:
    def test_operators(self):
        assert Comparison("a", "==", 5).matches(ROW)
        assert Comparison("a", "!=", 4).matches(ROW)
        assert Comparison("a", "<", 6).matches(ROW)
        assert Comparison("a", "<=", 5).matches(ROW)
        assert Comparison("a", ">", 4).matches(ROW)
        assert Comparison("a", ">=", 5).matches(ROW)
        assert not Comparison("a", ">", 5).matches(ROW)

    def test_null_never_matches(self):
        assert not Comparison("n", "==", None).matches(ROW)
        assert not Comparison("missing", "==", 1).matches(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("a", "~", 1)


class TestCombinators:
    def test_between(self):
        assert Between("a", 5, 10).matches(ROW)
        assert not Between("a", 6, 10).matches(ROW)
        assert not Between("n", 0, 10).matches(ROW)

    def test_in_set(self):
        assert InSet("s", ["x", "y"]).matches(ROW)
        assert not InSet("s", ["y"]).matches(ROW)

    def test_all_of(self):
        p = AllOf([Comparison("a", ">", 1), Comparison("b", "<", 3)])
        assert p.matches(ROW)
        assert not AllOf([Comparison("a", ">", 9), TruePredicate()]).matches(ROW)

    def test_any_of(self):
        assert AnyOf([Comparison("a", ">", 9), Comparison("b", "<", 3)]).matches(ROW)
        assert not AnyOf([Comparison("a", ">", 9)]).matches(ROW)

    def test_operator_overloads(self):
        p = (col("a") > 1) & (col("b") < 3)
        assert p.matches(ROW)
        q = (col("a") > 9) | (col("b") < 3)
        assert q.matches(ROW)

    def test_col_builder(self):
        assert (col("a") == 5).matches(ROW)
        assert (col("a") != 6).matches(ROW)
        assert col("a").between(0, 10).matches(ROW)
        assert col("s").in_(["x"]).matches(ROW)


class TestBBoxIntersects:
    def test_intersecting(self):
        row = {"min_x": 0.0, "min_y": 0.0, "max_x": 2.0, "max_y": 2.0}
        p = BBoxIntersects("min_x", "min_y", "max_x", "max_y", Rect(1, 1, 3, 3))
        assert p.matches(row)

    def test_disjoint(self):
        row = {"min_x": 0.0, "min_y": 0.0, "max_x": 2.0, "max_y": 2.0}
        p = BBoxIntersects("min_x", "min_y", "max_x", "max_y", Rect(5, 5, 6, 6))
        assert not p.matches(row)

    def test_missing_columns_never_match(self):
        p = BBoxIntersects("min_x", "min_y", "max_x", "max_y", Rect(0, 0, 1, 1))
        assert not p.matches({"min_x": 0.0})
