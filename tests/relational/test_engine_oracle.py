"""Stateful differential test: random DML against a dict oracle.

Hypothesis drives arbitrary insert / update / delete / upsert sequences
against both the relational engine and a plain-dict model; after every
step the full table contents must agree, and reads through indexes must
match brute-force filtering.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Database, TableSchema, col


def fresh_db(indexed: bool) -> Database:
    db = Database()
    table = db.create_table(
        TableSchema.of(
            "t", [("id", "int"), ("bucket", "int"), ("v", "float")], ["id"]
        )
    )
    if indexed:
        table.create_index("bucket")
    return db


op_strategy = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    st.tuples(
        st.just("update"),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    st.tuples(
        st.just("delete"),
        st.integers(min_value=0, max_value=30),
        st.just(0),
        st.just(0.0),
    ),
    st.tuples(
        st.just("delete_bucket"),
        st.integers(min_value=0, max_value=5),
        st.just(0),
        st.just(0.0),
    ),
    st.tuples(
        st.just("upsert"),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
)


@given(st.lists(op_strategy, max_size=60), st.booleans())
@settings(max_examples=150, deadline=None)
def test_engine_matches_dict_oracle(ops, indexed):
    db = fresh_db(indexed)
    oracle: dict[int, dict] = {}
    for op, a, b, c in ops:
        if op == "insert":
            row = {"id": a, "bucket": b, "v": c}
            if a in oracle:
                try:
                    db.insert("t", [row])
                    raise AssertionError("duplicate pk accepted")
                except KeyError:
                    pass
            else:
                db.insert("t", [row])
                oracle[a] = row
        elif op == "update":
            n = db.update("t", {"bucket": b, "v": c}, col("id") == a)
            if a in oracle:
                assert n == 1
                oracle[a] = {"id": a, "bucket": b, "v": c}
            else:
                assert n == 0
        elif op == "delete":
            n = db.delete("t", col("id") == a)
            assert n == (1 if a in oracle else 0)
            oracle.pop(a, None)
        elif op == "delete_bucket":
            n = db.delete("t", col("bucket") == a)
            victims = [k for k, row in oracle.items() if row["bucket"] == a]
            assert n == len(victims)
            for k in victims:
                del oracle[k]
        elif op == "upsert":
            db.upsert("t", {"id": a, "bucket": b, "v": c})
            oracle[a] = {"id": a, "bucket": b, "v": c}
        # Full-state agreement after every operation.
        rows = {r["id"]: r for r in db.select("t")}
        assert rows == oracle
    # Indexed reads agree with brute force at the end.
    for bucket in range(6):
        expected = sorted(k for k, row in oracle.items() if row["bucket"] == bucket)
        got = sorted(r["id"] for r in db.select("t", col("bucket") == bucket))
        assert got == expected
