import pytest

from repro.relational import Database, TableSchema, col


@pytest.fixture
def db() -> Database:
    db = Database()
    db.create_table(TableSchema.of("t", [("id", "int"), ("v", "float")], ["id"]))
    db.insert("t", [{"id": i, "v": float(i)} for i in range(5)])
    return db


class TestDDL:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValueError):
            db.create_table(TableSchema.of("t", [("id", "int")], ["id"]))

    def test_drop_table(self, db):
        db.drop_table("t")
        with pytest.raises(KeyError):
            db.table("t")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(KeyError):
            db.table("nope")

    def test_table_names(self, db):
        assert db.table_names() == ["t"]


class TestDML:
    def test_insert_returns_count(self, db):
        assert db.insert("t", [{"id": 10, "v": 1.0}]) == 1
        assert len(db.table("t")) == 6

    def test_update_matching_rows(self, db):
        n = db.update("t", {"v": 100.0}, col("id") >= 3)
        assert n == 2
        assert db.table("t").get((3,))["v"] == 100.0
        assert db.table("t").get((0,))["v"] == 0.0

    def test_update_no_match(self, db):
        assert db.update("t", {"v": 1.0}, col("id") == 99) == 0

    def test_delete(self, db):
        assert db.delete("t", col("id") < 2) == 2
        assert len(db.table("t")) == 3

    def test_delete_all(self, db):
        assert db.delete("t") == 5
        assert len(db.table("t")) == 0

    def test_upsert_inserts_then_updates(self, db):
        db.upsert("t", {"id": 50, "v": 1.0})
        assert db.table("t").get((50,))["v"] == 1.0
        db.upsert("t", {"id": 50, "v": 2.0})
        assert db.table("t").get((50,))["v"] == 2.0
        assert len(db.table("t")) == 6


class TestSelect:
    def test_select_with_projection(self, db):
        rows = db.select("t", col("id") == 2, columns=["v"])
        assert rows == [{"v": 2.0}]

    def test_select_all(self, db):
        assert len(db.select("t")) == 5


class TestEquijoin:
    @pytest.fixture
    def joined_db(self) -> Database:
        db = Database()
        db.create_table(
            TableSchema.of("parent", [("node", "int"), ("child", "int")], ["node", "child"])
        )
        db.create_table(TableSchema.of("meta", [("node", "int"), ("w", "int")], ["node"]))
        db.insert("parent", [{"node": 0, "child": 1}, {"node": 0, "child": 2}])
        db.insert("meta", [{"node": 1, "w": 10}, {"node": 2, "w": 20}, {"node": 3, "w": 30}])
        return db

    def test_join_prefixes_columns(self, joined_db):
        rows = joined_db.equijoin("parent", "meta", "child", "node")
        assert len(rows) == 2
        assert {r["meta.w"] for r in rows} == {10, 20}
        assert all(r["parent.node"] == 0 for r in rows)

    def test_join_with_filters(self, joined_db):
        rows = joined_db.equijoin(
            "parent",
            "meta",
            "child",
            "node",
            where=col("meta.w") > 10,
        )
        assert [r["meta.w"] for r in rows] == [20]

    def test_join_side_filters(self, joined_db):
        rows = joined_db.equijoin(
            "parent", "meta", "child", "node", right_where=col("w") == 10
        )
        assert len(rows) == 1
