"""Heap record files: append-order iteration, page spanning, reopen."""

import pytest

from repro.storage import Pager, RecordHeap


@pytest.fixture
def pager(tmp_path):
    p = Pager(tmp_path / "heap.db", page_size=512)
    yield p
    p.close()


class TestAppendRead:
    def test_round_trip_preserves_order(self, pager):
        heap = RecordHeap(pager, "h")
        records = [f"record-{i}".encode() for i in range(50)]
        heap.append_many(records)
        assert heap.read_all() == records
        assert len(heap) == 50

    def test_empty_heap(self, pager):
        heap = RecordHeap(pager, "h")
        assert heap.read_all() == []
        assert len(heap) == 0

    def test_empty_record_round_trips(self, pager):
        heap = RecordHeap(pager, "h")
        heap.append(b"")
        heap.append(b"after-empty")
        assert heap.read_all() == [b"", b"after-empty"]

    def test_record_larger_than_one_page_spans(self, pager):
        heap = RecordHeap(pager, "h")
        big = bytes(range(256)) * 8  # 2 KiB >> 512-byte pages
        heap.append(big)
        heap.append(b"tail")
        assert heap.read_all() == [big, b"tail"]

    def test_generator_input_is_consumed_once(self, pager):
        heap = RecordHeap(pager, "h")
        heap.append_many(bytes([i]) for i in range(10))
        assert len(heap) == 10

    def test_two_heaps_do_not_interfere(self, pager):
        a = RecordHeap(pager, "a")
        b = RecordHeap(pager, "b")
        a.append(b"from-a")
        b.append(b"from-b")
        a.append(b"also-a")
        assert a.read_all() == [b"from-a", b"also-a"]
        assert b.read_all() == [b"from-b"]


class TestDurability:
    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "heap.db"
        pager = Pager(path, page_size=512)
        RecordHeap(pager, "h").append_many([b"one", b"two", b"three"])
        pager.close()
        reopened = Pager(path, page_size=512)
        assert RecordHeap(reopened, "h").read_all() == [b"one", b"two", b"three"]
        reopened.close()

    def test_clear_releases_pages_for_reuse(self, pager):
        heap = RecordHeap(pager, "h")
        heap.append_many([b"x" * 100 for _ in range(20)])
        count_after_fill = pager.page_count
        heap.clear()
        assert heap.read_all() == []
        heap.append_many([b"y" * 100 for _ in range(20)])
        assert pager.page_count == count_after_fill  # freed pages reused
