"""Slotted page file: allocation, free list, CRC, catalog, reopen."""

import struct

import pytest

from repro.storage import PageCorruptionError, Pager


class TestAllocation:
    def test_fresh_file_has_header_only(self, tmp_path):
        pager = Pager(tmp_path / "p.db", page_size=512)
        assert pager.page_count == 1  # page 0 is the header
        assert pager.free_head == 0
        pager.close()

    def test_allocate_extends_file(self, tmp_path):
        pager = Pager(tmp_path / "p.db", page_size=512)
        a = pager.allocate()
        b = pager.allocate()
        assert (a, b) == (1, 2)
        assert pager.page_count == 3
        pager.close()

    def test_freed_page_is_reused(self, tmp_path):
        pager = Pager(tmp_path / "p.db", page_size=512)
        a = pager.allocate()
        pager.allocate()
        pager.free(a)
        assert pager.allocate() == a
        assert pager.page_count == 3  # no growth
        pager.close()

    def test_free_chain_releases_every_link(self, tmp_path):
        pager = Pager(tmp_path / "p.db", page_size=512)
        ids = [pager.allocate() for _ in range(4)]
        for prev, nxt in zip(ids, ids[1:] + [0]):
            pager.write(prev, b"x", next_page=nxt)
        freed = pager.free_chain(ids[0])
        assert freed == 4
        assert sorted(pager.allocate() for _ in range(4)) == sorted(ids)
        pager.close()


class TestReadWrite:
    def test_payload_round_trip(self, tmp_path):
        pager = Pager(tmp_path / "p.db", page_size=512)
        pid = pager.allocate()
        pager.write(pid, b"hello world", next_page=7)
        payload, next_page = pager.read(pid)
        assert payload == b"hello world"
        assert next_page == 7
        pager.close()

    def test_oversized_payload_rejected(self, tmp_path):
        pager = Pager(tmp_path / "p.db", page_size=512)
        pid = pager.allocate()
        with pytest.raises(ValueError):
            pager.write(pid, b"x" * (pager.capacity + 1))
        pager.close()

    def test_out_of_range_page_id_rejected(self, tmp_path):
        pager = Pager(tmp_path / "p.db", page_size=512)
        with pytest.raises(ValueError):
            pager.read(5)
        pager.close()

    def test_io_is_metered(self, tmp_path):
        pager = Pager(tmp_path / "p.db", page_size=512)
        writes_before = pager.stats.page_writes
        pid = pager.allocate()
        pager.write(pid, b"abc")
        pager.read(pid)
        assert pager.stats.page_writes > writes_before
        assert pager.stats.page_reads >= 1
        pager.close()


class TestDurability:
    def test_state_survives_reopen(self, tmp_path):
        path = tmp_path / "p.db"
        pager = Pager(path, page_size=512)
        pid = pager.allocate()
        pager.write(pid, b"persisted")
        pager.catalog_put("heap", {"head": pid, "count": 1})
        pager.close()
        reopened = Pager(path, page_size=512)
        assert reopened.page_count == 2
        assert reopened.read(pid) == (b"persisted", 0)
        assert reopened.catalog_get("heap") == {"head": pid, "count": 1}
        reopened.close()

    def test_reopen_uses_on_disk_page_size(self, tmp_path):
        path = tmp_path / "p.db"
        Pager(path, page_size=1024).close()
        reopened = Pager(path, page_size=4096)  # wrong guess: file wins
        assert reopened.page_size == 1024
        reopened.close()

    def test_catalog_delete_persists(self, tmp_path):
        path = tmp_path / "p.db"
        pager = Pager(path, page_size=512)
        pager.catalog_put("t", {"head": 0})
        pager.catalog_delete("t")
        pager.close()
        reopened = Pager(path, page_size=512)
        assert reopened.catalog_get("t") is None
        reopened.close()


class TestCorruption:
    def test_flipped_byte_fails_page_crc(self, tmp_path):
        path = tmp_path / "p.db"
        pager = Pager(path, page_size=512)
        pid = pager.allocate()
        pager.write(pid, b"x" * 100)
        pager.close()
        raw = bytearray(path.read_bytes())
        raw[pid * 512 + 50] ^= 0xFF  # inside the payload
        path.write_bytes(bytes(raw))
        reopened = Pager(path, page_size=512)
        with pytest.raises(PageCorruptionError):
            reopened.read(pid)
        reopened.close()

    def test_corrupt_header_rejected_on_open(self, tmp_path):
        path = tmp_path / "p.db"
        Pager(path, page_size=512).close()
        raw = bytearray(path.read_bytes())
        raw[20] ^= 0xFF  # inside the header body, CRC no longer matches
        path.write_bytes(bytes(raw))
        with pytest.raises(PageCorruptionError):
            Pager(path, page_size=512)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "p.db"
        Pager(path, page_size=512).close()
        raw = bytearray(path.read_bytes())
        struct.pack_into("<8s", raw, 4, b"NOTAPAGE")
        path.write_bytes(bytes(raw))
        with pytest.raises(PageCorruptionError):
            Pager(path, page_size=512)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "p.db"
        path.write_bytes(b"\x00" * 8)
        with pytest.raises(PageCorruptionError):
            Pager(path, page_size=512)
