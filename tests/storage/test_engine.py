"""Storage engine: journaling, recovery, checkpoint rotation, sweep."""

import pytest

from repro.geometry import GeoPoint
from repro.sensors.registry import SensorRegistry
from repro.sensors.sensor import Reading
from repro.storage import StorageConfig, StorageEngine, stored_sensor_ids, wipe_data_dir
from repro.storage.engine import describe_data_dir


def make_sensors(n: int):
    registry = SensorRegistry()
    return [
        registry.register(
            GeoPoint(float(i), float(i)), expiry_seconds=300.0,
            sensor_type="temperature",
        )
        for i in range(n)
    ]


def make_batch(sensors, fetched_at: float) -> list[Reading]:
    return [
        Reading(
            sensor_id=s.sensor_id,
            value=fetched_at + s.sensor_id,
            timestamp=fetched_at,
            expires_at=fetched_at + s.expiry_seconds,
        )
        for s in sensors
    ]


def config(tmp_path, **kw) -> StorageConfig:
    return StorageConfig(data_dir=tmp_path / "data", fsync_enabled=False, **kw)


class TestFreshDirectory:
    def test_empty_dir_recovers_nothing(self, tmp_path):
        engine = StorageEngine(config(tmp_path))
        assert not engine.recovered.has_state
        assert engine.recovered.batches == []
        assert engine.recovery_cost_seconds == 0.0
        assert engine.stats.recoveries == 0
        engine.close()

    def test_manifest_written_on_first_open(self, tmp_path):
        StorageEngine(config(tmp_path)).close()
        info = describe_data_dir(tmp_path / "data")
        assert info["exists"] and info["epoch"] == 1
        assert info["checkpoint"] is None


class TestWalRecovery:
    def test_crash_recovers_registrations_and_batches(self, tmp_path):
        sensors = make_sensors(5)
        engine = StorageEngine(config(tmp_path))
        for s in sensors:
            engine.journal_register(s)
        engine.journal_batch(make_batch(sensors, 10.0), fetched_at=10.0)
        engine.journal_batch(make_batch(sensors[:2], 40.0), fetched_at=40.0)
        engine.crash()
        recovered = StorageEngine(config(tmp_path)).recovered
        assert [s.sensor_id for s in recovered.sensors] == [0, 1, 2, 3, 4]
        assert [f for f, _ in recovered.batches] == [10.0, 40.0]
        assert recovered.reading_count == 7
        assert recovered.clock_now == 40.0
        assert recovered.wal_records == 7  # 5 registrations + 2 batches

    def test_batches_keep_original_boundaries_and_order(self, tmp_path):
        sensors = make_sensors(3)
        engine = StorageEngine(config(tmp_path))
        batches = [make_batch(sensors, t) for t in (5.0, 3.0, 9.0)]
        for t, batch in zip((5.0, 3.0, 9.0), batches):
            engine.journal_batch(batch, fetched_at=t)
        engine.crash()
        recovered = StorageEngine(config(tmp_path)).recovered
        # Append order, not fetch-time order: replay is a redo log.
        assert [f for f, _ in recovered.batches] == [5.0, 3.0, 9.0]
        assert recovered.batches[1][1] == batches[1]

    def test_empty_batch_not_journaled(self, tmp_path):
        engine = StorageEngine(config(tmp_path))
        appends_before = engine.stats.wal_appends
        engine.journal_batch([], fetched_at=1.0)
        assert engine.stats.wal_appends == appends_before
        engine.close()

    def test_torn_tail_recovers_prefix(self, tmp_path):
        sensors = make_sensors(2)
        engine = StorageEngine(config(tmp_path))
        engine.journal_batch(make_batch(sensors, 1.0), fetched_at=1.0)
        engine.journal_batch(make_batch(sensors, 2.0), fetched_at=2.0)
        engine.crash()
        wal_path = next((tmp_path / "data").glob("wal-*.log"))
        raw = bytearray(wal_path.read_bytes())
        raw[-1] ^= 0xFF
        wal_path.write_bytes(bytes(raw))
        recovered = StorageEngine(config(tmp_path)).recovered
        assert recovered.torn_tail_truncated
        assert [f for f, _ in recovered.batches] == [1.0]

    def test_recovery_cost_scales_with_wal_records(self, tmp_path):
        sensors = make_sensors(4)
        engine = StorageEngine(config(tmp_path))
        for s in sensors:
            engine.journal_register(s)
        engine.crash()
        reopened = StorageEngine(config(tmp_path))
        expected = 4 * reopened.config.per_wal_record_seconds
        assert reopened.recovery_cost_seconds == pytest.approx(expected)
        assert reopened.stats.recoveries == 1


class TestCheckpoint:
    def test_checkpoint_then_reopen_needs_no_wal(self, tmp_path):
        sensors = make_sensors(6)
        engine = StorageEngine(config(tmp_path))
        for s in sensors:
            engine.journal_register(s)
        batch = make_batch(sensors, 20.0)
        engine.journal_batch(batch, fetched_at=20.0)
        engine.checkpoint(
            sensors=sensors,
            cached=[(r, 20.0) for r in batch],
            clock_now=25.0,
        )
        engine.close()
        reopened = StorageEngine(config(tmp_path))
        rec = reopened.recovered
        assert rec.wal_records == 0
        assert rec.checkpoint_pages > 0
        assert [s.sensor_id for s in rec.sensors] == [s.sensor_id for s in sensors]
        assert rec.reading_count == 6
        assert rec.clock_now == 25.0
        reopened.close()

    def test_checkpoint_rotates_files(self, tmp_path):
        engine = StorageEngine(config(tmp_path))
        engine.checkpoint(sensors=make_sensors(1), cached=[], clock_now=0.0)
        data = tmp_path / "data"
        assert [p.name for p in data.glob("checkpoint-*.db")] == ["checkpoint-2.db"]
        assert [p.name for p in data.glob("wal-*.log")] == ["wal-2.log"]
        assert engine.epoch == 2
        engine.close()

    def test_journal_after_checkpoint_replays_on_top(self, tmp_path):
        sensors = make_sensors(3)
        engine = StorageEngine(config(tmp_path))
        batch = make_batch(sensors, 10.0)
        engine.checkpoint(
            sensors=sensors, cached=[(r, 10.0) for r in batch], clock_now=10.0
        )
        engine.journal_batch(make_batch(sensors, 50.0), fetched_at=50.0)
        engine.crash()
        rec = StorageEngine(config(tmp_path)).recovered
        assert [f for f, _ in rec.batches] == [10.0, 50.0]
        assert rec.clock_now == 50.0


class TestHygiene:
    def test_stale_files_swept_on_open(self, tmp_path):
        StorageEngine(config(tmp_path)).close()
        data = tmp_path / "data"
        (data / "checkpoint-99.db").write_bytes(b"leftover")
        (data / "wal-99.log").write_bytes(b"leftover")
        StorageEngine(config(tmp_path)).close()
        assert not (data / "checkpoint-99.db").exists()
        assert not (data / "wal-99.log").exists()

    def test_stored_sensor_ids(self, tmp_path):
        cfg = config(tmp_path)
        assert stored_sensor_ids(cfg) == set()
        engine = StorageEngine(cfg)
        for s in make_sensors(3):
            engine.journal_register(s)
        engine.close()
        assert stored_sensor_ids(cfg) == {0, 1, 2}

    def test_wipe_data_dir(self, tmp_path):
        cfg = config(tmp_path)
        engine = StorageEngine(cfg)
        engine.journal_register(make_sensors(1)[0])
        engine.close()
        wipe_data_dir(cfg.path)
        assert stored_sensor_ids(cfg) == set()
        assert not (cfg.path / "MANIFEST.json").exists()

    def test_describe_is_read_only_on_torn_tail(self, tmp_path):
        engine = StorageEngine(config(tmp_path))
        engine.journal_batch(make_batch(make_sensors(1), 1.0), fetched_at=1.0)
        engine.crash()
        wal_path = next((tmp_path / "data").glob("wal-*.log"))
        with open(wal_path, "ab") as f:
            f.write(b"\x01")
        size = wal_path.stat().st_size
        info = describe_data_dir(tmp_path / "data")
        assert info["wal"]["torn_tail"] is True
        assert wal_path.stat().st_size == size  # not truncated
