"""Durable portal: crash recovery, warm restart, checkpoint reopen."""

import math

import numpy as np
import pytest

from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery
from repro.sensors.registry import SensorRegistry
from repro.storage import StorageConfig

QUERY = SensorQuery(
    region=Rect(10, 10, 80, 80), staleness_seconds=300.0, aggregate="sum"
)


def make_fleet(n: int = 120, seed: int = 0):
    rng = np.random.default_rng(seed)
    registry = SensorRegistry()
    return [
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(400, 600)),
            sensor_type=("temperature", "humidity")[i % 2],
        )
        for i in range(n)
    ]


def open_portal(fleet, tmp_path) -> SensorMapPortal:
    portal = SensorMapPortal(
        max_sensors_per_query=None,
        storage=StorageConfig(data_dir=tmp_path / "data", fsync_enabled=False),
    )
    portal.register_all(list(fleet))
    portal.rebuild_index()
    return portal


def fingerprint(portal) -> tuple[int, float, int]:
    result = portal.execute(QUERY)
    probes = sum(a.stats.sensors_probed for a in result.answers)
    return result.result_weight, result.aggregate(), probes


class TestCrashRecovery:
    def test_reopen_after_crash_is_bit_identical_and_probe_free(self, tmp_path):
        fleet = make_fleet()
        portal = open_portal(fleet, tmp_path)
        weight, total, probes = fingerprint(portal)
        assert probes > 0 and weight > 0
        clock = portal.clock.now()
        portal.crash()
        recovered = open_portal(fleet, tmp_path)
        recovered.clock.advance_to(clock)
        r_weight, r_total, r_probes = fingerprint(recovered)
        assert (r_weight, r_total) == (weight, total)  # bit-identical sums
        assert r_probes == 0
        recovered.close()

    def test_recovery_time_is_modeled(self, tmp_path):
        fleet = make_fleet()
        portal = open_portal(fleet, tmp_path)
        fingerprint(portal)
        assert portal.recovery_seconds == 0.0  # nothing was recovered
        portal.crash()
        recovered = open_portal(fleet, tmp_path)
        assert recovered.recovery_seconds > 0.0
        assert recovered.last_recovery.wal_records > 0
        recovered.close()

    def test_registering_conflicting_sensor_rejected(self, tmp_path):
        fleet = make_fleet(n=10)
        portal = open_portal(fleet, tmp_path)
        portal.crash()
        conflicting = list(fleet)
        registry = SensorRegistry()
        for s in fleet[:-1]:
            registry.register(
                s.location,
                expiry_seconds=s.expiry_seconds,
                sensor_type=s.sensor_type,
                availability=s.availability,
            )
        conflicting[-1] = registry.register(
            GeoPoint(-5.0, -5.0), expiry_seconds=1.0
        )
        with pytest.raises(ValueError, match="conflicts with the recovered"):
            open_portal(conflicting, tmp_path)

    def test_storage_counters_surface_in_stats(self, tmp_path):
        portal = open_portal(make_fleet(), tmp_path)
        result = portal.execute(QUERY)
        assert sum(a.stats.wal_appends for a in result.answers) > 0
        summary = portal.stats()
        assert summary["storage"]["wal_appends"] > 0
        assert summary["network"]["wal_appends"] > 0
        portal.close()


class TestCheckpointReopen:
    def test_clean_checkpoint_round_trip(self, tmp_path):
        fleet = make_fleet()
        portal = open_portal(fleet, tmp_path)
        weight, total, _ = fingerprint(portal)
        clock = portal.clock.now()
        portal.checkpoint()
        portal.close()
        reopened = open_portal(fleet, tmp_path)
        assert reopened.last_recovery.wal_records == 0
        assert reopened.last_recovery.checkpoint_pages > 0
        reopened.clock.advance_to(clock)
        r_weight, r_total, r_probes = fingerprint(reopened)
        assert r_weight == weight
        assert math.isclose(r_total, total, rel_tol=1e-9)
        assert r_probes == 0
        reopened.close()

    def test_checkpoint_without_storage_raises(self):
        portal = SensorMapPortal(max_sensors_per_query=None)
        portal.register_all(make_fleet(n=10))
        portal.rebuild_index()
        with pytest.raises(RuntimeError):
            portal.checkpoint()

    def test_context_manager_closes_cleanly(self, tmp_path):
        fleet = make_fleet(n=20)
        with open_portal(fleet, tmp_path) as portal:
            fingerprint(portal)
        assert portal.storage.closed


class TestNoStorageDefault:
    def test_storage_none_changes_nothing(self, tmp_path):
        fleet = make_fleet()
        plain = SensorMapPortal(max_sensors_per_query=None)
        plain.register_all(list(fleet))
        plain.rebuild_index()
        durable = open_portal(fleet, tmp_path)
        assert fingerprint(plain) == fingerprint(durable)
        assert plain.storage is None
        assert plain.recovery_seconds == 0.0
        assert "storage" not in plain.stats()
        durable.close()
