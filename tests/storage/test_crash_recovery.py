"""Real-crash recovery: SIGKILL a writer mid-stream, recover a prefix.

The WAL's contract under a process kill is the *prefix property*: the
recovered batch sequence is exactly the first N batches the writer
appended, for some N at least as large as the writer's last
acknowledged sync.  The writer here is a separate Python process that
journals a deterministic batch sequence and reports progress through a
side file after each sync; the test SIGKILLs it mid-stream and checks
the directory recovers to a clean prefix.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

from repro.storage import StorageConfig, StorageEngine

WRITER = textwrap.dedent(
    """
    import sys

    from repro.geometry import GeoPoint
    from repro.sensors.registry import SensorRegistry
    from repro.sensors.sensor import Reading
    from repro.storage import StorageConfig, StorageEngine

    data_dir, progress_path = sys.argv[1], sys.argv[2]
    registry = SensorRegistry()
    sensors = [
        registry.register(GeoPoint(float(i), 0.0), expiry_seconds=600.0)
        for i in range(4)
    ]
    engine = StorageEngine(StorageConfig(data_dir=data_dir, fsync_enabled=False))
    for s in sensors:
        engine.journal_register(s)
    for i in range(100_000):
        t = float(i)
        engine.journal_batch(
            [
                Reading(
                    sensor_id=s.sensor_id,
                    value=t + s.sensor_id,
                    timestamp=t,
                    expires_at=t + 600.0,
                )
                for s in sensors
            ],
            fetched_at=t,
        )
        engine.sync()
        # Progress is only advertised after the sync: everything up to
        # this batch is on disk, so recovery must produce at least i+1.
        with open(progress_path, "w") as f:
            f.write(str(i + 1))
    """
)


def read_progress(path: Path) -> int:
    try:
        text = path.read_text()
        return int(text) if text else 0
    except (FileNotFoundError, ValueError):
        return 0


def test_sigkill_mid_stream_recovers_a_clean_prefix(tmp_path):
    data_dir = tmp_path / "data"
    progress_path = tmp_path / "progress"
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", WRITER, str(data_dir), str(progress_path)],
        env=env,
    )
    try:
        deadline = time.monotonic() + 30.0
        while read_progress(progress_path) < 25:
            assert proc.poll() is None, "writer exited before the kill"
            assert time.monotonic() < deadline, "writer made no progress"
            time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    acknowledged = read_progress(progress_path)
    assert acknowledged >= 25

    engine = StorageEngine(
        StorageConfig(data_dir=data_dir, fsync_enabled=False)
    )
    recovered = engine.recovered
    engine.close()
    assert [s.sensor_id for s in recovered.sensors] == [0, 1, 2, 3]
    n = len(recovered.batches)
    assert n >= acknowledged, "recovery lost an acknowledged batch"
    # The prefix property: batch i carries fetched_at == i with the full
    # deterministic payload — no gaps, no reordering, no partial batch.
    for i, (fetched_at, batch) in enumerate(recovered.batches):
        assert fetched_at == float(i)
        assert [r.sensor_id for r in batch] == [0, 1, 2, 3]
        assert [r.value for r in batch] == [float(i) + s for s in range(4)]
