"""Durable federation: shard kill/revive through disk, coordinator
restart over warm directories, stale-directory wipes."""

import numpy as np
import pytest

from repro.federation import FederatedPortal
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorQuery
from repro.sensors.registry import SensorRegistry
from repro.storage import StorageConfig

QUERY = SensorQuery(
    region=Rect(5, 5, 95, 95), staleness_seconds=300.0, aggregate="sum"
)


def make_fleet(n: int = 200, seed: int = 3):
    rng = np.random.default_rng(seed)
    registry = SensorRegistry()
    return [
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(400, 600)),
            sensor_type=("temperature", "humidity")[i % 2],
        )
        for i in range(n)
    ]


def open_federation(fleet, tmp_path, n_shards: int = 3) -> FederatedPortal:
    portal = FederatedPortal(
        n_shards=n_shards,
        max_sensors_per_query=None,
        storage=StorageConfig(data_dir=tmp_path / "fed", fsync_enabled=False),
    )
    portal.register_all(list(fleet))
    portal.rebuild_index()
    return portal


def fingerprint(portal):
    result = portal.execute(QUERY)
    return result.result_weight, result.aggregate(), result


class TestKillRevive:
    def test_revive_recovers_from_disk_and_charges_gather(self, tmp_path):
        fleet = make_fleet()
        portal = open_federation(fleet, tmp_path)
        weight, total, _ = fingerprint(portal)
        warm_weight, warm_total, warm = fingerprint(portal)
        assert not warm.partial
        portal.kill_shard(0)
        _, _, degraded = fingerprint(portal)
        assert degraded.partial and 0 in degraded.failed_shards
        recovery_seconds = portal.revive_shard(0)
        assert recovery_seconds > 0.0
        assert portal.stats.shard_recoveries == 1
        assert portal.stats.recovery_seconds_total == pytest.approx(
            recovery_seconds
        )
        r_weight, r_total, revived = fingerprint(portal)
        assert not revived.partial
        assert (r_weight, r_total) == (warm_weight, warm_total)
        # The modeled recovery time lands in the revived shard's first
        # gather: the collection makespan is at least that long.
        assert revived.collection_seconds >= recovery_seconds
        portal.close()

    def test_revive_without_storage_is_free(self):
        portal = FederatedPortal(n_shards=2, max_sensors_per_query=None)
        portal.register_all(make_fleet(n=40))
        portal.rebuild_index()
        portal.kill_shard(1)
        assert portal.revive_shard(1) == 0.0
        assert portal.stats.shard_recoveries == 0
        portal.close()


class TestCoordinatorRestart:
    def test_restart_over_warm_directories_is_probe_free(self, tmp_path):
        fleet = make_fleet()
        portal = open_federation(fleet, tmp_path)
        weight, total, _ = fingerprint(portal)
        clock = portal.clock.now()
        portal.checkpoint()
        portal.close()
        restarted = open_federation(fleet, tmp_path)
        assert restarted.stats.shard_recoveries == restarted.n_shards
        assert restarted.stats.recovery_seconds_total > 0.0
        restarted.clock.advance_to(clock)
        r_weight, r_total, result = fingerprint(restarted)
        assert r_weight == weight
        assert r_total == pytest.approx(total, rel=1e-9)
        probes = sum(
            a.stats.sensors_probed
            for shard in result.shard_results.values()
            for a in shard.answers
        )
        assert probes == 0
        restarted.close()

    def test_stats_summary_reports_recoveries(self, tmp_path):
        fleet = make_fleet(n=60)
        portal = open_federation(fleet, tmp_path)
        portal.kill_shard(0)
        portal.revive_shard(0)
        summary = portal.stats_summary()
        assert summary["federation"]["shard_recoveries"] == 1
        assert summary["federation"]["recovery_seconds_total"] > 0.0
        portal.close()


class TestStaleDirectories:
    def test_repartition_wipes_mismatched_shard_dirs(self, tmp_path):
        fleet = make_fleet()
        portal = open_federation(fleet, tmp_path, n_shards=3)
        fingerprint(portal)
        portal.close()
        # A different shard count re-partitions the fleet: the stored
        # per-shard sensor sets no longer match, so every stale
        # directory is wiped and the rebuild starts cold (no recovery).
        repartitioned = open_federation(fleet, tmp_path, n_shards=2)
        assert repartitioned.stats.shard_recoveries == 0
        weight, _, result = fingerprint(repartitioned)
        assert weight > 0 and not result.partial
        # The out-of-range shard-2 directory was wiped of durable state.
        assert not (tmp_path / "fed" / "shard-2" / "MANIFEST.json").exists()
        repartitioned.close()
