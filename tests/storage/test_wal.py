"""Write-ahead log: replay order, group commit, torn-tail truncation."""

from repro.storage import WriteAheadLog
from repro.storage.stats import StorageStats
from repro.storage.wal import MAGIC, replay


def make_records(n: int) -> list[object]:
    return [("batch", float(i), ((i, i * 0.5, float(i), float(i + 60)),)) for i in range(n)]


class TestReplay:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "w.log"
        with WriteAheadLog(path) as wal:
            for record in make_records(10):
                wal.append(record)
        assert replay(path) == make_records(10)

    def test_missing_file_replays_empty(self, tmp_path):
        assert replay(tmp_path / "absent.log") == []

    def test_crash_loses_nothing_appended(self, tmp_path):
        # append() flushes to the OS, so dropping the handle without the
        # final fsync (a process kill) keeps every acknowledged record.
        path = tmp_path / "w.log"
        wal = WriteAheadLog(path, fsync_batch=1000)
        for record in make_records(7):
            wal.append(record)
        wal.crash()
        assert replay(path) == make_records(7)

    def test_replay_counts_records(self, tmp_path):
        path = tmp_path / "w.log"
        with WriteAheadLog(path) as wal:
            for record in make_records(5):
                wal.append(record)
        stats = StorageStats()
        replay(path, stats=stats)
        assert stats.wal_records_replayed == 5


class TestGroupCommit:
    def test_fsync_every_batch_boundary(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log", fsync_batch=4)
        before = wal.stats.wal_fsyncs
        for record in make_records(10):
            wal.append(record)
        assert wal.stats.wal_fsyncs - before == 2  # at 4 and 8
        wal.sync()
        assert wal.stats.wal_fsyncs - before == 3  # the pending 2
        assert wal.stats.wal_appends == 10

    def test_fsync_disabled_still_flushes(self, tmp_path):
        path = tmp_path / "w.log"
        wal = WriteAheadLog(path, fsync_batch=1, fsync_enabled=False)
        wal.append(("sensor", (1,)))
        wal.crash()
        assert wal.stats.wal_fsyncs == 0
        assert len(replay(path)) == 1


class TestTornTail:
    def test_garbage_tail_truncated(self, tmp_path):
        path = tmp_path / "w.log"
        with WriteAheadLog(path) as wal:
            for record in make_records(6):
                wal.append(record)
        with open(path, "ab") as f:
            f.write(b"\x13\x37garbage-half-frame")
        stats = StorageStats()
        assert replay(path, stats=stats) == make_records(6)
        assert stats.torn_tail_truncations == 1
        # The truncation removed the garbage: a second replay is clean.
        stats2 = StorageStats()
        assert replay(path, stats=stats2) == make_records(6)
        assert stats2.torn_tail_truncations == 0

    def test_corrupt_byte_in_last_record_drops_only_it(self, tmp_path):
        path = tmp_path / "w.log"
        with WriteAheadLog(path) as wal:
            for record in make_records(6):
                wal.append(record)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a byte inside the last payload: CRC breaks
        path.write_bytes(bytes(raw))
        stats = StorageStats()
        assert replay(path, stats=stats) == make_records(5)
        assert stats.torn_tail_truncations == 1

    def test_append_after_truncation_continues_cleanly(self, tmp_path):
        path = tmp_path / "w.log"
        with WriteAheadLog(path) as wal:
            wal.append(("batch", 0.0, ()))
        with open(path, "ab") as f:
            f.write(b"\x01")  # torn frame
        replay(path)  # truncates
        with WriteAheadLog(path) as wal:
            wal.append(("batch", 1.0, ()))
        assert replay(path) == [("batch", 0.0, ()), ("batch", 1.0, ())]

    def test_unrecognizable_header_resets_file(self, tmp_path):
        path = tmp_path / "w.log"
        path.write_bytes(b"not a wal file at all")
        stats = StorageStats()
        assert replay(path, stats=stats) == []
        assert stats.torn_tail_truncations == 1
        assert path.read_bytes() == MAGIC

    def test_read_only_replay_leaves_file_alone(self, tmp_path):
        path = tmp_path / "w.log"
        with WriteAheadLog(path) as wal:
            wal.append(("batch", 0.0, ()))
        with open(path, "ab") as f:
            f.write(b"\x01")
        size = path.stat().st_size
        replay(path, truncate_torn_tail=False)
        assert path.stat().st_size == size
