"""Shared fixtures and teardown for the storage suite.

Mirrors the parallel suite's ``/dev/shm`` scan: no test here may leak
scratch directories into the system temp dir — every data directory
must live under pytest's ``tmp_path`` (reaped by pytest) or be removed
by the code under test.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest


def _scratch_entries() -> set[str]:
    tmp = Path(tempfile.gettempdir())
    return {p.name for p in tmp.glob("colr-*")}


@pytest.fixture(autouse=True)
def assert_no_leaked_scratch_dirs():
    before = _scratch_entries()
    yield
    leaked = _scratch_entries() - before
    assert not leaked, f"test leaked scratch dirs in system tmp: {sorted(leaked)}"
