"""Paged B+-tree: ordering, splits, deletes, reopen, table backing."""

import pytest

from repro.storage import BPlusTree, PagedTableBacking, Pager


@pytest.fixture
def pager(tmp_path):
    p = Pager(tmp_path / "tree.db", page_size=512)
    yield p
    p.close()


def key(i: int) -> bytes:
    return f"{i:08d}".encode()


class TestBasics:
    def test_put_get(self, pager):
        tree = BPlusTree(pager, "t")
        tree.put(b"a", b"1")
        tree.put(b"b", b"2")
        assert tree.get(b"a") == b"1"
        assert tree.get(b"b") == b"2"
        assert tree.get(b"missing") is None
        assert len(tree) == 2

    def test_overwrite_keeps_one_entry(self, pager):
        tree = BPlusTree(pager, "t")
        tree.put(b"k", b"old")
        tree.put(b"k", b"new")
        assert tree.get(b"k") == b"new"
        assert len(tree) == 1

    def test_items_sorted_by_key(self, pager):
        tree = BPlusTree(pager, "t", order=4)
        for i in (5, 1, 9, 3, 7, 0, 8, 2, 6, 4):
            tree.put(key(i), str(i).encode())
        assert [k for k, _ in tree.items()] == [key(i) for i in range(10)]

    def test_delete(self, pager):
        tree = BPlusTree(pager, "t")
        tree.put(b"k", b"v")
        assert tree.delete(b"k") is True
        assert tree.get(b"k") is None
        assert len(tree) == 0
        assert tree.delete(b"k") is False


class TestSplits:
    def test_many_keys_force_splits(self, pager):
        tree = BPlusTree(pager, "t", order=4)
        n = 200
        for i in range(n):
            tree.put(key(i * 7 % n), key(i))
        assert len(tree) == n
        for i in range(n):
            assert tree.get(key(i)) is not None
        assert [k for k, _ in tree.items()] == [key(i) for i in range(n)]

    def test_deletes_interleaved_with_inserts(self, pager):
        tree = BPlusTree(pager, "t", order=4)
        for i in range(120):
            tree.put(key(i), b"v")
        for i in range(0, 120, 2):
            assert tree.delete(key(i))
        assert len(tree) == 60
        assert [k for k, _ in tree.items()] == [key(i) for i in range(1, 120, 2)]


class TestDurability:
    def test_tree_survives_reopen(self, tmp_path):
        path = tmp_path / "tree.db"
        pager = Pager(path, page_size=512)
        tree = BPlusTree(pager, "t", order=4)
        for i in range(64):
            tree.put(key(i), f"value-{i}".encode())
        pager.close()
        reopened = Pager(path, page_size=512)
        restored = BPlusTree(reopened, "t", order=4)
        assert len(restored) == 64
        assert restored.get(key(33)) == b"value-33"
        assert [k for k, _ in restored.items()] == [key(i) for i in range(64)]
        reopened.close()


class TestTableBacking:
    def test_rows_round_trip(self, pager):
        backing = PagedTableBacking(BPlusTree(pager, "rows"))
        backing.store((1, "a"), {"id": 1, "tag": "a", "v": 1.5})
        backing.store((2, "b"), {"id": 2, "tag": "b", "v": None})
        assert sorted(r["id"] for r in backing.rows()) == [1, 2]
        backing.erase((1, "a"))
        assert [r["id"] for r in backing.rows()] == [2]

    def test_clear_empties_tree(self, pager):
        backing = PagedTableBacking(BPlusTree(pager, "rows"))
        for i in range(10):
            backing.store((i,), {"id": i})
        backing.clear()
        assert backing.rows() == []
        assert len(backing.tree) == 0
