import numpy as np
import pytest

from repro.workloads import CITIES, LiveLocalWorkload
from repro.workloads.cities import total_population


class TestCities:
    def test_coordinates_plausible(self):
        for city in CITIES:
            assert 20 <= city.lat <= 65
            assert -160 <= city.lon <= -65
            assert city.population > 0

    def test_total_population(self):
        assert total_population() == sum(c.population for c in CITIES)


class TestSensors:
    def test_count_and_ids_dense(self):
        wl = LiveLocalWorkload(n_sensors=500, n_queries=0, seed=1)
        sensors = wl.sensors()
        assert len(sensors) == 500
        assert [s.sensor_id for s in sensors] == list(range(500))

    def test_population_skew(self):
        """Big metros must get disproportionately many sensors."""
        wl = LiveLocalWorkload(n_sensors=5000, n_queries=0, seed=1)
        sensors = wl.sensors()
        nyc = CITIES[0]
        near_nyc = sum(
            1
            for s in sensors
            if abs(s.location.lat - nyc.lat) < 1 and abs(s.location.lon - nyc.lon) < 1
        )
        assert near_nyc / 5000 > 0.10  # NYC holds ~13% of embedded population

    def test_callable_expiry(self):
        wl = LiveLocalWorkload(
            n_sensors=200,
            n_queries=0,
            expiry_seconds=lambda rng: rng.uniform(60, 600),
            seed=1,
        )
        expiries = {s.expiry_seconds for s in wl.sensors()}
        assert len(expiries) > 100

    def test_availability_clamped(self):
        wl = LiveLocalWorkload(
            n_sensors=100,
            n_queries=0,
            availability=lambda rng: rng.normal(0.9, 0.3),
            seed=1,
        )
        assert all(0.0 <= s.availability <= 1.0 for s in wl.sensors())

    def test_deterministic(self):
        a = LiveLocalWorkload(n_sensors=100, n_queries=0, seed=5).sensors()
        b = LiveLocalWorkload(n_sensors=100, n_queries=0, seed=5).sensors()
        assert all(x.location == y.location for x, y in zip(a, b))


class TestQueries:
    def test_count_and_ordering(self):
        wl = LiveLocalWorkload(n_sensors=10, n_queries=300, seed=2)
        queries = wl.queries()
        assert len(queries) == 300
        times = [q.at_time for q in queries]
        assert times == sorted(times)

    def test_locality_produces_repeats(self):
        wl = LiveLocalWorkload(
            n_sensors=10, n_queries=500, revisit_probability=0.5, seed=2
        )
        regions = [
            (q.region.min_x, q.region.min_y, q.region.max_x, q.region.max_y)
            for q in wl.queries()
        ]
        assert len(set(regions)) < len(regions) * 0.8

    def test_no_locality_when_disabled(self):
        wl = LiveLocalWorkload(
            n_sensors=10, n_queries=300, revisit_probability=0.0, seed=2
        )
        regions = [
            (q.region.min_x, q.region.min_y, q.region.max_x, q.region.max_y)
            for q in wl.queries()
        ]
        assert len(set(regions)) == len(regions)

    def test_viewports_have_varied_zoom(self):
        wl = LiveLocalWorkload(n_sensors=10, n_queries=400, seed=3)
        widths = [q.region.width for q in wl.queries()]
        assert max(widths) / max(1e-9, min(widths)) > 10

    def test_spec_fields(self):
        wl = LiveLocalWorkload(
            n_sensors=10,
            n_queries=5,
            staleness_seconds=240.0,
            sample_size=77,
            seed=3,
        )
        for q in wl.queries():
            assert q.staleness_seconds == 240.0
            assert q.sample_size == 77

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LiveLocalWorkload(n_sensors=0)
        with pytest.raises(ValueError):
            LiveLocalWorkload(revisit_probability=1.5)
