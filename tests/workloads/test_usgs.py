import numpy as np
import pytest

from repro import SensorNetwork
from repro.workloads import UsgsWaWorkload
from repro.workloads.usgs import WA_BBOX


class TestUsgsWorkload:
    def test_default_200_gauges(self):
        wl = UsgsWaWorkload(seed=4)
        sensors = wl.sensors()
        assert len(sensors) == 200
        assert all(s.sensor_type == "water" for s in sensors)

    def test_gauges_inside_wa(self):
        for s in UsgsWaWorkload(seed=4).sensors():
            assert WA_BBOX.contains_point(s.location)

    def test_value_fn_spatially_correlated(self):
        wl = UsgsWaWorkload(seed=4, noise_sigma=0.0)
        sensors = wl.sensors()
        fn = wl.value_fn()
        # Values at the same location agree; distant gauges differ more
        # on average than a gauge and its re-read.
        v = [fn(s, 0.0) for s in sensors]
        assert np.std(v) > 0

    def test_true_regional_mean_stable(self):
        wl = UsgsWaWorkload(seed=4)
        assert wl.true_regional_mean(0.0) == pytest.approx(wl.true_regional_mean(0.0))

    def test_sample_mean_approximates_truth(self):
        """The Figure 7 premise: a modest random sample's average is
        close to the full regional mean."""
        wl = UsgsWaWorkload(seed=4, noise_sigma=1.0)
        sensors = wl.sensors()
        network = SensorNetwork(sensors, value_fn=wl.value_fn(), seed=0)
        rng = np.random.default_rng(1)
        truth = wl.true_regional_mean(0.0)
        errors = []
        for _ in range(10):
            pick = rng.choice(len(sensors), size=30, replace=False)
            result = network.probe([sensors[i].sensor_id for i in pick], now=0.0)
            est = np.mean([r.value for r in result.readings.values()])
            errors.append(abs(est - truth) / truth)
        assert np.mean(errors) < 0.15

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            UsgsWaWorkload(n_sensors=0)
