import numpy as np
import pytest

from repro.workloads import uniform_expiry, usgs_like_expiry, weather_like_expiry


class TestDistributions:
    def test_all_normalized(self):
        for gen in (uniform_expiry, usgs_like_expiry, weather_like_expiry):
            samples = gen(500, seed=1)
            assert samples.min() > 0.0
            assert samples.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = usgs_like_expiry(100, seed=7)
        b = usgs_like_expiry(100, seed=7)
        assert np.array_equal(a, b)

    def test_uniform_mean_near_half(self):
        samples = uniform_expiry(20_000, seed=2)
        assert 0.45 < samples.mean() < 0.55

    def test_usgs_mass_near_one(self):
        samples = usgs_like_expiry(10_000, seed=2)
        assert samples.mean() > 0.65
        assert np.median(samples) > 0.7

    def test_weather_mass_near_zero(self):
        samples = weather_like_expiry(10_000, seed=2)
        assert samples.mean() < 0.35
        assert np.median(samples) < 0.3

    def test_invalid_n_rejected(self):
        for gen in (uniform_expiry, usgs_like_expiry, weather_like_expiry):
            with pytest.raises(ValueError):
                gen(0)

    def test_figure2_optima_match_paper(self):
        """Under the Figure 2 reference workload the model must land on
        the paper's optima: Weather 0.2, Uniform 0.5, USGS 0.8."""
        from repro.core.slot_sizing import (
            FIG2_WORKLOAD,
            SlotSizeModel,
            optimal_slot_size,
        )

        def optimum(samples):
            model = SlotSizeModel(
                expiry_samples=tuple(float(x) for x in samples), **FIG2_WORKLOAD
            )
            return optimal_slot_size(model)

        assert optimum(weather_like_expiry(4000, seed=3)) == pytest.approx(0.2)
        assert optimum(uniform_expiry(4000, seed=3)) == pytest.approx(0.5)
        assert optimum(usgs_like_expiry(4000, seed=3)) == pytest.approx(0.8)
