import json

import pytest

from repro.workloads import LiveLocalWorkload
from repro.workloads.trace import (
    TraceError,
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)


@pytest.fixture
def workload():
    wl = LiveLocalWorkload(n_sensors=100, n_queries=40, seed=42)
    return wl.sensors(), wl.queries()


class TestRoundTrip:
    def test_sensors_identical(self, workload, tmp_path):
        sensors, queries = workload
        path = tmp_path / "trace.json"
        save_workload(sensors, queries, path)
        restored_sensors, _ = load_workload(path)
        assert restored_sensors == sensors

    def test_queries_identical(self, workload, tmp_path):
        sensors, queries = workload
        path = tmp_path / "trace.json"
        save_workload(sensors, queries, path)
        _, restored = load_workload(path)
        assert restored == queries

    def test_dict_round_trip_without_disk(self, workload):
        sensors, queries = workload
        restored_sensors, restored_queries = workload_from_dict(
            workload_to_dict(sensors, queries)
        )
        assert restored_sensors == sensors
        assert restored_queries == queries

    def test_trace_is_plain_json(self, workload, tmp_path):
        sensors, queries = workload
        path = tmp_path / "trace.json"
        save_workload(sensors, queries, path)
        data = json.loads(path.read_text())
        assert data["trace_version"] == 1
        assert len(data["sensors"]) == 100


class TestErrors:
    def test_bad_version(self, workload):
        data = workload_to_dict(*workload)
        data["trace_version"] = 7
        with pytest.raises(TraceError):
            workload_from_dict(data)

    def test_missing_fields(self, workload):
        data = workload_to_dict(*workload)
        del data["sensors"][0]["x"]
        with pytest.raises(TraceError):
            workload_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("]{")
        with pytest.raises(TraceError):
            load_workload(path)

    def test_trace_drives_harness(self, workload, tmp_path):
        """A loaded trace must be directly runnable by the harness."""
        from repro.bench.harness import run_query_stream
        from repro.core.config import COLRTreeConfig
        from repro.core.tree import COLRTree
        from repro.sensors.network import SensorNetwork

        sensors, queries = workload
        path = tmp_path / "trace.json"
        save_workload(sensors, queries, path)
        restored_sensors, restored_queries = load_workload(path)
        network = SensorNetwork(restored_sensors, seed=0)
        tree = COLRTree(restored_sensors, COLRTreeConfig(), network=network)
        run = run_query_stream(tree, restored_queries[:10])
        assert len(run) == 10
