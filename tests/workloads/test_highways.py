import numpy as np
import pytest

from repro.geometry.point import haversine_miles
from repro.workloads import Corridor, HighwayWorkload, default_corridors
from repro.workloads.cities import CITIES


class TestCorridors:
    def test_default_backbone_nonempty(self):
        corridors = default_corridors()
        assert corridors
        for c in corridors:
            assert c.length_miles <= 450.0

    def test_corridor_length(self):
        seattle = next(c for c in CITIES if c.name == "Seattle")
        portland = next(c for c in CITIES if c.name == "Portland")
        corridor = Corridor(start=seattle, end=portland)
        assert 140 <= corridor.length_miles <= 150

    def test_larger_n_more_corridors(self):
        assert len(default_corridors(n=30)) >= len(default_corridors(n=5))


class TestHighwayWorkload:
    def test_sensor_count_scales_with_spacing(self):
        corridors = default_corridors(n=5)
        dense = HighwayWorkload(corridors=corridors, spacing_miles=1.0).sensors()
        sparse = HighwayWorkload(corridors=corridors, spacing_miles=10.0).sensors()
        assert len(dense) > 3 * len(sparse)

    def test_sensors_near_their_corridor(self):
        corridors = default_corridors(n=3)
        wl = HighwayWorkload(corridors=corridors, lateral_jitter_miles=0.1, seed=1)
        for sensor in wl.sensors():
            # Within a few miles of *some* corridor endpoint-to-endpoint
            # band: check distance to the nearest corridor endpoint is
            # bounded by the corridor length.
            nearest = min(
                min(
                    haversine_miles(sensor.location.lat, sensor.location.lon, c.start.lat, c.start.lon),
                    haversine_miles(sensor.location.lat, sensor.location.lon, c.end.lat, c.end.lon),
                )
                for c in corridors
            )
            assert nearest <= max(c.length_miles for c in corridors)

    def test_ids_dense_from_start(self):
        wl = HighwayWorkload(corridors=default_corridors(n=3), seed=1)
        sensors = wl.sensors(start_id=100)
        assert sensors[0].sensor_id == 100
        assert [s.sensor_id for s in sensors] == list(
            range(100, 100 + len(sensors))
        )

    def test_all_sensors_typed_traffic(self):
        wl = HighwayWorkload(corridors=default_corridors(n=3))
        assert all(s.sensor_type == "traffic" for s in wl.sensors())

    def test_linear_distribution(self):
        """Traffic sensors must be line-like, not blob-like: the
        covariance of positions along one corridor is dominated by a
        single direction."""
        corridors = [default_corridors(n=3)[0]]
        wl = HighwayWorkload(corridors=corridors, lateral_jitter_miles=0.05, seed=2)
        pts = np.array([[s.location.x, s.location.y] for s in wl.sensors()])
        cov = np.cov(pts.T)
        eigvals = np.sort(np.linalg.eigvalsh(cov))
        assert eigvals[1] > 50 * max(eigvals[0], 1e-12)

    def test_congestion_fn_rush_hour(self):
        wl = HighwayWorkload(corridors=default_corridors(n=3))
        fn = wl.congestion_fn()
        sensor = wl.sensors()[0]
        midnight = fn(sensor, 0.0)
        rush = fn(sensor, 1_800.0)
        assert rush > midnight

    def test_invalid_spacing_rejected(self):
        with pytest.raises(ValueError):
            HighwayWorkload(spacing_miles=0.0)

    def test_empty_corridors_rejected(self):
        with pytest.raises(ValueError):
            HighwayWorkload(corridors=[])
