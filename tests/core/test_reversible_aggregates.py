"""Reversible aggregation materialization (the paper's future-work
extension, Section VII-D): cached aggregates decomposed to the target.
"""

import numpy as np
import pytest

from repro import COLRTreeConfig, Rect

from tests.conftest import make_registry, make_tree


def warm_tree(reversible: bool, seed: int = 20):
    registry = make_registry(n=600, seed=seed)
    tree = make_tree(
        registry,
        COLRTreeConfig(
            fanout=4,
            leaf_capacity=16,
            max_expiry_seconds=600.0,
            slot_seconds=120.0,
            reversible_aggregates=reversible,
        ),
        network_seed=seed,
    )
    # Warm the cache completely: everything answered from cache next.
    tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=0)
    return registry, tree


class TestDecomposition:
    def test_overdelivery_without_decomposition(self):
        _, tree = warm_tree(reversible=False)
        answer = tree.query(
            Rect(0, 0, 100, 100), now=1.0, max_staleness=600.0, sample_size=20
        )
        # The whole-region aggregate over-delivers massively.
        assert answer.result_weight > 100

    def test_decomposition_tracks_target(self):
        _, tree = warm_tree(reversible=True)
        answer = tree.query(
            Rect(0, 0, 100, 100), now=1.0, max_staleness=600.0, sample_size=20
        )
        assert answer.stats.sensors_probed == 0  # still fully cache-served
        assert 20 <= answer.result_weight <= 60  # near the target, not 600

    def test_decomposition_reduces_pde(self):
        from repro.bench.harness import probe_discretization_error

        _, plain = warm_tree(reversible=False)
        _, rev = warm_tree(reversible=True)
        region = Rect(0, 0, 100, 100)
        pde_plain = probe_discretization_error(
            plain.query(region, now=1.0, max_staleness=600.0, sample_size=20)
        )
        pde_rev = probe_discretization_error(
            rev.query(region, now=1.0, max_staleness=600.0, sample_size=20)
        )
        assert abs(pde_rev) < abs(pde_plain)

    def test_partial_cache_still_probes_remainder(self):
        registry, tree = warm_tree(reversible=True)
        # A long jump: cache expires; a sampled query probes again.
        answer = tree.query(
            Rect(0, 0, 100, 100), now=100_000.0, max_staleness=600.0, sample_size=20
        )
        assert answer.stats.sensors_probed > 0

    def test_answer_weight_counts_decomposed_components(self):
        _, tree = warm_tree(reversible=True)
        answer = tree.query(
            Rect(0, 0, 100, 100), now=1.0, max_staleness=600.0, sample_size=30
        )
        component_weight = (
            len(answer.cached_readings) + sum(s.count for s in answer.cached_sketches)
        )
        assert component_weight == answer.result_weight

    def test_exact_queries_unaffected(self):
        registry, tree = warm_tree(reversible=True)
        answer = tree.query(
            Rect(10, 10, 60, 60), now=1.0, max_staleness=600.0, sample_size=0
        )
        assert answer.result_weight == len(registry.within(Rect(10, 10, 60, 60)))

    def test_sketch_nodes_parallel_after_decomposition(self):
        _, tree = warm_tree(reversible=True)
        answer = tree.query(
            Rect(0, 0, 100, 100), now=1.0, max_staleness=600.0, sample_size=20
        )
        assert len(answer.cached_sketches) == len(answer.cached_sketch_nodes)
