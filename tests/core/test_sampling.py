"""Layered sampling behaviour (Algorithm 1 + 2) on small trees."""

import numpy as np
import pytest

from repro import COLRTreeConfig, Rect

from tests.conftest import make_registry, make_tree


@pytest.fixture
def registry():
    return make_registry(n=800, seed=9)


class TestBasicSampling:
    def test_zero_target_returns_empty(self, registry):
        tree = make_tree(registry)
        answer = tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=0)
        # sample_size=0 falls back to the exact lookup, which probes.
        assert answer.result_weight > 0

    def test_small_target_probes_few(self, registry):
        tree = make_tree(registry)
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=20
        )
        # All sensors are fully available; target 20 with the prior-0.5
        # oversample can at most double. Far fewer than the 800 present.
        assert 0 < answer.stats.sensors_probed <= 80

    def test_sample_much_smaller_than_population(self, registry):
        tree = make_tree(registry)
        exact = len(registry.within(Rect(0, 0, 100, 100)))
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=50
        )
        assert answer.stats.sensors_probed < exact / 3

    def test_probed_sensors_lie_in_region(self, registry):
        tree = make_tree(registry)
        region = Rect(10, 10, 55, 55)
        answer = tree.query(region, now=0.0, max_staleness=600.0, sample_size=40)
        margin = region.expanded(1e-9)
        for r in answer.probed_readings:
            loc = tree.sensor(r.sensor_id).location
            # Terminal nodes are fully inside the region, so every probed
            # sensor must be as well (leaf terminals filter by location).
            assert margin.contains_point(loc), loc

    def test_sampling_uses_cache_on_repeat(self, registry):
        tree = make_tree(registry)
        region = Rect(0, 0, 60, 60)
        a1 = tree.query(region, now=0.0, max_staleness=600.0, sample_size=50)
        a2 = tree.query(region, now=1.0, max_staleness=600.0, sample_size=50)
        assert a2.stats.sensors_probed < a1.stats.sensors_probed

    def test_expected_sample_size_with_full_availability(self, registry):
        """Theorem 1 sanity: expected successes ≈ R (no failures here)."""
        sizes = []
        for seed in range(12):
            tree = make_tree(make_registry(n=800, seed=9), network_seed=seed)
            tree.rng = np.random.default_rng(seed)
            answer = tree.query(
                Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=60
            )
            sizes.append(answer.probed_count)
        mean = np.mean(sizes)
        # The availability prior (0.5) inflates targets before history
        # accumulates, so expect >= R on a fully available population.
        assert mean >= 55, sizes


class TestOversampling:
    def test_unavailable_sensors_compensated(self):
        registry = make_registry(n=800, availability=0.5, seed=10)
        tree = make_tree(registry)
        # Warm the availability history so estimates reflect 0.5.
        for t in range(5):
            tree.query(
                Rect(0, 0, 100, 100),
                now=float(t),
                max_staleness=1.0,  # force probes
                sample_size=200,
            )
        answer = tree.query(
            Rect(0, 0, 100, 100), now=100.0, max_staleness=1.0, sample_size=50
        )
        # Probes should be scaled up by roughly 1/0.5 = 2x.
        assert answer.stats.sensors_probed >= 70
        assert answer.probed_count >= 30

    def test_oversampling_disabled_undershoots(self):
        registry = make_registry(n=800, availability=0.4, seed=11)
        cfg = COLRTreeConfig(oversampling_enabled=False, caching_enabled=False)
        tree = make_tree(registry, cfg)
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=100
        )
        # Without the 1/a factor, successes track availability (~40%).
        assert answer.probed_count < 70


class TestRedistribution:
    def test_redistribution_improves_target_in_sparse_regions(self):
        """Sensors concentrated in one corner: shares assigned to empty
        children must be redistributed to the dense ones."""
        rng = np.random.default_rng(12)
        from repro import GeoPoint, SensorRegistry

        registry = SensorRegistry()
        # 90% of sensors in [0,20]^2, a few scattered wide.
        for _ in range(450):
            registry.register(
                GeoPoint(float(rng.uniform(0, 20)), float(rng.uniform(0, 20))),
                expiry_seconds=300.0,
            )
        for _ in range(50):
            registry.register(
                GeoPoint(float(rng.uniform(20, 100)), float(rng.uniform(20, 100))),
                expiry_seconds=300.0,
            )
        with_r = make_tree(registry, COLRTreeConfig(caching_enabled=False))
        without_r = make_tree(
            registry, COLRTreeConfig(caching_enabled=False, redistribution_enabled=False)
        )
        target = 80
        got_with = with_r.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=target
        ).probed_count
        got_without = without_r.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=target
        ).probed_count
        assert got_with >= got_without


class TestTerminalRecords:
    def test_terminals_recorded(self, registry):
        tree = make_tree(registry)
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=50
        )
        assert answer.terminals
        for record in answer.terminals:
            assert record.target >= 0
            assert record.results >= 0

    def test_cache_terminals_marked(self, registry):
        tree = make_tree(registry)
        region = Rect(0, 0, 100, 100)
        tree.query(region, now=0.0, max_staleness=600.0, sample_size=400)
        answer = tree.query(region, now=1.0, max_staleness=600.0, sample_size=50)
        assert any(t.used_cache for t in answer.terminals)


class TestStatsAccounting:
    def test_tree_stats_accumulate(self, registry):
        tree = make_tree(registry)
        tree.query(Rect(0, 0, 50, 50), now=0.0, max_staleness=600.0, sample_size=20)
        tree.query(Rect(0, 0, 50, 50), now=1.0, max_staleness=600.0, sample_size=20)
        assert tree.stats.queries == 2
        assert tree.stats.totals.nodes_traversed > 0

    def test_processing_latency_positive(self, registry):
        tree = make_tree(registry)
        answer = tree.query(Rect(0, 0, 50, 50), now=0.0, max_staleness=600.0, sample_size=20)
        assert tree.processing_seconds(answer.stats) > 0.0


class TestPolygonSampling:
    def test_sampled_polygon_query(self, registry):
        """Layered sampling accepts polygonal regions: probed sensors
        lie inside the polygon and the target is respected."""
        from repro import GeoPoint, Polygon

        tree = make_tree(registry)
        tri = Polygon([GeoPoint(0, 0), GeoPoint(100, 0), GeoPoint(0, 100)])
        answer = tree.query(tri, now=0.0, max_staleness=600.0, sample_size=30)
        assert answer.probed_count > 0
        for r in answer.probed_readings:
            assert tri.contains_point(tree.sensor(r.sensor_id).location)

    def test_polygon_and_rect_parity(self, registry):
        """A polygon shaped like the rect samples comparably."""
        from repro import Polygon

        rect = Rect(10, 10, 80, 80)
        t1 = make_tree(registry)
        t2 = make_tree(registry)
        a_rect = t1.query(rect, now=0.0, max_staleness=600.0, sample_size=40)
        a_poly = t2.query(
            Polygon.from_rect(rect), now=0.0, max_staleness=600.0, sample_size=40
        )
        assert a_poly.probed_count == pytest.approx(a_rect.probed_count, rel=0.5, abs=10)
