import pytest

from repro import GeoPoint, Rect, Sensor
from repro.core.node import COLRNode


def sensor(i, x=0.0, y=0.0):
    return Sensor(sensor_id=i, location=GeoPoint(x, y), expiry_seconds=300.0)


def leaf(node_id, sensors):
    bbox = Rect.from_points(s.location for s in sensors)
    return COLRNode(node_id=node_id, level=1, bbox=bbox, sensors=sensors)


class TestConstruction:
    def test_leaf_requires_sensors(self):
        with pytest.raises(ValueError):
            COLRNode(node_id=0, level=0, bbox=Rect(0, 0, 1, 1), sensors=[])

    def test_internal_requires_children(self):
        with pytest.raises(ValueError):
            COLRNode(node_id=0, level=0, bbox=Rect(0, 0, 1, 1), children=[])

    def test_must_be_leaf_or_internal(self):
        with pytest.raises(ValueError):
            COLRNode(node_id=0, level=0, bbox=Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            COLRNode(
                node_id=0,
                level=0,
                bbox=Rect(0, 0, 1, 1),
                children=[leaf(1, [sensor(0)])],
                sensors=[sensor(1)],
            )

    def test_parent_pointers_set(self):
        a, b = leaf(1, [sensor(0)]), leaf(2, [sensor(1, 1, 1)])
        parent = COLRNode(node_id=0, level=0, bbox=Rect(0, 0, 1, 1), children=[a, b])
        assert a.parent is parent and b.parent is parent

    def test_weight_and_descendants(self):
        a = leaf(1, [sensor(0), sensor(1, 1, 0)])
        b = leaf(2, [sensor(2, 2, 2)])
        parent = COLRNode(node_id=0, level=0, bbox=Rect(0, 0, 2, 2), children=[a, b])
        assert parent.weight == 3
        assert sorted(parent.descendant_ids.tolist()) == [0, 1, 2]


class TestTraversal:
    @pytest.fixture
    def small_tree(self):
        a = leaf(1, [sensor(0)])
        b = leaf(2, [sensor(1, 1, 1)])
        return COLRNode(node_id=0, level=0, bbox=Rect(0, 0, 1, 1), children=[a, b])

    def test_iter_subtree(self, small_tree):
        assert {n.node_id for n in small_tree.iter_subtree()} == {0, 1, 2}

    def test_iter_leaves(self, small_tree):
        assert {n.node_id for n in small_tree.iter_leaves()} == {1, 2}

    def test_path_to_root(self, small_tree):
        child = small_tree.children[0]
        assert [n.node_id for n in child.path_to_root()] == [1, 0]

    def test_height(self, small_tree):
        assert small_tree.height() == 1
        assert small_tree.children[0].height() == 0


class TestCaches:
    def test_attach_leaf_cache(self):
        node = leaf(1, [sensor(0)])
        node.attach_caches(60.0)
        assert node.leaf_cache is not None and node.agg_cache is None

    def test_attach_internal_cache(self):
        node = COLRNode(
            node_id=0, level=0, bbox=Rect(0, 0, 1, 1), children=[leaf(1, [sensor(0)])]
        )
        node.attach_caches(60.0)
        assert node.agg_cache is not None and node.leaf_cache is None

    def test_cached_weight_without_cache_is_zero(self):
        node = leaf(1, [sensor(0)])
        assert node.cached_weight(now=0.0, max_staleness=100.0) == 0
