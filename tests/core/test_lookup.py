"""Exact (non-sampled) range lookup: R-tree and hierarchical-cache modes."""

import pytest

from repro import COLRTreeConfig, Polygon, Rect
from repro.core.lookup import region_bbox, region_overlap_fraction

from tests.conftest import make_registry, make_tree


@pytest.fixture
def registry():
    return make_registry(n=400, seed=1)


class TestPlainRTreeMode:
    def test_probes_exactly_matching_sensors(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_plain_rtree())
        region = Rect(20, 20, 70, 70)
        expected = {s.sensor_id for s in registry.within(region)}
        answer = tree.query(region, now=0.0, max_staleness=600.0)
        assert {r.sensor_id for r in answer.probed_readings} == expected
        assert not answer.cached_readings and not answer.cached_sketches

    def test_repeat_query_probes_again(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_plain_rtree())
        region = Rect(20, 20, 70, 70)
        a1 = tree.query(region, now=0.0, max_staleness=600.0)
        a2 = tree.query(region, now=1.0, max_staleness=600.0)
        assert a2.stats.sensors_probed == a1.stats.sensors_probed

    def test_count_estimate_matches(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_plain_rtree())
        region = Rect(0, 0, 50, 50)
        expected = len(registry.within(region))
        answer = tree.query(region, now=0.0, max_staleness=600.0)
        assert answer.estimate("count") == expected

    def test_empty_region(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_plain_rtree())
        answer = tree.query(Rect(200, 200, 300, 300), now=0.0, max_staleness=600.0)
        assert answer.result_weight == 0


class TestHierarchicalCacheMode:
    def test_second_query_served_from_cache(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_hierarchical_cache())
        region = Rect(10, 10, 80, 80)
        a1 = tree.query(region, now=0.0, max_staleness=600.0)
        a2 = tree.query(region, now=1.0, max_staleness=600.0)
        assert a1.stats.sensors_probed > 0
        assert a2.stats.sensors_probed == 0
        assert a2.result_weight == a1.result_weight

    def test_cache_hit_reduces_traversal(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_hierarchical_cache())
        region = Rect(10, 10, 80, 80)
        a1 = tree.query(region, now=0.0, max_staleness=600.0)
        a2 = tree.query(region, now=1.0, max_staleness=600.0)
        assert a2.stats.nodes_traversed < a1.stats.nodes_traversed
        assert a2.stats.cached_nodes_accessed > 0

    def test_staleness_bound_forces_reprobe(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_hierarchical_cache())
        region = Rect(10, 10, 80, 80)
        tree.query(region, now=0.0, max_staleness=600.0)
        # 50s later with a 30s staleness bound: cached data is too old.
        a = tree.query(region, now=50.0, max_staleness=30.0)
        assert a.stats.sensors_probed > 0

    def test_answer_weight_equals_exact_result(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_hierarchical_cache())
        region = Rect(25, 25, 60, 60)
        expected = len(registry.within(region))
        a1 = tree.query(region, now=0.0, max_staleness=600.0)
        a2 = tree.query(region, now=10.0, max_staleness=600.0)
        assert a1.result_weight == expected
        assert a2.result_weight == expected

    def test_partial_overlap_mixes_cache_and_probe(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_hierarchical_cache())
        tree.query(Rect(0, 0, 50, 50), now=0.0, max_staleness=600.0)
        answer = tree.query(Rect(25, 25, 75, 75), now=1.0, max_staleness=600.0)
        assert answer.stats.sensors_probed > 0
        assert len(answer.cached_readings) + sum(
            s.count for s in answer.cached_sketches
        ) > 0
        expected = len(registry.within(Rect(25, 25, 75, 75)))
        assert answer.result_weight == expected


class TestPolygonQueries:
    def test_polygon_region_exact(self, registry):
        tree = make_tree(registry, COLRTreeConfig().as_plain_rtree())
        poly = Polygon.from_rect(Rect(20, 20, 60, 60))
        rect_answer = tree.query(Rect(20, 20, 60, 60), now=0.0, max_staleness=600.0)
        poly_answer = tree.query(poly, now=1.0, max_staleness=600.0)
        assert poly_answer.result_weight == rect_answer.result_weight

    def test_triangle_region(self, registry):
        from repro import GeoPoint

        tree = make_tree(registry, COLRTreeConfig().as_plain_rtree())
        tri = Polygon([GeoPoint(0, 0), GeoPoint(100, 0), GeoPoint(0, 100)])
        answer = tree.query(tri, now=0.0, max_staleness=600.0)
        expected = sum(
            1 for s in registry.all() if tri.contains_point(s.location)
        )
        assert answer.result_weight == expected


class TestRegionHelpers:
    def test_region_bbox_of_rect(self):
        r = Rect(0, 0, 1, 1)
        assert region_bbox(r) is r

    def test_region_bbox_of_polygon(self):
        p = Polygon.from_rect(Rect(0, 0, 2, 2))
        assert region_bbox(p) == Rect(0, 0, 2, 2)

    def test_overlap_fraction_matches_rect_math(self):
        bb = Rect(0, 0, 2, 2)
        assert region_overlap_fraction(bb, Rect(1, 0, 4, 2)) == pytest.approx(0.5)


class TestValidation:
    def test_negative_staleness_rejected(self, registry):
        tree = make_tree(registry)
        with pytest.raises(ValueError):
            tree.query(Rect(0, 0, 1, 1), now=0.0, max_staleness=-1.0)

    def test_no_network_raises_on_probe(self, registry):
        from repro import COLRTree

        tree = COLRTree(registry.all(), COLRTreeConfig().as_plain_rtree())
        with pytest.raises(RuntimeError):
            tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0)
