"""The QueryAnswer value object: weights and combined aggregates over
mixed sources (probed readings, cached readings, cached sketches)."""

import pytest

from repro import Reading
from repro.core.aggregates import AggregateSketch
from repro.core.lookup import QueryAnswer


def reading(sensor_id, value, timestamp=0.0):
    return Reading(
        sensor_id=sensor_id, value=value, timestamp=timestamp, expires_at=timestamp + 100
    )


class TestWeights:
    def test_empty_answer(self):
        answer = QueryAnswer()
        assert answer.probed_count == 0
        assert answer.result_weight == 0

    def test_weight_sums_all_sources(self):
        answer = QueryAnswer(
            probed_readings=[reading(1, 1.0)],
            cached_readings=[reading(2, 2.0), reading(3, 3.0)],
            cached_sketches=[AggregateSketch.of([(4.0, 0.0), (5.0, 0.0)])],
        )
        assert answer.probed_count == 1
        assert answer.result_weight == 5


class TestCombinedAggregates:
    @pytest.fixture
    def answer(self):
        return QueryAnswer(
            probed_readings=[reading(1, 10.0, timestamp=5.0)],
            cached_readings=[reading(2, 20.0, timestamp=3.0)],
            cached_sketches=[AggregateSketch.of([(30.0, 1.0), (40.0, 2.0)])],
        )

    def test_count(self, answer):
        assert answer.estimate("count") == 4.0

    def test_sum_and_avg(self, answer):
        assert answer.estimate("sum") == 100.0
        assert answer.estimate("avg") == 25.0

    def test_min_max(self, answer):
        assert answer.estimate("min") == 10.0
        assert answer.estimate("max") == 40.0

    def test_oldest_timestamp_propagates(self, answer):
        assert answer.combined_sketch().oldest_timestamp == 1.0

    def test_combined_sketch_does_not_mutate_sources(self, answer):
        before = answer.cached_sketches[0].count
        answer.combined_sketch()
        answer.combined_sketch()
        assert answer.cached_sketches[0].count == before

    def test_empty_aggregate_raises(self):
        with pytest.raises(ValueError):
            QueryAnswer().estimate("avg")

    def test_unknown_function_rejected(self, answer):
        with pytest.raises(ValueError):
            answer.estimate("median")
