import math

import pytest

from repro.core.aggregates import AggregateSketch, combine


class TestAdd:
    def test_single_value(self):
        s = AggregateSketch()
        s.add(5.0, timestamp=100.0)
        assert s.count == 1
        assert s.result("sum") == 5.0
        assert s.result("min") == s.result("max") == 5.0
        assert s.oldest_timestamp == 100.0

    def test_multiple_values(self):
        s = AggregateSketch.of([(1.0, 10.0), (5.0, 20.0), (3.0, 5.0)])
        assert s.result("count") == 3
        assert s.result("sum") == 9.0
        assert s.result("avg") == 3.0
        assert s.result("min") == 1.0
        assert s.result("max") == 5.0
        assert s.oldest_timestamp == 5.0

    def test_empty_results_undefined(self):
        s = AggregateSketch()
        for fn in ("count", "sum", "avg", "min", "max"):
            with pytest.raises(ValueError):
                s.result(fn)

    def test_unknown_function_rejected(self):
        s = AggregateSketch.of([(1.0, 0.0)])
        with pytest.raises(ValueError):
            s.result("median")


class TestRemove:
    def test_decrement_interior_value_stays_clean(self):
        s = AggregateSketch.of([(1.0, 0.0), (3.0, 0.0), (5.0, 0.0)])
        s.remove(3.0)
        assert not s.minmax_dirty
        assert s.result("sum") == 6.0
        assert s.result("min") == 1.0 and s.result("max") == 5.0

    def test_removing_extreme_dirties_minmax(self):
        s = AggregateSketch.of([(1.0, 0.0), (3.0, 0.0), (5.0, 0.0)])
        s.remove(5.0)
        assert s.minmax_dirty
        assert s.result("count") == 2
        assert s.result("sum") == 4.0
        with pytest.raises(ValueError):
            s.result("max")

    def test_remove_to_empty_resets(self):
        s = AggregateSketch.of([(2.0, 0.0)])
        s.remove(2.0)
        assert s.is_empty
        assert not s.minmax_dirty
        assert s.minimum == math.inf

    def test_remove_from_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregateSketch().remove(1.0)


class TestMergeAndCopy:
    def test_merge(self):
        a = AggregateSketch.of([(1.0, 10.0), (2.0, 20.0)])
        b = AggregateSketch.of([(10.0, 5.0)])
        a.merge(b)
        assert a.result("count") == 3
        assert a.result("max") == 10.0
        assert a.oldest_timestamp == 5.0

    def test_merge_empty_is_noop(self):
        a = AggregateSketch.of([(1.0, 0.0)])
        a.merge(AggregateSketch())
        assert a.result("count") == 1

    def test_merge_propagates_dirtiness(self):
        a = AggregateSketch.of([(1.0, 0.0)])
        b = AggregateSketch.of([(2.0, 0.0), (3.0, 0.0)])
        b.remove(3.0)
        a.merge(b)
        assert a.minmax_dirty

    def test_copy_is_independent(self):
        a = AggregateSketch.of([(1.0, 0.0)])
        c = a.copy()
        c.add(5.0, 1.0)
        assert a.result("count") == 1
        assert c.result("count") == 2

    def test_combine_many(self):
        sketches = [AggregateSketch.of([(float(i), 0.0)]) for i in range(5)]
        total = combine(sketches)
        assert total.result("count") == 5
        assert total.result("sum") == 10.0
