"""Cache-maintenance invariants of COLRTree (the trigger analogue)."""

import pytest

from repro import COLRTreeConfig, Reading, Rect
from repro.core.slots import slot_of

from tests.conftest import make_registry, make_tree


@pytest.fixture
def tree():
    return make_tree(make_registry(n=300, seed=2))


def cached_leaf_count(tree):
    total = 0
    for node in tree.root.iter_leaves():
        if node.leaf_cache is not None:
            total += len(node.leaf_cache)
    return total


def check_aggregate_consistency(tree):
    """Every internal slot sketch must equal the recomputation from its
    children — the invariant all four 'triggers' preserve."""
    for node in tree.root.iter_subtree():
        if node.is_leaf or node.agg_cache is None:
            continue
        for slot in node.agg_cache.slot_ids():
            cached = node.agg_cache.sketch(slot)
            recomputed = tree._recompute_slot(node, slot)
            assert cached.count == recomputed.count, (node.node_id, slot)
            assert cached.total == pytest.approx(recomputed.total)


class TestInsertPropagation:
    def test_insert_reaches_root(self, tree):
        leaf = tree.root.iter_leaves().__next__()
        sensor = leaf.sensors[0]
        r = Reading(sensor_id=sensor.sensor_id, value=5.0, timestamp=10.0, expires_at=310.0)
        tree.insert_reading(r, fetched_at=10.0)
        slot = slot_of(310.0, tree.config.slot_seconds)
        assert tree.root.agg_cache.sketch(slot).count == 1
        check_aggregate_consistency(tree)

    def test_insert_ops_counted(self, tree):
        leaf = next(tree.root.iter_leaves())
        sensor = leaf.sensors[0]
        r = Reading(sensor_id=sensor.sensor_id, value=5.0, timestamp=0.0, expires_at=300.0)
        ops = tree.insert_reading(r, fetched_at=0.0)
        # 1 leaf op + one per ancestor.
        assert ops == 1 + len(list(leaf.path_to_root())) - 1

    def test_update_decrements_old_value(self, tree):
        leaf = next(tree.root.iter_leaves())
        sensor = leaf.sensors[0]
        slot_seconds = tree.config.slot_seconds
        r1 = Reading(sensor_id=sensor.sensor_id, value=5.0, timestamp=0.0, expires_at=300.0)
        r2 = Reading(sensor_id=sensor.sensor_id, value=9.0, timestamp=100.0, expires_at=400.0)
        tree.insert_reading(r1, fetched_at=0.0)
        tree.insert_reading(r2, fetched_at=100.0)
        assert tree.cached_reading_count == 1
        old_slot, new_slot = slot_of(300.0, slot_seconds), slot_of(400.0, slot_seconds)
        assert tree.root.agg_cache.sketch(old_slot) is None or (
            tree.root.agg_cache.sketch(old_slot).count == 0
        )
        assert tree.root.agg_cache.sketch(new_slot).count == 1
        assert tree.root.agg_cache.sketch(new_slot).total == 9.0
        check_aggregate_consistency(tree)

    def test_unknown_sensor_rejected(self, tree):
        r = Reading(sensor_id=10_000, value=1.0, timestamp=0.0, expires_at=100.0)
        with pytest.raises(KeyError):
            tree.insert_reading(r, fetched_at=0.0)

    def test_caching_disabled_is_noop(self):
        reg = make_registry(n=50)
        tree = make_tree(reg, COLRTreeConfig(caching_enabled=False, sampling_enabled=False))
        sensor = reg.all()[0]
        r = Reading(sensor_id=sensor.sensor_id, value=1.0, timestamp=0.0, expires_at=100.0)
        assert tree.insert_reading(r, fetched_at=0.0) == 0
        assert tree.cached_reading_count == 0


class TestMinMaxRecomputation:
    def test_removing_max_recomputes_cleanly(self, tree):
        leaf = next(tree.root.iter_leaves())
        ids = [s.sensor_id for s in leaf.sensors[:3]]
        for sid, value in zip(ids, (1.0, 5.0, 9.0)):
            tree.insert_reading(
                Reading(sensor_id=sid, value=value, timestamp=0.0, expires_at=300.0),
                fetched_at=0.0,
            )
        # Replace the max (9.0) with a mid value in a different slot.
        tree.insert_reading(
            Reading(sensor_id=ids[2], value=4.0, timestamp=100.0, expires_at=550.0),
            fetched_at=100.0,
        )
        slot = slot_of(300.0, tree.config.slot_seconds)
        sketch = tree.root.agg_cache.sketch(slot)
        assert not sketch.minmax_dirty
        assert sketch.result("max") == 5.0
        check_aggregate_consistency(tree)


class TestExpiryPruning:
    def test_expired_slots_vanish_everywhere(self, tree):
        leaf = next(tree.root.iter_leaves())
        sensor = leaf.sensors[0]
        tree.insert_reading(
            Reading(sensor_id=sensor.sensor_id, value=1.0, timestamp=0.0, expires_at=200.0),
            fetched_at=0.0,
        )
        assert tree.cached_reading_count == 1
        # Move time far beyond expiry; a query triggers the roll.
        tree.query(Rect(0, 0, 1, 1), now=1000.0, max_staleness=600.0, sample_size=0)
        assert tree.cached_reading_count == 0
        assert len(leaf.leaf_cache) == 0

    def test_unexpired_data_survives_prune(self, tree):
        leaf = next(tree.root.iter_leaves())
        a, b = leaf.sensors[0], leaf.sensors[1]
        tree.insert_reading(
            Reading(sensor_id=a.sensor_id, value=1.0, timestamp=0.0, expires_at=200.0),
            fetched_at=0.0,
        )
        tree.insert_reading(
            Reading(sensor_id=b.sensor_id, value=2.0, timestamp=0.0, expires_at=5000.0),
            fetched_at=0.0,
        )
        tree._prune_expired(now=1000.0)
        assert tree.cached_reading_count == 1
        assert b.sensor_id in leaf.leaf_cache


class TestCapacityEviction:
    def test_capacity_enforced(self):
        reg = make_registry(n=200, seed=4)
        tree = make_tree(reg, COLRTreeConfig(cache_capacity=50))
        for sensor in reg.all()[:100]:
            tree.insert_reading(
                Reading(
                    sensor_id=sensor.sensor_id,
                    value=1.0,
                    timestamp=0.0,
                    expires_at=0.0 + sensor.expiry_seconds,
                ),
                fetched_at=float(sensor.sensor_id),
            )
        tree._enforce_capacity()
        assert tree.cached_reading_count <= 50
        assert cached_leaf_count(tree) == tree.cached_reading_count
        check_aggregate_consistency(tree)

    def test_eviction_prefers_oldest_slot_lrf(self):
        reg = make_registry(n=64, seed=5)
        tree = make_tree(reg, COLRTreeConfig(cache_capacity=3))
        sensors = reg.all()
        # Three in a far-future slot, one in a near slot: the near-slot
        # (oldest) reading must be the eviction victim.
        for i, lifetime in enumerate((550.0, 560.0, 570.0)):
            tree.insert_reading(
                Reading(
                    sensor_id=sensors[i].sensor_id,
                    value=1.0,
                    timestamp=0.0,
                    expires_at=lifetime,
                ),
                fetched_at=float(i),
            )
        tree.insert_reading(
            Reading(sensor_id=sensors[3].sensor_id, value=1.0, timestamp=0.0, expires_at=130.0),
            fetched_at=99.0,
        )
        tree._enforce_capacity()
        assert tree.cached_reading_count == 3
        evicted_leaf = tree.leaf_for(sensors[3].sensor_id)
        assert sensors[3].sensor_id not in evicted_leaf.leaf_cache
        check_aggregate_consistency(tree)

    def test_prime_cache_respects_capacity(self):
        reg = make_registry(n=100, seed=6)
        tree = make_tree(reg, COLRTreeConfig(cache_capacity=20))
        readings = [
            Reading(
                sensor_id=s.sensor_id,
                value=1.0,
                timestamp=0.0,
                expires_at=s.expiry_seconds,
            )
            for s in reg.all()
        ]
        tree.prime_cache(readings, fetched_at=0.0)
        assert tree.cached_reading_count <= 20
