import pytest

from repro.core.stats import ProcessingCostModel, QueryStats, TreeStats


class TestQueryStats:
    def test_defaults_zero(self):
        stats = QueryStats()
        assert stats.nodes_traversed == 0
        assert stats.collection_latency_seconds == 0.0

    def test_merge_accumulates_every_field(self):
        a = QueryStats(nodes_traversed=3, sensors_probed=5, collection_latency_seconds=0.5)
        b = QueryStats(nodes_traversed=2, sensors_probed=1, collection_latency_seconds=0.25)
        a.merge(b)
        assert a.nodes_traversed == 5
        assert a.sensors_probed == 6
        assert a.collection_latency_seconds == 0.75


class TestTreeStats:
    def test_record_and_reset(self):
        tree_stats = TreeStats()
        tree_stats.record(QueryStats(nodes_traversed=4))
        tree_stats.record(QueryStats(nodes_traversed=6))
        assert tree_stats.queries == 2
        assert tree_stats.totals.nodes_traversed == 10
        tree_stats.reset()
        assert tree_stats.queries == 0
        assert tree_stats.totals.nodes_traversed == 0


class TestProcessingCostModel:
    def test_zero_work_zero_latency(self):
        assert ProcessingCostModel().processing_seconds(QueryStats()) == 0.0

    def test_each_counter_contributes(self):
        model = ProcessingCostModel()
        base = model.processing_seconds(QueryStats())
        for field, value in (
            ("nodes_traversed", 10),
            ("slots_combined", 10),
            ("readings_scanned", 10),
            ("maintenance_ops", 10),
            ("sensors_probed", 10),
        ):
            stats = QueryStats(**{field: value})
            assert model.processing_seconds(stats) > base, field

    def test_linear_in_work(self):
        model = ProcessingCostModel()
        one = model.processing_seconds(QueryStats(nodes_traversed=1))
        ten = model.processing_seconds(QueryStats(nodes_traversed=10))
        assert ten == pytest.approx(10 * one)

    def test_end_to_end_adds_collection(self):
        model = ProcessingCostModel()
        stats = QueryStats(nodes_traversed=5, collection_latency_seconds=1.5)
        assert model.end_to_end_seconds(stats) == pytest.approx(
            model.processing_seconds(stats) + 1.5
        )

    def test_custom_constants(self):
        model = ProcessingCostModel(per_node_traversal=1.0)
        assert model.processing_seconds(QueryStats(nodes_traversed=3)) == pytest.approx(3.0)
