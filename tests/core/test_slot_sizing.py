"""The Section IV-C utility/cost model (Figure 2)."""

import numpy as np
import pytest

from repro.core.slot_sizing import (
    SlotSizeModel,
    default_delta_grid,
    optimal_slot_size,
)


def uniform_model(**overrides):
    rng = np.random.default_rng(0)
    samples = tuple(float(x) for x in rng.uniform(0.01, 1.0, 2000))
    params = dict(expiry_samples=samples, query_window=0.5, update_fraction=0.3, collection_cost=20.0)
    params.update(overrides)
    return SlotSizeModel(**params)


class TestValidation:
    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            SlotSizeModel(expiry_samples=())

    def test_unnormalized_samples_rejected(self):
        with pytest.raises(ValueError):
            SlotSizeModel(expiry_samples=(1.5,))
        with pytest.raises(ValueError):
            SlotSizeModel(expiry_samples=(0.0,))

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            SlotSizeModel(expiry_samples=(0.5,), query_window=0.0)

    def test_delta_out_of_range_rejected(self):
        m = uniform_model()
        with pytest.raises(ValueError):
            m.cost(0.0)
        with pytest.raises(ValueError):
            m.utility(1.5)


class TestCostFormula:
    def test_cost_matches_paper_expression(self):
        m = uniform_model(query_window=0.5, update_fraction=0.3, collection_cost=20.0)
        delta = 0.2
        # floor(0.5/0.2)=2 slots, ceil=3 touched, residue 0.5-0.4=0.1.
        expected = 2 + 3 * 0.3 + 0.1 * 20.0
        assert m.cost(delta) == pytest.approx(expected)

    def test_large_slots_leave_residue_to_collect(self):
        m = uniform_model(query_window=0.5)
        # Δ=0.8 > T: zero whole slots, whole window collected raw.
        assert m.cost(0.8) == pytest.approx(0 + 1 * 0.3 + 0.5 * 20.0)

    def test_exact_division_has_no_residue(self):
        m = uniform_model(query_window=0.5, collection_cost=100.0)
        assert m.cost(0.25) == pytest.approx(2 + 2 * 0.3)


class TestUtility:
    def test_tiny_slots_maximize_utility(self):
        m = uniform_model()
        assert m.utility(0.05) > m.utility(0.5) > m.utility(0.99)

    def test_single_slot_has_zero_utility(self):
        """With Δ = 1 every expiry lands in slot 1 and aggregated data
        is discarded as soon as the window slides: zero usable lifetime."""
        m = uniform_model()
        assert m.utility(1.0) == pytest.approx(0.0)

    def test_utility_of_long_expiries_higher(self):
        short = SlotSizeModel(expiry_samples=tuple([0.1] * 100))
        long = SlotSizeModel(expiry_samples=tuple([0.9] * 100))
        assert long.utility(0.2) > short.utility(0.2)


class TestOptimum:
    def test_uniform_optimum_is_interior(self):
        m = uniform_model()
        best = optimal_slot_size(m)
        assert 0.1 <= best <= 0.9

    def test_short_expiry_workload_prefers_smaller_slots(self):
        rng = np.random.default_rng(1)
        short = SlotSizeModel(
            expiry_samples=tuple(float(x) for x in rng.uniform(0.02, 0.3, 1000))
        )
        long = SlotSizeModel(
            expiry_samples=tuple(float(x) for x in rng.uniform(0.7, 1.0, 1000))
        )
        assert optimal_slot_size(short) < optimal_slot_size(long)

    def test_sweep_matches_ratio(self):
        m = uniform_model()
        grid = [0.2, 0.5]
        pairs = m.sweep(grid)
        assert pairs[0] == (0.2, m.ratio(0.2))
        assert pairs[1] == (0.5, m.ratio(0.5))

    def test_default_grid(self):
        grid = default_delta_grid()
        assert grid[0] > 0 and grid[-1] < 1
        assert grid == sorted(grid)

    def test_from_workload_normalizes(self):
        m = SlotSizeModel.from_workload(
            expiry_seconds=[60.0, 300.0, 600.0],
            t_max=600.0,
            query_window_seconds=300.0,
        )
        assert m.query_window == pytest.approx(0.5)
        assert max(m.expiry_samples) == pytest.approx(1.0)

    def test_from_workload_bad_tmax(self):
        with pytest.raises(ValueError):
            SlotSizeModel.from_workload([1.0], t_max=0.0, query_window_seconds=1.0)
