"""The Hilbert-curve bulk loader."""

import numpy as np
import pytest

from repro import GeoPoint, Sensor, build_colr_tree
from repro.core.build import hilbert_index


def make_sensors(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Sensor(
            sensor_id=i,
            location=GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=300.0,
        )
        for i in range(n)
    ]


class TestHilbertIndex:
    def test_order_one_quadrants(self):
        # The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
        assert hilbert_index(1, 0, 0) == 0
        assert hilbert_index(1, 0, 1) == 1
        assert hilbert_index(1, 1, 1) == 2
        assert hilbert_index(1, 1, 0) == 3

    def test_bijective_on_small_grid(self):
        order = 3
        side = 1 << order
        indexes = {hilbert_index(order, x, y) for x in range(side) for y in range(side)}
        assert indexes == set(range(side * side))

    def test_consecutive_cells_adjacent(self):
        """The defining property: consecutive curve positions are
        neighbouring cells (Manhattan distance 1)."""
        order = 4
        side = 1 << order
        by_index = {}
        for x in range(side):
            for y in range(side):
                by_index[hilbert_index(order, x, y)] = (x, y)
        for d in range(side * side - 1):
            (x1, y1), (x2, y2) = by_index[d], by_index[d + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1, d

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            hilbert_index(0, 0, 0)
        with pytest.raises(ValueError):
            hilbert_index(2, 4, 0)


class TestHilbertBuild:
    def test_every_sensor_in_exactly_one_leaf(self):
        sensors = make_sensors(500)
        root = build_colr_tree(sensors, fanout=8, leaf_capacity=32, method="hilbert")
        seen = sorted(
            s.sensor_id for leaf in root.iter_leaves() for s in leaf.sensors
        )
        assert seen == list(range(500))

    def test_structure_invariants(self):
        root = build_colr_tree(make_sensors(400), fanout=4, leaf_capacity=16, method="hilbert")
        for node in root.iter_subtree():
            for child in node.children:
                assert node.bbox.contains_rect(child.bbox)
                assert child.level == node.level + 1
            if not node.is_leaf:
                assert node.weight == sum(c.weight for c in node.children)

    def test_leaves_tighter_than_random_grouping(self):
        """Hilbert packing must produce spatially tight leaves: total
        leaf bbox area well below a shuffled grouping's."""
        sensors = make_sensors(1000, seed=3)
        hilbert_root = build_colr_tree(sensors, fanout=8, leaf_capacity=25, method="hilbert")
        hilbert_area = sum(l.bbox.area for l in hilbert_root.iter_leaves())
        rng = np.random.default_rng(4)
        shuffled = list(sensors)
        rng.shuffle(shuffled)
        from repro.geometry import Rect

        random_area = 0.0
        for i in range(0, len(shuffled), 25):
            group = shuffled[i : i + 25]
            random_area += Rect.from_points(s.location for s in group).area
        assert hilbert_area < random_area / 5

    def test_queryable_end_to_end(self):
        from repro import COLRTree, COLRTreeConfig, Rect, SensorNetwork

        sensors = make_sensors(400, seed=5)
        network = SensorNetwork(sensors, seed=1)
        tree = COLRTree(
            sensors, COLRTreeConfig(), network=network, build_method="hilbert"
        )
        answer = tree.query(Rect(0, 0, 50, 50), now=0.0, max_staleness=600.0, sample_size=20)
        assert answer.probed_count > 0
