import numpy as np
import pytest

from repro import GeoPoint, Sensor, build_colr_tree
from repro.core.build import kmeans_cluster

from tests.conftest import make_registry


def make_sensors(n, seed=0, coincident=False):
    rng = np.random.default_rng(seed)
    sensors = []
    for i in range(n):
        if coincident:
            loc = GeoPoint(1.0, 1.0)
        else:
            loc = GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
        sensors.append(Sensor(sensor_id=i, location=loc, expiry_seconds=300.0))
    return sensors


class TestKMeans:
    def test_labels_shape_and_range(self):
        pts = np.random.default_rng(0).uniform(0, 10, (100, 2))
        labels = kmeans_cluster(pts, 4, np.random.default_rng(1))
        assert labels.shape == (100,)
        assert labels.min() >= 0 and labels.max() < 4

    def test_k_larger_than_n(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        labels = kmeans_cluster(pts, 10, np.random.default_rng(0))
        assert labels.shape == (2,)

    def test_single_cluster(self):
        pts = np.random.default_rng(0).uniform(0, 1, (5, 2))
        assert (kmeans_cluster(pts, 1, np.random.default_rng(0)) == 0).all()

    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal((0, 0), 0.1, (50, 2))
        b = rng.normal((100, 100), 0.1, (50, 2))
        labels = kmeans_cluster(np.vstack([a, b]), 2, np.random.default_rng(1))
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]

    def test_zero_points_rejected(self):
        with pytest.raises(ValueError):
            kmeans_cluster(np.empty((0, 2)), 2, np.random.default_rng(0))


class TestBuild:
    @pytest.mark.parametrize("method", ["kmeans", "str"])
    def test_every_sensor_in_exactly_one_leaf(self, method):
        sensors = make_sensors(500)
        root = build_colr_tree(sensors, fanout=8, leaf_capacity=32, method=method)
        seen = []
        for leaf in root.iter_leaves():
            seen.extend(s.sensor_id for s in leaf.sensors)
        assert sorted(seen) == list(range(500))

    @pytest.mark.parametrize("method", ["kmeans", "str"])
    def test_leaf_capacity_respected(self, method):
        root = build_colr_tree(make_sensors(500), fanout=8, leaf_capacity=32, method=method)
        assert all(len(leaf.sensors) <= 32 for leaf in root.iter_leaves())

    def test_bbox_containment_invariant(self):
        root = build_colr_tree(make_sensors(500), fanout=8, leaf_capacity=32)
        for node in root.iter_subtree():
            for child in node.children:
                assert node.bbox.contains_rect(child.bbox)
            if node.is_leaf:
                assert all(node.bbox.contains_point(s.location) for s in node.sensors)

    def test_weight_invariant(self):
        root = build_colr_tree(make_sensors(300), fanout=4, leaf_capacity=16)
        for node in root.iter_subtree():
            if not node.is_leaf:
                assert node.weight == sum(c.weight for c in node.children)
            else:
                assert node.weight == len(node.sensors)
        assert root.weight == 300

    def test_levels_root_zero_increasing(self):
        root = build_colr_tree(make_sensors(300), fanout=4, leaf_capacity=16)
        assert root.level == 0
        for node in root.iter_subtree():
            for child in node.children:
                assert child.level == node.level + 1

    def test_descendant_ids_complete(self):
        root = build_colr_tree(make_sensors(200), fanout=4, leaf_capacity=16)
        assert sorted(root.descendant_ids.tolist()) == list(range(200))

    def test_single_sensor(self):
        root = build_colr_tree(make_sensors(1), fanout=8, leaf_capacity=32)
        assert root.is_leaf
        assert root.weight == 1

    def test_coincident_points_terminate(self):
        root = build_colr_tree(
            make_sensors(100, coincident=True), fanout=8, leaf_capacity=16
        )
        assert root.weight == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_colr_tree([], fanout=8, leaf_capacity=32)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            build_colr_tree(make_sensors(10), fanout=8, leaf_capacity=32, method="zorder")

    def test_deterministic_given_seed(self):
        sensors = make_sensors(200)
        r1 = build_colr_tree(sensors, fanout=4, leaf_capacity=16, seed=5)
        r2 = build_colr_tree(sensors, fanout=4, leaf_capacity=16, seed=5)
        l1 = [sorted(s.sensor_id for s in leaf.sensors) for leaf in r1.iter_leaves()]
        l2 = [sorted(s.sensor_id for s in leaf.sensors) for leaf in r2.iter_leaves()]
        assert sorted(map(tuple, l1)) == sorted(map(tuple, l2))

    def test_weight_uniformity_of_kmeans_layers(self):
        """Section VII-B observes near-uniform internal weights per layer;
        the clustering should not produce wildly lopsided siblings."""
        registry = make_registry(n=2000, seed=3)
        root = build_colr_tree(registry.all(), fanout=8, leaf_capacity=32)
        by_level: dict[int, list[int]] = {}
        for node in root.iter_subtree():
            if not node.is_leaf:
                by_level.setdefault(node.level, []).append(node.weight)
        for level, weights in by_level.items():
            if len(weights) < 4:
                continue
            assert max(weights) <= 25 * min(weights), (level, weights)
