"""Batched slot-cache ingestion vs the one-reading-at-a-time reference.

``COLRTree.insert_readings_batch`` must leave every cache — leaf
contents, ancestor aggregates, registry, eviction bookkeeping — in
exactly the state the sequential ``insert_reading`` loop produces; only
the maintenance-op count may shrink.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import COLRTreeConfig, Reading
from tests.conftest import make_registry, make_tree


def _build_pair(config: COLRTreeConfig | None = None):
    registry = make_registry(n=120, seed=11)
    return make_tree(registry, config=config), make_tree(registry, config=config)


def _cache_state(tree):
    """Full observable cache state of a tree."""
    leaves = {}
    aggs = {}
    for node in tree.nodes():
        if node.is_leaf and node.leaf_cache is not None:
            leaves[node.node_id] = {
                r.sensor_id: (r.value, r.timestamp, r.expires_at)
                for r in node.leaf_cache.all_readings()
            }
        if not node.is_leaf and node.agg_cache is not None:
            aggs[node.node_id] = {
                slot: (
                    sketch.count,
                    sketch.total,
                    sketch.minimum,
                    sketch.maximum,
                    sketch.oldest_timestamp,
                    sketch.minmax_dirty,
                )
                for slot in node.agg_cache.slot_ids()
                for sketch in [node.agg_cache.sketch(slot)]
            }
    return leaves, aggs, tree.cached_reading_count


def _exact_slot_truth(tree):
    """Ground-truth per-(internal node, slot) aggregates recomputed from
    the leaf contents — what a from-scratch rebuild would hold."""
    from repro.core.slots import slot_of

    truth = {}
    for node in tree.nodes():
        if node.is_leaf or node.agg_cache is None:
            continue
        per_slot = {}
        for descendant in node.iter_subtree():
            if not descendant.is_leaf or descendant.leaf_cache is None:
                continue
            for r in descendant.leaf_cache.all_readings():
                slot = slot_of(r.expires_at, tree.config.slot_seconds)
                entry = per_slot.setdefault(slot, [])
                entry.append(r)
        truth[node.node_id] = {
            slot: (
                len(rs),
                sum(r.value for r in rs),
                min(r.value for r in rs),
                max(r.value for r in rs),
                min(r.timestamp for r in rs),
            )
            for slot, rs in per_slot.items()
        }
    return truth


def _assert_state_equal(seq_tree, bat_tree):
    """Sequential and batched ingestion must agree on every observable
    that queries consume: leaf contents, registry counts, and per-slot
    count/min/max exactly; ``total`` up to float summation order (the
    grouped delta sums the same values in a different association); and
    ``oldest_timestamp`` either identical or conservatively older than
    the exact value (a displaced interior value's removal never
    recomputes, so whichever path recomputed *later* holds the exact
    timestamp while the other keeps a valid, older bound)."""
    seq_leaves, seq_aggs, seq_count = _cache_state(seq_tree)
    bat_leaves, bat_aggs, bat_count = _cache_state(bat_tree)
    assert seq_leaves == bat_leaves
    assert seq_count == bat_count
    assert seq_aggs.keys() == bat_aggs.keys()
    truth = _exact_slot_truth(seq_tree)
    for node_id in seq_aggs:
        assert seq_aggs[node_id].keys() == bat_aggs[node_id].keys(), node_id
        assert seq_aggs[node_id].keys() == truth[node_id].keys(), node_id
        for slot, s in seq_aggs[node_id].items():
            b = bat_aggs[node_id][slot]
            exact = truth[node_id][slot]
            for got in (s, b):
                assert got[0] == exact[0], (node_id, slot, got, exact)
                assert got[1] == pytest.approx(exact[1], rel=1e-9, abs=1e-9)
                assert got[2] == exact[2] and got[3] == exact[3]
                assert got[4] <= exact[4] + 1e-12  # conservative freshness
                assert got[5] is False  # dirty slots were recomputed
            assert s[1] == pytest.approx(b[1], rel=1e-9, abs=1e-9), (node_id, slot)


def _readings_for(tree, rng, count, now=0.0):
    """Random readings over the tree's sensor population, with repeats
    (updates) and a spread of expiries (multiple slots)."""
    sensor_ids = [s.sensor_id for s in tree.network.sensors()]
    out = []
    for _ in range(count):
        sid = int(rng.choice(sensor_ids))
        timestamp = now + float(rng.uniform(-60, 60))
        lifetime = float(rng.uniform(30, 600))
        out.append(
            Reading(
                sensor_id=sid,
                value=float(rng.uniform(-50, 50)),
                timestamp=timestamp,
                expires_at=timestamp + lifetime,
            )
        )
    return out


class TestBatchedIngestionEquivalence:
    def test_matches_sequential_loop(self):
        seq, bat = _build_pair()
        rng = np.random.default_rng(42)
        readings = _readings_for(seq, rng, 200)
        for r in readings:
            seq.insert_reading(r, fetched_at=100.0)
        seq._enforce_capacity()
        bat.insert_readings_batch(readings, fetched_at=100.0)
        _assert_state_equal(seq, bat)

    def test_repeated_batches_compose(self):
        seq, bat = _build_pair()
        rng = np.random.default_rng(7)
        for wave in range(4):
            readings = _readings_for(seq, rng, 60, now=wave * 90.0)
            for r in readings:
                seq.insert_reading(r, fetched_at=wave * 90.0)
            seq._enforce_capacity()
            bat.insert_readings_batch(readings, fetched_at=wave * 90.0)
            _assert_state_equal(seq, bat)

    def test_updates_displace_and_decrement(self):
        """The same sensor appearing twice in one batch: second value
        wins, ancestors hold exactly one contribution."""
        seq, bat = _build_pair()
        sensors = seq.network.sensors()[:5]
        batch = []
        for i, s in enumerate(sensors):
            batch.append(
                Reading(
                    sensor_id=s.sensor_id,
                    value=10.0 + i,
                    timestamp=0.0,
                    expires_at=200.0,
                )
            )
            batch.append(
                Reading(
                    sensor_id=s.sensor_id,
                    value=-3.0 - i,
                    timestamp=5.0,
                    expires_at=500.0,  # different slot than the first
                )
            )
        for r in batch:
            seq.insert_reading(r, fetched_at=0.0)
        seq._enforce_capacity()
        bat.insert_readings_batch(batch, fetched_at=0.0)
        _assert_state_equal(seq, bat)
        leaf = bat.leaf_for(sensors[0].sensor_id)
        assert leaf.leaf_cache.get(sensors[0].sensor_id).reading.value == -3.0

    def test_fewer_maintenance_ops_than_sequential(self):
        seq, bat = _build_pair()
        rng = np.random.default_rng(3)
        readings = _readings_for(seq, rng, 150)
        seq_ops = sum(seq.insert_reading(r, fetched_at=0.0) for r in readings)
        seq_ops += seq._enforce_capacity()
        bat_ops = bat.insert_readings_batch(readings, fetched_at=0.0)
        assert bat_ops < seq_ops
        _assert_state_equal(seq, bat)

    def test_caching_disabled_is_noop(self):
        registry = make_registry(n=40, seed=2)
        cfg = COLRTreeConfig(caching_enabled=False, max_expiry_seconds=600.0)
        tree = make_tree(registry, config=cfg)
        readings = _readings_for(tree, np.random.default_rng(0), 20)
        assert tree.insert_readings_batch(readings, fetched_at=0.0) == 0

    def test_unknown_sensor_raises(self):
        tree = make_tree(make_registry(n=20, seed=4))
        bogus = Reading(sensor_id=999_999, value=1.0, timestamp=0.0, expires_at=60.0)
        try:
            tree.insert_readings_batch([bogus], fetched_at=0.0)
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError for unindexed sensor")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(1, 80))
    def test_equivalence_property(self, seed, count):
        seq, bat = _build_pair()
        rng = np.random.default_rng(seed)
        readings = _readings_for(seq, rng, count)
        for r in readings:
            seq.insert_reading(r, fetched_at=50.0)
        seq._enforce_capacity()
        bat.insert_readings_batch(readings, fetched_at=50.0)
        _assert_state_equal(seq, bat)


class TestClearCaches:
    def test_resets_to_cold(self):
        tree = make_tree(make_registry(n=60, seed=6))
        readings = _readings_for(tree, np.random.default_rng(1), 80)
        tree.insert_readings_batch(readings, fetched_at=0.0)
        assert tree.cached_reading_count > 0
        tree.clear_caches()
        assert tree.cached_reading_count == 0
        cold = make_tree(make_registry(n=60, seed=6))
        assert _cache_state(tree) == _cache_state(cold)
