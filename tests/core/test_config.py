import pytest

from repro import COLRTreeConfig


class TestValidation:
    def test_defaults_valid(self):
        COLRTreeConfig()

    def test_fanout_bounds(self):
        with pytest.raises(ValueError):
            COLRTreeConfig(fanout=1)

    def test_slot_exceeding_tmax_rejected(self):
        with pytest.raises(ValueError):
            COLRTreeConfig(max_expiry_seconds=100.0, slot_seconds=101.0)

    def test_zero_slot_rejected(self):
        with pytest.raises(ValueError):
            COLRTreeConfig(slot_seconds=0.0)

    def test_oversample_must_be_at_or_below_terminal(self):
        with pytest.raises(ValueError):
            COLRTreeConfig(terminal_level=3, oversample_level=2)
        COLRTreeConfig(terminal_level=2, oversample_level=2)

    def test_negative_cache_capacity_rejected(self):
        with pytest.raises(ValueError):
            COLRTreeConfig(cache_capacity=-1)


class TestDerived:
    def test_n_slots_exact_division(self):
        cfg = COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0)
        assert cfg.n_slots == 5

    def test_n_slots_rounds_up(self):
        cfg = COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=250.0)
        assert cfg.n_slots == 3

    def test_plain_rtree_variant(self):
        cfg = COLRTreeConfig().as_plain_rtree()
        assert not cfg.caching_enabled and not cfg.sampling_enabled

    def test_hierarchical_cache_variant(self):
        cfg = COLRTreeConfig().as_hierarchical_cache()
        assert cfg.caching_enabled and not cfg.sampling_enabled

    def test_with_slot_seconds(self):
        cfg = COLRTreeConfig(max_expiry_seconds=600.0).with_slot_seconds(60.0)
        assert cfg.slot_seconds == 60.0

    def test_with_cache_capacity(self):
        cfg = COLRTreeConfig().with_cache_capacity(500)
        assert cfg.cache_capacity == 500
        assert cfg.with_cache_capacity(None).cache_capacity is None

    def test_frozen(self):
        with pytest.raises(Exception):
            COLRTreeConfig().fanout = 4
