import pytest

from repro import Reading
from repro.core.slots import LeafSlotCache, SlotCache, slot_of, usable_slot_range


def reading(sensor_id=0, value=1.0, timestamp=0.0, lifetime=300.0):
    return Reading(
        sensor_id=sensor_id,
        value=value,
        timestamp=timestamp,
        expires_at=timestamp + lifetime,
    )


class TestSlotOf:
    def test_basic_bucketing(self):
        assert slot_of(0.0, 120.0) == 0
        assert slot_of(119.9, 120.0) == 0
        assert slot_of(120.0, 120.0) == 1

    def test_global_alignment(self):
        """Two caches with the same Δ agree on every slot id."""
        for t in (0.0, 59.0, 240.0, 1234.5):
            assert slot_of(t, 60.0) == slot_of(t, 60.0)

    def test_usable_range_excludes_boundary_slot(self):
        low, _ = usable_slot_range(now=250.0, slot_seconds=120.0)
        assert low == slot_of(250.0, 120.0) + 1


class TestLeafSlotCache:
    def test_insert_and_get(self):
        cache = LeafSlotCache(120.0)
        r = reading(sensor_id=7)
        assert cache.insert(r, fetched_at=0.0) is None
        assert len(cache) == 1
        assert 7 in cache
        assert cache.get(7).reading == r

    def test_insert_replaces_and_returns_displaced(self):
        cache = LeafSlotCache(120.0)
        old = reading(sensor_id=7, value=1.0, timestamp=0.0)
        new = reading(sensor_id=7, value=2.0, timestamp=100.0)
        cache.insert(old, fetched_at=0.0)
        displaced = cache.insert(new, fetched_at=100.0)
        assert displaced == old
        assert len(cache) == 1
        assert cache.get(7).reading.value == 2.0

    def test_remove_absent_returns_none(self):
        assert LeafSlotCache(120.0).remove(5) is None

    def test_slot_bookkeeping(self):
        cache = LeafSlotCache(120.0)
        cache.insert(reading(sensor_id=1, timestamp=0.0, lifetime=100.0), 0.0)
        cache.insert(reading(sensor_id=2, timestamp=0.0, lifetime=500.0), 0.0)
        assert cache.slot_ids() == [slot_of(100.0, 120.0), slot_of(500.0, 120.0)]

    def test_prune_expired(self):
        cache = LeafSlotCache(120.0)
        cache.insert(reading(sensor_id=1, timestamp=0.0, lifetime=100.0), 0.0)
        cache.insert(reading(sensor_id=2, timestamp=0.0, lifetime=500.0), 0.0)
        dropped = cache.prune_expired(now=240.0)
        assert [r.sensor_id for r in dropped] == [1]
        assert len(cache) == 1

    def test_fresh_readings_excludes_expired(self):
        cache = LeafSlotCache(120.0)
        cache.insert(reading(sensor_id=1, timestamp=0.0, lifetime=100.0), 0.0)
        cache.insert(reading(sensor_id=2, timestamp=0.0, lifetime=500.0), 0.0)
        fresh = cache.fresh_readings(now=150.0, max_staleness=1000.0)
        assert {r.sensor_id for r in fresh} == {2}

    def test_fresh_readings_excludes_stale(self):
        cache = LeafSlotCache(120.0)
        cache.insert(reading(sensor_id=1, timestamp=0.0, lifetime=500.0), 0.0)
        cache.insert(reading(sensor_id=2, timestamp=90.0, lifetime=500.0), 90.0)
        fresh = cache.fresh_readings(now=100.0, max_staleness=50.0)
        assert {r.sensor_id for r in fresh} == {2}

    def test_boundary_slot_inspected_individually(self):
        cache = LeafSlotCache(120.0)
        # Both land in slot 1 (expiries 130 and 230); at now=200 the
        # first is expired, the second is not.
        cache.insert(reading(sensor_id=1, timestamp=0.0, lifetime=130.0), 0.0)
        cache.insert(reading(sensor_id=2, timestamp=0.0, lifetime=230.0), 0.0)
        fresh = cache.fresh_readings(now=200.0, max_staleness=1000.0)
        assert {r.sensor_id for r in fresh} == {2}

    def test_eviction_candidates_lrf_order_in_oldest_slot(self):
        cache = LeafSlotCache(120.0)
        cache.insert(reading(sensor_id=1, timestamp=0.0, lifetime=100.0), fetched_at=50.0)
        cache.insert(reading(sensor_id=2, timestamp=0.0, lifetime=110.0), fetched_at=10.0)
        cache.insert(reading(sensor_id=3, timestamp=0.0, lifetime=500.0), fetched_at=0.0)
        candidates = cache.eviction_candidates()
        # Sensors 1 and 2 share the oldest slot; 2 was fetched earlier.
        assert [sid for _, sid in candidates] == [2, 1]

    def test_invalid_slot_seconds(self):
        with pytest.raises(ValueError):
            LeafSlotCache(0.0)


class TestAggregateSlotCache:
    def test_add_and_usable(self):
        cache = SlotCache(120.0)
        cache.add(slot=5, value=10.0, timestamp=500.0)
        cache.add(slot=5, value=20.0, timestamp=510.0)
        sketches = cache.usable_sketches(now=400.0, max_staleness=200.0)
        assert len(sketches) == 1
        assert sketches[0].count == 2

    def test_boundary_slot_not_usable(self):
        cache = SlotCache(120.0)
        cache.add(slot=slot_of(450.0, 120.0), value=1.0, timestamp=440.0)
        assert cache.usable_sketches(now=450.0, max_staleness=1000.0) == []

    def test_stale_aggregate_filtered_by_oldest_timestamp(self):
        cache = SlotCache(120.0)
        cache.add(slot=10, value=1.0, timestamp=100.0)
        cache.add(slot=10, value=2.0, timestamp=900.0)
        # Window of 50s at now=920 excludes the old constituent.
        assert cache.usable_sketches(now=920.0, max_staleness=50.0) == []
        assert len(cache.usable_sketches(now=920.0, max_staleness=900.0)) == 1

    def test_usable_weight(self):
        cache = SlotCache(120.0)
        cache.add(slot=9, value=1.0, timestamp=800.0)
        cache.add(slot=9, value=2.0, timestamp=810.0)
        cache.add(slot=2, value=3.0, timestamp=100.0)  # behind now
        assert cache.usable_weight(now=820.0, max_staleness=600.0) == 2
        assert cache.total_weight() == 3

    def test_remove_and_empty_slot_dropped(self):
        cache = SlotCache(120.0)
        cache.add(slot=4, value=5.0, timestamp=0.0)
        dirty = cache.remove(slot=4, value=5.0)
        assert not dirty
        assert cache.sketch(4) is None

    def test_remove_extreme_reports_dirty(self):
        cache = SlotCache(120.0)
        cache.add(slot=4, value=5.0, timestamp=0.0)
        cache.add(slot=4, value=9.0, timestamp=0.0)
        assert cache.remove(slot=4, value=9.0) is True

    def test_remove_missing_slot_rejected(self):
        with pytest.raises(KeyError):
            SlotCache(120.0).remove(slot=3, value=1.0)

    def test_prune_expired(self):
        cache = SlotCache(120.0)
        cache.add(slot=1, value=1.0, timestamp=0.0)
        cache.add(slot=9, value=1.0, timestamp=0.0)
        assert cache.prune_expired(now=600.0) == 1
        assert cache.slot_ids() == [9]

    def test_replace_with_empty_drops(self):
        from repro.core.aggregates import AggregateSketch

        cache = SlotCache(120.0)
        cache.add(slot=3, value=1.0, timestamp=0.0)
        cache.replace(3, AggregateSketch())
        assert len(cache) == 0
