"""End-to-end aggregate correctness: every aggregate function answered
through the index (with caching in the loop) must equal the brute-force
computation over the same network values."""

import numpy as np
import pytest

from repro import (
    AvailabilityModel,
    COLRTree,
    COLRTreeConfig,
    GeoPoint,
    Rect,
    SensorNetwork,
    SensorRegistry,
)


@pytest.fixture
def setup():
    rng = np.random.default_rng(50)
    registry = SensorRegistry()
    for _ in range(400):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(300, 600)),
        )

    def value_fn(sensor, now):
        return float((sensor.sensor_id * 37) % 101) - 50.0  # deterministic

    network = SensorNetwork(registry.all(), value_fn=value_fn, seed=1)
    tree = COLRTree(
        registry.all(),
        COLRTreeConfig(
            max_expiry_seconds=600.0,
            slot_seconds=120.0,
            sampling_enabled=False,
        ),
        network=network,
        availability_model=AvailabilityModel(),
    )
    return registry, tree, value_fn


REGION = Rect(15, 15, 75, 75)


def brute_force(registry, value_fn, region):
    values = [
        value_fn(s, 0.0) for s in registry.all() if region.contains_point(s.location)
    ]
    return values


class TestExactAggregates:
    @pytest.mark.parametrize("function", ["count", "sum", "avg", "min", "max"])
    def test_cold_query_matches_brute_force(self, setup, function):
        registry, tree, value_fn = setup
        values = brute_force(registry, value_fn, REGION)
        answer = tree.query(REGION, now=0.0, max_staleness=600.0)
        expected = {
            "count": float(len(values)),
            "sum": sum(values),
            "avg": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }[function]
        assert answer.estimate(function) == pytest.approx(expected)

    @pytest.mark.parametrize("function", ["count", "sum", "avg", "min", "max"])
    def test_cache_served_query_matches_brute_force(self, setup, function):
        registry, tree, value_fn = setup
        values = brute_force(registry, value_fn, REGION)
        tree.query(REGION, now=0.0, max_staleness=600.0)
        answer = tree.query(REGION, now=5.0, max_staleness=600.0)
        assert answer.stats.sensors_probed == 0  # fully cache-served
        expected = {
            "count": float(len(values)),
            "sum": sum(values),
            "avg": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
        }[function]
        assert answer.estimate(function) == pytest.approx(expected)

    def test_min_max_survive_updates(self, setup):
        """Values change across probes: cached extremes must track."""
        registry, tree, _ = setup

        # Rebuild with a time-varying value function.
        def varying(sensor, now):
            return float((sensor.sensor_id * 37) % 101) - 50.0 + now / 10.0

        network = SensorNetwork(registry.all(), value_fn=varying, seed=2)
        tree = COLRTree(
            registry.all(),
            COLRTreeConfig(
                max_expiry_seconds=600.0, slot_seconds=120.0, sampling_enabled=False
            ),
            network=network,
        )
        tree.query(REGION, now=0.0, max_staleness=600.0)
        # Force re-probes with a tight staleness bound: values shift.
        answer = tree.query(REGION, now=100.0, max_staleness=10.0)
        values = [
            varying(s, 100.0)
            for s in registry.all()
            if REGION.contains_point(s.location)
        ]
        assert answer.estimate("max") == pytest.approx(max(values))
        assert answer.estimate("min") == pytest.approx(min(values))

    def test_sampled_average_approximates(self, setup):
        """A sampled answer's average should land near the exact one
        (smoothness is not assumed here, so allow a loose band)."""
        registry, tree, value_fn = setup
        values = brute_force(registry, value_fn, REGION)
        exact_avg = sum(values) / len(values)
        from dataclasses import replace

        sampled_tree = COLRTree(
            registry.all(),
            replace(tree.config, sampling_enabled=True),
            network=SensorNetwork(registry.all(), value_fn=value_fn, seed=3),
        )
        estimates = []
        for trial in range(10):
            answer = sampled_tree.query(
                REGION, now=float(trial) * 10_000, max_staleness=600.0, sample_size=60
            )
            estimates.append(answer.estimate("avg"))
        spread = float(np.std(values)) / np.sqrt(60)
        assert abs(float(np.mean(estimates)) - exact_avg) <= 4 * spread
