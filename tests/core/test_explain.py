"""EXPLAIN: plan inspection without execution."""

import pytest

from repro import COLRTreeConfig, Rect

from tests.conftest import make_registry, make_tree


@pytest.fixture
def tree():
    return make_tree(make_registry(n=500, seed=60))


REGION = Rect(10, 10, 80, 80)


class TestExplainBasics:
    def test_no_side_effects(self, tree):
        plan = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=30)
        assert plan.expected_probes > 0
        assert tree.network.stats.probes_attempted == 0
        assert tree.cached_reading_count == 0

    def test_deterministic(self, tree):
        a = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=30)
        b = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=30)
        assert a.expected_probes == b.expected_probes
        assert len(a.terminals) == len(b.terminals)

    def test_access_path_selection(self, tree):
        sampled = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=30)
        exact = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=0)
        assert sampled.access_path == "layered_sampling"
        assert exact.access_path == "range_lookup"

    def test_relevant_sensors_exact(self, tree):
        plan = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=0)
        # Count by brute force.
        expected = sum(
            1
            for sid in range(len(tree))
            if REGION.contains_point(tree.sensor(sid).location)
        )
        assert plan.relevant_sensors == expected

    def test_negative_staleness_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.explain(REGION, now=0.0, max_staleness=-1.0)

    def test_format_readable(self, tree):
        text = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=30).format()
        assert "access path" in text
        assert "expected probes" in text


class TestExplainPredictions:
    def test_cold_exact_plan_predicts_full_probe(self, tree):
        plan = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=0)
        assert plan.expected_probes == plan.relevant_sensors
        assert plan.cache_coverage == 0.0
        answer = tree.query(REGION, now=0.0, max_staleness=600.0, sample_size=0)
        assert answer.stats.sensors_probed == plan.expected_probes

    def test_warm_exact_plan_sees_cache(self, tree):
        tree.query(REGION, now=0.0, max_staleness=600.0, sample_size=0)
        plan = tree.explain(REGION, now=1.0, max_staleness=600.0, sample_size=0)
        assert plan.cache_coverage == 1.0
        assert plan.expected_probes == 0.0

    def test_sampled_plan_close_to_execution(self, tree):
        plan = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=30)
        answer = tree.query(REGION, now=0.0, max_staleness=600.0, sample_size=30)
        # The plan is an expectation; the execution is one draw.
        assert plan.expected_probes == pytest.approx(
            answer.stats.sensors_probed, rel=0.5, abs=10
        )

    def test_warm_sampled_plan_drops_probes(self, tree):
        cold = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=30)
        tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=0)
        warm = tree.explain(REGION, now=1.0, max_staleness=600.0, sample_size=30)
        assert warm.expected_probes < cold.expected_probes
        assert warm.cached_weight > 0

    def test_empty_region_plan(self, tree):
        plan = tree.explain(
            Rect(500, 500, 600, 600), now=0.0, max_staleness=600.0, sample_size=30
        )
        assert plan.relevant_sensors == 0
        assert plan.expected_probes == 0.0
        assert plan.cache_coverage == 1.0

    def test_plain_rtree_mode_plan(self):
        registry = make_registry(n=200, seed=61)
        tree = make_tree(registry, COLRTreeConfig().as_plain_rtree())
        plan = tree.explain(REGION, now=0.0, max_staleness=600.0, sample_size=30)
        assert plan.access_path == "range_lookup"
        assert plan.expected_probes == plan.relevant_sensors
