"""Failure injection and hostile-edge behaviour of the whole stack."""

import numpy as np
import pytest

from repro import (
    AvailabilityModel,
    COLRTree,
    COLRTreeConfig,
    GeoPoint,
    Rect,
    SensorNetwork,
    SensorRegistry,
)

from tests.conftest import make_registry, make_tree


class TestDeadFleet:
    """Every sensor is unavailable: queries degrade, never crash."""

    @pytest.fixture
    def dead_tree(self):
        registry = make_registry(n=200, availability=0.0, seed=30)
        return make_tree(registry, network_seed=30)

    def test_sampled_query_returns_empty(self, dead_tree):
        answer = dead_tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=30
        )
        assert answer.probed_count == 0
        assert answer.result_weight == 0

    def test_probe_attempts_bounded_despite_oversampling(self, dead_tree):
        """1/a oversampling with a → 0 must not explode: attempts are
        bounded by the population."""
        for t in range(5):
            answer = dead_tree.query(
                Rect(0, 0, 100, 100), now=float(t), max_staleness=600.0, sample_size=30
            )
            assert answer.stats.sensors_probed <= 200

    def test_exact_query_probes_everything_once(self, dead_tree):
        answer = dead_tree.query(
            Rect(0, 0, 100, 100), now=10.0, max_staleness=600.0, sample_size=0
        )
        assert answer.stats.sensors_probed == 200
        assert answer.result_weight == 0

    def test_aggregate_on_empty_answer_raises_cleanly(self, dead_tree):
        answer = dead_tree.query(
            Rect(0, 0, 100, 100), now=20.0, max_staleness=600.0, sample_size=10
        )
        with pytest.raises(ValueError):
            answer.estimate("avg")


class TestDegenerateGeometry:
    def test_zero_area_query_region(self):
        registry = make_registry(n=100, seed=31)
        tree = make_tree(registry)
        sensor = registry.all()[0]
        point_rect = Rect(
            sensor.location.x, sensor.location.y, sensor.location.x, sensor.location.y
        )
        answer = tree.query(point_rect, now=0.0, max_staleness=600.0, sample_size=0)
        assert answer.result_weight >= 1

    def test_all_coincident_sensors(self):
        registry = SensorRegistry()
        for _ in range(50):
            registry.register(GeoPoint(5.0, 5.0), expiry_seconds=300.0)
        network = SensorNetwork(registry.all(), seed=1)
        tree = COLRTree(registry.all(), COLRTreeConfig(), network=network)
        answer = tree.query(Rect(0, 0, 10, 10), now=0.0, max_staleness=600.0, sample_size=10)
        assert answer.probed_count > 0

    def test_single_sensor_population(self):
        registry = SensorRegistry()
        registry.register(GeoPoint(1.0, 2.0), expiry_seconds=300.0)
        network = SensorNetwork(registry.all(), seed=1)
        tree = COLRTree(registry.all(), COLRTreeConfig(), network=network)
        answer = tree.query(Rect(0, 0, 5, 5), now=0.0, max_staleness=600.0, sample_size=5)
        assert answer.probed_count == 1

    def test_query_far_outside_domain(self):
        tree = make_tree(make_registry(n=100, seed=32))
        answer = tree.query(
            Rect(1000, 1000, 2000, 2000), now=0.0, max_staleness=600.0, sample_size=10
        )
        assert answer.result_weight == 0
        assert answer.stats.sensors_probed == 0


class TestHostileParameters:
    def test_zero_staleness_never_uses_cache(self):
        tree = make_tree(make_registry(n=200, seed=33))
        region = Rect(0, 0, 100, 100)
        tree.query(region, now=0.0, max_staleness=600.0, sample_size=0)
        answer = tree.query(region, now=1.0, max_staleness=0.0, sample_size=0)
        # Nothing cached at t=0 is fresh within a 0-second bound at t=1.
        assert len(answer.cached_readings) == 0
        assert answer.stats.sensors_probed > 0

    def test_sample_size_exceeding_population(self):
        registry = make_registry(n=50, seed=34)
        tree = make_tree(registry)
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=10_000
        )
        assert answer.probed_count == 50

    def test_zero_cache_capacity(self):
        registry = make_registry(n=100, seed=35)
        tree = make_tree(registry, COLRTreeConfig(cache_capacity=0))
        region = Rect(0, 0, 100, 100)
        a1 = tree.query(region, now=0.0, max_staleness=600.0, sample_size=0)
        assert tree.cached_reading_count == 0
        a2 = tree.query(region, now=1.0, max_staleness=600.0, sample_size=0)
        # No cache: both queries probe everything.
        assert a2.stats.sensors_probed == a1.stats.sensors_probed

    def test_probe_unknown_sensor_raises(self):
        registry = make_registry(n=10, seed=36)
        network = SensorNetwork(registry.all(), seed=1)
        with pytest.raises(KeyError):
            network.probe([999], now=0.0)


class TestRebalanceFaults:
    """Hostile edges of live migration on an in-memory federation: a
    down shard aborts before mutation, and a mid-step coordinator
    failure leaves the un-flipped membership fully consistent."""

    def _fed(self, n=120, n_shards=3, seed=40):
        from repro.federation import FederatedPortal

        rng = np.random.default_rng(seed)
        fed = FederatedPortal(n_shards=n_shards, max_sensors_per_query=None)
        for _ in range(n):
            fed.register_sensor(
                GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
                expiry_seconds=600.0,
                availability=1.0,
            )
        fed.rebuild_index()
        return fed

    def test_migration_to_down_shard_aborts_cleanly(self):
        from repro.rebalance import MigrationAborted, Rebalancer, ShardMover

        fed = self._fed()
        fed.kill_shard(1)
        mover = ShardMover(fed)
        movers = [s.sensor_id for s in fed.shard_members(0)[:5]]
        version = fed.directory.version
        with pytest.raises(MigrationAborted):
            mover.move(movers, src=0, dst=1)
        with pytest.raises(MigrationAborted):
            mover.move(
                [s.sensor_id for s in fed.shard_members(1)[:5]], src=1, dst=0
            )
        assert fed.directory.version == version
        fed.revive_shard(1)
        Rebalancer(fed).verify_invariants()

    def test_policy_routes_around_a_dead_shard(self):
        from repro.portal import SensorQuery
        from repro.rebalance import Rebalancer

        fed = self._fed()
        # Skew the alive fleet, then take shard 2 down: the policy must
        # rebalance between the alive shards only, leaving the dead
        # shard's membership untouched, while queries degrade to
        # partial instead of crashing.
        rebalancer = Rebalancer(fed)
        rebalancer.mover.move(
            [s.sensor_id for s in fed.shard_members(0)[:30]], src=0, dst=1
        )
        fed.kill_shard(2)
        dead_members = sorted(s.sensor_id for s in fed.shard_members(2))
        reports = rebalancer.run(max_steps=4)
        assert all(r.op not in ("aborted",) for r in reports)
        assert sorted(s.sensor_id for s in fed.shard_members(2)) == dead_members
        result = fed.execute(
            SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=600.0)
        )
        assert result.partial and 2 in result.failed_shards
        fed.revive_shard(2)

    def test_shard_dying_mid_step_surfaces_as_aborted_report(self):
        from repro.rebalance import MigrationAborted, Rebalancer

        fed = self._fed()
        rebalancer = Rebalancer(fed)
        # Skew so the policy plans a move, then inject the race where
        # the shard dies between planning and capture: the step reports
        # "aborted" instead of raising, and nothing is mutated.
        rebalancer.mover.move(
            [s.sensor_id for s in fed.shard_members(0)[:30]], src=0, dst=1
        )

        def die(point: str) -> None:
            if point == "captured":
                raise MigrationAborted("shard lost mid-step")

        rebalancer.mover.failpoint = die
        version = fed.directory.version
        reports = rebalancer.run(max_steps=4)
        assert [r.op for r in reports] == ["aborted"]
        assert fed.directory.version == version
        rebalancer.verify_invariants()

    def test_mid_step_failure_leaves_old_membership_consistent(self):
        from repro.portal import SensorQuery
        from repro.rebalance import Rebalancer, ShardMover

        class _Boom(RuntimeError):
            pass

        fed = self._fed()
        before = {
            sid: sorted(s.sensor_id for s in fed.shard_members(sid))
            for sid in range(3)
        }

        def crash(point: str) -> None:
            if point == "prepared":
                raise _Boom

        mover = ShardMover(fed, failpoint=crash)
        movers = [s.sensor_id for s in fed.shard_members(0)[:8]]
        with pytest.raises(_Boom):
            mover.move(movers, src=0, dst=1)
        after = {
            sid: sorted(s.sensor_id for s in fed.shard_members(sid))
            for sid in range(3)
        }
        assert after == before
        result = fed.execute(
            SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=600.0)
        )
        assert result.result_weight == len(fed.registry)
        Rebalancer(fed).verify_invariants()


class TestPartialFleetFailure:
    def test_mixed_availability_fleet(self):
        """Half the fleet is dead; oversampling should still deliver a
        reasonable fraction of the target from the living half."""
        rng = np.random.default_rng(37)
        registry = SensorRegistry()
        for i in range(400):
            registry.register(
                GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
                expiry_seconds=300.0,
                availability=0.0 if i % 2 == 0 else 1.0,
            )
        model = AvailabilityModel()
        network = SensorNetwork(registry.all(), availability_model=model, seed=2)
        tree = COLRTree(
            registry.all(),
            COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
            network=network,
            availability_model=model,
        )
        # Warm availability history.
        for t in range(4):
            tree.query(
                Rect(0, 0, 100, 100), now=float(t), max_staleness=0.5, sample_size=150
            )
        answer = tree.query(
            Rect(0, 0, 100, 100), now=10.0, max_staleness=0.5, sample_size=40
        )
        assert answer.probed_count >= 20
