import numpy as np
import pytest

from repro import GeoPoint
from repro.models import IDWModel, KNNModel


def ramp_samples(n=50, seed=0):
    """Samples from the plane f(x, y) = 2x + 3y."""
    rng = np.random.default_rng(seed)
    pts = [GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10))) for _ in range(n)]
    vals = [2 * p.x + 3 * p.y for p in pts]
    return pts, vals


class TestIDW:
    def test_requires_fit(self):
        with pytest.raises(ValueError):
            IDWModel().predict(GeoPoint(0, 0))

    def test_snap_to_exact_sample(self):
        model = IDWModel()
        model.fit([GeoPoint(1, 1), GeoPoint(5, 5)], [10.0, 50.0])
        assert model.predict(GeoPoint(1, 1)) == 10.0

    def test_interpolates_between_samples(self):
        model = IDWModel()
        model.fit([GeoPoint(0, 0), GeoPoint(10, 0)], [0.0, 100.0])
        mid = model.predict(GeoPoint(5, 0))
        assert mid == pytest.approx(50.0)

    def test_closer_sample_dominates(self):
        model = IDWModel()
        model.fit([GeoPoint(0, 0), GeoPoint(10, 0)], [0.0, 100.0])
        assert model.predict(GeoPoint(1, 0)) < 30.0

    def test_smooth_field_recovered(self):
        pts, vals = ramp_samples(200)
        model = IDWModel()
        model.fit(pts, vals)
        rng = np.random.default_rng(1)
        errs = []
        for _ in range(50):
            q = GeoPoint(float(rng.uniform(1, 9)), float(rng.uniform(1, 9)))
            truth = 2 * q.x + 3 * q.y
            errs.append(abs(model.predict(q) - truth))
        assert np.mean(errs) < 3.0

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            IDWModel(power=0)

    def test_mismatched_fit_rejected(self):
        with pytest.raises(ValueError):
            IDWModel().fit([GeoPoint(0, 0)], [1.0, 2.0])

    def test_support_counts_samples(self):
        model = IDWModel()
        model.fit(*ramp_samples(7))
        assert model.support == 7


class TestKNN:
    def test_k_one_is_nearest_sample(self):
        model = KNNModel(k=1)
        model.fit([GeoPoint(0, 0), GeoPoint(10, 10)], [1.0, 9.0])
        assert model.predict(GeoPoint(1, 1)) == 1.0

    def test_k_larger_than_support_averages_all(self):
        model = KNNModel(k=10)
        model.fit([GeoPoint(0, 0), GeoPoint(10, 10)], [1.0, 9.0])
        assert model.predict(GeoPoint(5, 5)) == pytest.approx(5.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNModel(k=0)

    def test_prediction_bounded_by_sample_range(self):
        pts, vals = ramp_samples(100)
        model = KNNModel(k=5)
        model.fit(pts, vals)
        q = model.predict(GeoPoint(5, 5))
        assert min(vals) <= q <= max(vals)
