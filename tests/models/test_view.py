import numpy as np
import pytest

from repro import (
    AvailabilityModel,
    COLRTree,
    COLRTreeConfig,
    GeoPoint,
    Rect,
    SensorNetwork,
    SensorRegistry,
    SpatialField,
)
from repro.models import InsufficientSupport, KNNModel, ModelView


@pytest.fixture
def field_setup():
    """A smooth field sensed by 400 sensors; tree + view over it."""
    domain = Rect(0, 0, 100, 100)
    field = SpatialField(domain, n_bumps=6, noise_sigma=0.5, seed=5)
    rng = np.random.default_rng(5)
    registry = SensorRegistry()
    for _ in range(400):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=600.0,
        )
    network = SensorNetwork(
        registry.all(),
        value_fn=lambda s, t: field.sample(s.location, t),
        availability_model=AvailabilityModel(),
        seed=6,
    )
    tree = COLRTree(
        registry.all(),
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        network=network,
    )
    return field, tree


class TestModelView:
    def test_requires_caching_tree(self, field_setup):
        field, tree = field_setup
        from repro import COLRTreeConfig as Cfg

        plain = COLRTree(
            [tree.sensor(s) for s in range(10)], Cfg(caching_enabled=False, sampling_enabled=False)
        )
        with pytest.raises(ValueError):
            ModelView(plain)

    def test_estimate_uses_zero_probes(self, field_setup):
        field, tree = field_setup
        tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=0)
        probes_before = tree.network.stats.probes_attempted
        view = ModelView(tree)
        view.estimate_at(GeoPoint(50, 50), now=1.0, max_staleness=600.0)
        assert tree.network.stats.probes_attempted == probes_before

    def test_estimate_close_to_field(self, field_setup):
        field, tree = field_setup
        tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=0)
        view = ModelView(tree)
        rng = np.random.default_rng(2)
        errs = []
        for _ in range(30):
            p = GeoPoint(float(rng.uniform(10, 90)), float(rng.uniform(10, 90)))
            estimate = view.estimate_at(p, now=1.0, max_staleness=600.0)
            truth = field.mean_value(p, 1.0)
            errs.append(abs(estimate - truth) / abs(truth))
        assert float(np.mean(errs)) < 0.10

    def test_insufficient_support_raises(self, field_setup):
        _, tree = field_setup
        view = ModelView(tree)  # cache is cold
        with pytest.raises(InsufficientSupport):
            view.estimate_at(GeoPoint(50, 50), now=0.0, max_staleness=600.0)

    def test_probe_fallback_fills_cache(self, field_setup):
        _, tree = field_setup
        view = ModelView(tree, fallback="probe", fallback_sample_size=50)
        value = view.estimate_at(GeoPoint(50, 50), now=0.0, max_staleness=600.0)
        assert np.isfinite(value)
        assert tree.network.stats.probes_attempted > 0

    def test_region_mean_close_to_field(self, field_setup):
        field, tree = field_setup
        tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=0)
        view = ModelView(tree)
        region = Rect(20, 20, 60, 60)
        estimate = view.estimate_region_mean(region, now=1.0, max_staleness=600.0, grid=6)
        # Truth: average of the field over the same lattice.
        truth = 0.0
        for i in range(6):
            for j in range(6):
                x = region.min_x + (i + 0.5) * region.width / 6
                y = region.min_y + (j + 0.5) * region.height / 6
                truth += field.mean_value(GeoPoint(x, y), 1.0)
        truth /= 36
        assert estimate == pytest.approx(truth, rel=0.15)

    def test_staleness_respected(self, field_setup):
        _, tree = field_setup
        tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=0)
        view = ModelView(tree)
        # 500s later with a 60s bound, the cached readings are stale.
        with pytest.raises(InsufficientSupport):
            view.estimate_at(GeoPoint(50, 50), now=500.0, max_staleness=60.0)

    def test_custom_model(self, field_setup):
        field, tree = field_setup
        tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=0)
        view = ModelView(tree, model=KNNModel(k=3))
        p = GeoPoint(40, 60)
        estimate = view.estimate_at(p, now=1.0, max_staleness=600.0)
        assert estimate == pytest.approx(field.mean_value(p, 1.0), rel=0.25)

    def test_invalid_parameters(self, field_setup):
        _, tree = field_setup
        with pytest.raises(ValueError):
            ModelView(tree, fallback="panic")
        with pytest.raises(ValueError):
            ModelView(tree, min_support=0)
        view = ModelView(tree)
        with pytest.raises(ValueError):
            view.estimate_region_mean(Rect(0, 0, 1, 1), now=0.0, max_staleness=1.0, grid=0)
