import math

import pytest

from repro.geometry import GeoPoint, haversine_miles, planar_distance
from repro.geometry.point import miles_to_degrees_lat, miles_to_degrees_lon


class TestGeoPoint:
    def test_lat_lon_aliases(self):
        p = GeoPoint(x=-122.33, y=47.61)
        assert p.lon == -122.33
        assert p.lat == 47.61

    def test_planar_distance(self):
        assert GeoPoint(0, 0).planar_distance(GeoPoint(3, 4)) == 5.0

    def test_planar_distance_symmetric(self):
        a, b = GeoPoint(1.5, -2.0), GeoPoint(-3.0, 7.0)
        assert a.planar_distance(b) == b.planar_distance(a)
        assert planar_distance(a, b) == a.planar_distance(b)

    def test_as_tuple(self):
        assert GeoPoint(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_immutability(self):
        p = GeoPoint(0, 0)
        with pytest.raises(AttributeError):
            p.x = 5.0


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_miles(47.6, -122.3, 47.6, -122.3) == 0.0

    def test_seattle_to_portland(self):
        # Roughly 145 miles great-circle.
        d = haversine_miles(47.6062, -122.3321, 45.5152, -122.6784)
        assert 140 <= d <= 150

    def test_one_degree_latitude(self):
        d = haversine_miles(0.0, 0.0, 1.0, 0.0)
        assert 68 <= d <= 70

    def test_symmetry(self):
        d1 = haversine_miles(10, 20, 30, 40)
        d2 = haversine_miles(30, 40, 10, 20)
        assert d1 == pytest.approx(d2)

    def test_point_method_matches_function(self):
        a = GeoPoint(-122.3321, 47.6062)
        b = GeoPoint(-122.6784, 45.5152)
        assert a.haversine_miles(b) == pytest.approx(
            haversine_miles(47.6062, -122.3321, 45.5152, -122.6784)
        )


class TestMileDegreeConversions:
    def test_latitude_inverse(self):
        assert miles_to_degrees_lat(69.0) == pytest.approx(1.0)

    def test_longitude_shrinks_with_latitude(self):
        at_equator = miles_to_degrees_lon(69.0, 0.0)
        at_60 = miles_to_degrees_lon(69.0, 60.0)
        assert at_equator == pytest.approx(1.0)
        assert at_60 == pytest.approx(2.0, rel=0.01)

    def test_longitude_clamped_near_pole(self):
        assert math.isfinite(miles_to_degrees_lon(100.0, 89.9))
