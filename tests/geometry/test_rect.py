import pytest

from repro.geometry import GeoPoint, Rect


class TestConstruction:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_from_points(self):
        r = Rect.from_points([GeoPoint(1, 5), GeoPoint(-2, 3), GeoPoint(0, 9)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (-2, 3, 1, 9)

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_from_center(self):
        r = Rect.from_center(GeoPoint(5, 5), 2, 3)
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (3, 2, 7, 8)

    def test_from_center_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Rect.from_center(GeoPoint(0, 0), -1, 1)

    def test_union_of(self):
        r = Rect.union_of([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (0, -1, 3, 1)

    def test_union_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.union_of([])


class TestMeasures:
    def test_area_and_dims(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4 and r.height == 2 and r.area == 8

    def test_degenerate_area(self):
        assert Rect(1, 1, 1, 5).area == 0.0

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == GeoPoint(2, 1)

    def test_perimeter(self):
        assert Rect(0, 0, 3, 2).perimeter() == 10


class TestRelations:
    def test_contains_point_boundary_closed(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(GeoPoint(0, 0))
        assert r.contains_point(GeoPoint(1, 1))
        assert not r.contains_point(GeoPoint(1.0001, 0.5))

    def test_contains_rect(self):
        outer, inner = Rect(0, 0, 10, 10), Rect(2, 2, 5, 5)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))
        assert Rect(0, 0, 1, 1).intersects_rect(Rect(1, 1, 2, 2))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_shape(self):
        inter = Rect(0, 0, 4, 4).intersection(Rect(2, 2, 6, 6))
        assert inter == Rect(2, 2, 4, 4)

    def test_distance_to_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.distance_to_point(GeoPoint(0.5, 0.5)) == 0.0
        assert r.distance_to_point(GeoPoint(4, 5)) == 5.0


class TestOverlapFraction:
    def test_fully_inside_is_one(self):
        assert Rect(2, 2, 3, 3).overlap_fraction(Rect(0, 0, 10, 10)) == 1.0

    def test_disjoint_is_zero(self):
        assert Rect(0, 0, 1, 1).overlap_fraction(Rect(5, 5, 6, 6)) == 0.0

    def test_half_overlap(self):
        assert Rect(0, 0, 2, 2).overlap_fraction(Rect(1, 0, 4, 2)) == pytest.approx(0.5)

    def test_degenerate_rect_uses_center(self):
        point_rect = Rect(1, 1, 1, 1)
        assert point_rect.overlap_fraction(Rect(0, 0, 2, 2)) == 1.0
        assert point_rect.overlap_fraction(Rect(5, 5, 6, 6)) == 0.0


class TestExpanded:
    def test_grow(self):
        assert Rect(0, 0, 1, 1).expanded(1) == Rect(-1, -1, 2, 2)

    def test_shrink_too_much_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).expanded(-1)
