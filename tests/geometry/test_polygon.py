import pytest

from repro.geometry import GeoPoint, Polygon, Rect


def square(size: float = 10.0) -> Polygon:
    return Polygon(
        [GeoPoint(0, 0), GeoPoint(size, 0), GeoPoint(size, size), GeoPoint(0, size)]
    )


def l_shape() -> Polygon:
    """A concave L: the unit square [0,10]^2 minus the [5,10]x[5,10] corner."""
    return Polygon(
        [
            GeoPoint(0, 0),
            GeoPoint(10, 0),
            GeoPoint(10, 5),
            GeoPoint(5, 5),
            GeoPoint(5, 10),
            GeoPoint(0, 10),
        ]
    )


class TestConstruction:
    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            Polygon([GeoPoint(0, 0), GeoPoint(1, 1)])

    def test_closed_ring_deduplicated(self):
        p = Polygon([GeoPoint(0, 0), GeoPoint(1, 0), GeoPoint(0, 1), GeoPoint(0, 0)])
        assert len(p.vertices) == 3

    def test_from_rect(self):
        p = Polygon.from_rect(Rect(0, 0, 2, 3))
        assert p.area == pytest.approx(6.0)

    def test_from_latlon_pairs_order(self):
        # (lat, lon) pairs must map to (x=lon, y=lat).
        p = Polygon.from_latlon_pairs([(47, -122), (47, -121), (48, -121), (48, -122)])
        assert p.bounding_box == Rect(-122, 47, -121, 48)


class TestArea:
    def test_square_area(self):
        assert square(10).area == pytest.approx(100.0)

    def test_l_shape_area(self):
        assert l_shape().area == pytest.approx(75.0)

    def test_winding_order_irrelevant(self):
        cw = Polygon([GeoPoint(0, 0), GeoPoint(0, 1), GeoPoint(1, 1), GeoPoint(1, 0)])
        assert cw.area == pytest.approx(1.0)


class TestContainsPoint:
    def test_interior(self):
        assert square().contains_point(GeoPoint(5, 5))

    def test_exterior(self):
        assert not square().contains_point(GeoPoint(11, 5))

    def test_boundary_counts_inside(self):
        assert square().contains_point(GeoPoint(0, 5))
        assert square().contains_point(GeoPoint(10, 10))

    def test_concave_notch_excluded(self):
        assert not l_shape().contains_point(GeoPoint(7.5, 7.5))
        assert l_shape().contains_point(GeoPoint(2.5, 7.5))


class TestRectRelations:
    def test_intersects_overlapping(self):
        assert square().intersects_rect(Rect(5, 5, 15, 15))

    def test_intersects_disjoint(self):
        assert not square().intersects_rect(Rect(20, 20, 30, 30))

    def test_rect_fully_inside_polygon(self):
        assert square().intersects_rect(Rect(2, 2, 3, 3))
        assert square().contains_rect(Rect(2, 2, 3, 3))

    def test_polygon_fully_inside_rect(self):
        assert square().intersects_rect(Rect(-5, -5, 20, 20))
        assert not square().contains_rect(Rect(-5, -5, 20, 20))

    def test_edge_crossing_without_contained_corners(self):
        # A tall thin rect crossing the square horizontally: no vertex of
        # either shape is inside the other.
        tall = Rect(4, -5, 6, 15)
        assert square().intersects_rect(tall)
        assert not square().contains_rect(tall)

    def test_concave_containment(self):
        assert not l_shape().contains_rect(Rect(4, 4, 8, 8))
        assert l_shape().contains_rect(Rect(1, 1, 4, 4))

    def test_region_protocol_parity_with_rect(self):
        """Polygon.from_rect must agree with the Rect region protocol."""
        r = Rect(2, 2, 8, 8)
        p = Polygon.from_rect(r)
        for probe in [Rect(3, 3, 4, 4), Rect(0, 0, 2.5, 2.5), Rect(9, 9, 11, 11)]:
            assert p.intersects_rect(probe) == r.intersects_rect(probe)
            assert p.contains_rect(probe) == r.contains_rect(probe)
