"""Sliding analytic windows: reuse accounting, revalidation, temporal ring."""

import pytest

from repro.geoblocks.planner import cell_of_point, cell_rect, cells_covering
from repro.geoblocks.windows import SlidingWindow
from repro.geometry import Rect
from repro.portal.continuous import ContinuousQueryManager
from repro.sensors.sensor import Reading

from tests.geoblocks.conftest import (
    CELL_DEGREES,
    exact_query,
    make_portal,
    sensor_ids,
    triangle,
)

STALENESS = 120.0
# A 3x3-cell viewport, aligned to the 1-degree grid.
VIEW = Rect(2.0, 2.0, 5.0, 5.0)


def readings_of(result) -> list[Reading]:
    return [
        r
        for a in result.answers
        for r in list(a.probed_readings) + list(a.cached_readings)
    ]


def window(portal, **kwargs) -> SlidingWindow:
    kwargs.setdefault("staleness_seconds", STALENESS)
    return SlidingWindow(portal, **kwargs)


class TestReuse:
    def test_first_step_captures_everything(self):
        w = window(make_portal(seed=3))
        r = w.step(VIEW)
        assert r.cells_total == 9
        assert r.cells_refreshed == 9
        assert r.cells_reused == 0

    def test_static_viewport_reuses_every_cell(self):
        portal = make_portal(seed=3)
        w = window(portal)
        r0 = w.step(VIEW)
        r1 = w.step(VIEW)
        assert r1.cells_reused == 9
        assert r1.cells_refreshed == 0
        assert sensor_ids(r1) == sensor_ids(r0)
        assert r1.answers[0].stats.window_cells_reused == 9
        assert portal.network.stats.window_cells_reused == 9

    def test_pan_recomputes_only_the_symmetric_difference(self):
        portal = make_portal(seed=3)
        w = window(portal)
        w.step(VIEW)
        r = w.step(Rect(3.0, 2.0, 6.0, 5.0))  # one cell east
        assert r.cells_total == 9
        assert r.cells_reused == 6
        assert r.cells_refreshed == 3

    def test_departed_cells_are_dropped(self):
        portal = make_portal(seed=3)
        w = window(portal)
        w.step(VIEW)
        w.step(Rect(3.0, 2.0, 6.0, 5.0))
        # Panning back must recapture the left strip: its snapshots are
        # gone (window memory is bounded by the current cover).
        r = w.step(VIEW)
        assert r.cells_reused == 6
        assert r.cells_refreshed == 3

    def test_window_matches_exact_query_over_the_cover(self):
        # Cells partition sensors (half-open ownership), so an aligned
        # viewport's window answer equals the exact rectangle query.
        portal, exact = make_portal(seed=5), make_portal(seed=5)
        r = window(portal).step(VIEW)
        ids = [x.sensor_id for x in readings_of(r)]
        assert len(ids) == len(set(ids))
        assert set(ids) == sensor_ids(exact.execute(exact_query(VIEW)))


class TestRevalidation:
    def test_write_refreshes_only_the_touched_cell(self):
        portal = make_portal(seed=4)
        w = window(portal)
        r0 = w.step(VIEW)
        target = readings_of(r0)[0].sensor_id
        cell = cell_of_point(portal.registry.get(target).location, CELL_DEGREES)
        now = portal.clock.now()
        portal._trees["generic"].insert_readings_batch(
            [Reading(target, 555.0, now + 1.0, now + 600.0)],
            fetched_at=now + 1.0,
        )
        r1 = w.step(VIEW)
        assert r1.cells_refreshed == 1
        assert r1.cells_reused == 8
        refreshed = {
            x.sensor_id: x.value for x in readings_of(r1)
        }
        assert refreshed[target] == 555.0
        assert cell in cells_covering(VIEW, CELL_DEGREES)

    def test_staleness_expiry_refreshes_everything(self):
        portal = make_portal(seed=4)
        grid = portal.geoblocks()
        # Unpopulated cells revalidate trivially (there is nothing to go
        # stale); every populated cell must recapture.
        empty = sum(
            1
            for cell in cells_covering(VIEW, CELL_DEGREES)
            if grid.cell_state("generic", cell) is None
        )
        assert empty < 9
        w = window(portal)
        w.step(VIEW)
        portal.clock.advance(STALENESS + 1.0)
        r = w.step(VIEW)
        assert r.cells_reused == empty
        assert r.cells_refreshed == 9 - empty

    @pytest.mark.slow  # re-registers mid-test: full index rebuild
    def test_index_rebuild_invalidates_snapshots(self):
        portal = make_portal(seed=4)
        w = window(portal)
        w.step(VIEW)
        from repro.geometry import GeoPoint

        portal.register_sensor(GeoPoint(0.1, 0.1), expiry_seconds=600.0)
        r = w.step(VIEW)
        assert r.cells_reused == 0
        assert r.cells_refreshed == 9


class TestTemporalRing:
    def test_aggregate_over_last_k_steps(self):
        portal = make_portal(seed=6)
        w = window(portal, temporal_steps=2, aggregate="avg")
        r0 = w.step(VIEW)
        v0 = [x.value for x in readings_of(r0)]
        assert r0.window_aggregate == pytest.approx(sum(v0) / len(v0))
        # Change one sensor's value so the next step's sketch differs.
        target = readings_of(r0)[0].sensor_id
        now = portal.clock.now()
        portal._trees["generic"].insert_readings_batch(
            [Reading(target, 555.0, now + 1.0, now + 600.0)],
            fetched_at=now + 1.0,
        )
        r1 = w.step(VIEW)
        v1 = [x.value for x in readings_of(r1)]
        both = v0 + v1
        assert r1.window_aggregate == pytest.approx(sum(both) / len(both))
        # A third step evicts step 0 from the ring (maxlen = 2).
        r2 = w.step(VIEW)
        v2 = [x.value for x in readings_of(r2)]
        last_two = v1 + v2
        assert r2.window_aggregate == pytest.approx(
            sum(last_two) / len(last_two)
        )

    def test_empty_viewport_has_no_aggregate(self):
        portal = make_portal(n=20, seed=6)
        w = window(portal)
        r = w.step(Rect(500.0, 500.0, 502.0, 502.0))
        assert r.window_aggregate is None
        assert r.cells_total == 4

    def test_temporal_steps_must_be_positive(self):
        portal = make_portal(n=20, seed=6)
        with pytest.raises(ValueError):
            SlidingWindow(portal, staleness_seconds=STALENESS, temporal_steps=0)


class TestPolygonViewport:
    def test_cover_is_the_intersecting_cells(self):
        portal = make_portal(seed=5)
        poly = triangle()
        expected = [
            cell
            for cell in cells_covering(poly.bounding_box, CELL_DEGREES)
            if poly.intersects_rect(cell_rect(cell, CELL_DEGREES))
        ]
        w = window(portal)
        r0 = w.step(poly)
        assert r0.cells_total == len(expected)
        r1 = w.step(poly)
        assert r1.cells_reused == len(expected)


class TestContinuousIntegration:
    def test_subscribe_window_steps_through_ticks(self):
        portal = make_portal(seed=2)
        manager = ContinuousQueryManager(portal)
        w = window(portal)

        def region_at(now: float) -> Rect:
            # Pan one cell east every refresh.
            shift = (now - start) // 30.0
            return Rect(2.0 + shift, 2.0, 5.0 + shift, 5.0)

        start = portal.clock.now()
        sub = manager.subscribe_window(w, region_at, refresh_seconds=30.0)
        ran = manager.tick()
        assert len(ran) == 1
        first_result = sub.last_result
        assert first_result.cells_refreshed == 9

        portal.clock.advance(30.0)
        ran = manager.tick()
        assert len(ran) == 1
        subscription, delta = ran[0]
        assert subscription is sub
        result = sub.last_result
        assert result.cells_total == 9
        assert result.cells_reused == 6
        assert result.cells_refreshed == 3
        # The subscription's query tracks the moving viewport.
        assert sub.query.region == Rect(3.0, 2.0, 6.0, 5.0)
        # The delta reports the strip change: sensors in the left strip
        # departed, sensors in the entered strip appeared.
        old_ids = sensor_ids(first_result)
        new_ids = sensor_ids(result)
        assert set(delta.departed) == old_ids - new_ids
        assert set(delta.appeared) == new_ids - old_ids
