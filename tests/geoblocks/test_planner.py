"""Cell arithmetic and polygon rasterization."""

import pytest

from repro.geoblocks.planner import (
    CellClipRegion,
    CellPlan,
    boundary_subregion,
    cell_of_point,
    cell_rect,
    cells_covering,
    plan_polygon,
)
from repro.geometry import GeoPoint, Polygon, Rect


def diamond() -> Polygon:
    """A diamond spanning an 8x8-cell bounding box at 1-degree cells."""
    return Polygon(
        [GeoPoint(1.0, 5.0), GeoPoint(5.0, 1.0), GeoPoint(9.0, 5.0), GeoPoint(5.0, 9.0)]
    )


class TestCellArithmetic:
    def test_ownership_is_half_open(self):
        # A point exactly on a cell boundary belongs to the upper cell.
        assert cell_of_point(GeoPoint(1.0, 2.0), 1.0) == (1, 2)
        assert cell_of_point(GeoPoint(0.999, 1.999), 1.0) == (0, 1)
        assert cell_of_point(GeoPoint(-0.5, 0.0), 1.0) == (-1, 0)
        assert cell_of_point(GeoPoint(0.75, 0.25), 0.5) == (1, 0)

    def test_cell_rect_is_the_closed_cell(self):
        assert cell_rect((1, 2), 0.5) == Rect(0.5, 1.0, 1.0, 1.5)
        assert cell_rect((-1, 0), 1.0) == Rect(-1.0, 0.0, 0.0, 1.0)

    def test_cells_covering_floor_ceil(self):
        assert sorted(cells_covering(Rect(0.2, 0.2, 1.8, 1.8), 1.0)) == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]

    def test_edge_on_boundary_does_not_drag_next_cell(self):
        # max edge landing exactly on a cell boundary adds nothing.
        assert sorted(cells_covering(Rect(0.0, 0.0, 2.0, 1.0), 1.0)) == [
            (0, 0),
            (1, 0),
        ]

    def test_degenerate_bbox_covers_one_cell(self):
        assert cells_covering(Rect(0.5, 0.5, 0.5, 0.5), 1.0) == [(0, 0)]

    def test_ownership_consistent_with_cover(self):
        # Any point's owning cell is in the cover of any rect holding it.
        p = GeoPoint(3.7, 5.2)
        rect = Rect(3.0, 5.0, 4.0, 6.0)
        assert cell_of_point(p, 1.0) in cells_covering(rect, 1.0)


class TestPlanPolygon:
    def test_classification_partitions_the_cover(self):
        polygon = diamond()
        plan = plan_polygon(polygon, 1.0, max_cells=4096)
        assert plan is not None
        interior, boundary = set(plan.interior), set(plan.boundary)
        assert not interior & boundary
        cover = set(cells_covering(polygon.bounding_box, 1.0))
        assert interior | boundary <= cover
        for cell in cover:
            rect = cell_rect(cell, 1.0)
            if polygon.contains_rect(rect):
                assert cell in interior
            elif polygon.intersects_rect(rect):
                assert cell in boundary
            else:
                assert cell not in interior and cell not in boundary

    def test_diamond_has_interior_at_one_degree(self):
        plan = plan_polygon(diamond(), 1.0, max_cells=4096)
        assert plan is not None
        assert (4, 4) in plan.interior  # the center cell
        assert len(plan.interior) > 0
        assert len(plan.boundary) > 0

    def test_cells_in_deterministic_scan_order(self):
        plan = plan_polygon(diamond(), 1.0, max_cells=4096)
        assert plan is not None
        assert list(plan.interior) == sorted(plan.interior)
        assert list(plan.boundary) == sorted(plan.boundary)

    def test_over_budget_returns_none_never_truncates(self):
        assert plan_polygon(diamond(), 1.0, max_cells=10) is None
        assert plan_polygon(diamond(), 0.1, max_cells=100) is None

    def test_boundary_fraction(self):
        plan = CellPlan(
            cell_degrees=1.0,
            interior=((0, 0),),
            boundary=((0, 1), (1, 0), (1, 1)),
        )
        assert plan.total_cells == 4
        assert plan.boundary_fraction == pytest.approx(0.75)
        assert CellPlan(1.0, (), ()).boundary_fraction == 0.0


class TestBoundarySubregion:
    def test_returns_clip_inside_the_cell(self):
        # Every boundary cell yields either a genuine clip polygon
        # (vertices confined to the cell) or the conjunction fallback
        # for corner/edge-touch cells — the diamond's 45-degree edges
        # produce both kinds.
        polygon = diamond()
        plan = plan_polygon(polygon, 1.0, max_cells=4096)
        clips = 0
        eps = 1e-9
        for cell in plan.boundary:
            sub = boundary_subregion(polygon, cell, 1.0)
            rect = cell_rect(cell, 1.0)
            if isinstance(sub, Polygon):
                clips += 1
                for v in sub.vertices:
                    assert rect.min_x - eps <= v.x <= rect.max_x + eps
                    assert rect.min_y - eps <= v.y <= rect.max_y + eps
            else:
                assert isinstance(sub, CellClipRegion)
                assert sub.rect == rect
                assert sub.polygon is polygon
        assert clips > 0

    def test_degenerate_clip_falls_back_to_conjunction(self):
        # The triangle touches cell (-1, -1) only at the corner (0, 0):
        # the clip has zero area, so the conjunction region steps in.
        triangle = Polygon(
            [GeoPoint(0.0, 0.0), GeoPoint(2.0, 0.0), GeoPoint(1.0, 2.0)]
        )
        sub = boundary_subregion(triangle, (-1, -1), 1.0)
        assert isinstance(sub, CellClipRegion)
        # The touch point is in both the cell and the closed polygon.
        assert sub.contains_point(GeoPoint(0.0, 0.0))
        # Inside the cell but outside the polygon: excluded.
        assert not sub.contains_point(GeoPoint(-0.5, -0.5))
        # Inside the polygon but outside the cell: excluded.
        assert not sub.contains_point(GeoPoint(1.0, 0.5))

    def test_conjunction_region_predicates(self):
        triangle = Polygon(
            [GeoPoint(0.0, 0.0), GeoPoint(2.0, 0.0), GeoPoint(1.0, 2.0)]
        )
        sub = CellClipRegion(polygon=triangle, rect=Rect(0.0, 0.0, 1.0, 1.0))
        # The cell rect bounds the conjunction (the tree's traversal
        # pruning requires a bounding box from every region).
        assert sub.bounding_box == Rect(0.0, 0.0, 1.0, 1.0)
        assert sub.intersects_rect(Rect(0.5, 0.1, 0.9, 0.4))
        # Intersects the cell but not the polygon: rejected.
        assert not sub.intersects_rect(Rect(-2.0, -2.0, -1.0, -1.0))
        # contains_rect needs containment in both.
        assert not sub.contains_rect(Rect(0.0, 0.0, 1.0, 1.0))
        assert sub.contains_rect(Rect(0.8, 0.1, 1.0, 0.2))
