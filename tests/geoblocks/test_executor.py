"""Polygon execution: parity, fallbacks, conservation, dedup, grid serving."""

from dataclasses import replace

from repro.geoblocks.executor import PolygonResult
from repro.geoblocks.planner import plan_polygon
from repro.geometry import Rect
from repro.portal.query import SensorQuery

from tests.geoblocks.conftest import (
    CELL_DEGREES,
    assert_identical_results,
    exact_query,
    make_portal,
    rect_as_polygon,
    sensor_ids,
    triangle,
    values_by_sensor,
)


class TestRectangleParity:
    def test_rect_region_dispatches_to_execute(self):
        a, b = make_portal(seed=7), make_portal(seed=7)
        query = exact_query(Rect(2.0, 2.0, 6.0, 6.0))
        assert_identical_results(
            a.execute(query), b.execute_polygon(query), "rect region"
        )

    def test_rect_drawn_as_polygon_is_bit_identical(self):
        a, b = make_portal(seed=7), make_portal(seed=7)
        rect = Rect(2.0, 2.0, 6.0, 6.0)
        ra = a.execute(exact_query(rect))
        rb = b.execute_polygon(exact_query(rect_as_polygon(rect)))
        assert not isinstance(rb, PolygonResult)
        # The region is normalized, so even the query field matches.
        assert rb.query == ra.query
        assert_identical_results(ra, rb, "rect-as-polygon")

    def test_warm_parity_too(self):
        a, b = make_portal(seed=8), make_portal(seed=8)
        rect = Rect(1.0, 3.0, 7.0, 8.0)
        a.execute(exact_query(rect))
        b.execute_polygon(exact_query(rect_as_polygon(rect)))
        assert_identical_results(
            a.execute(exact_query(rect)),
            b.execute_polygon(exact_query(rect_as_polygon(rect))),
            "warm",
        )


class TestFallbacks:
    def test_sampled_query_takes_the_exact_path(self):
        portal = make_portal(seed=9)
        query = SensorQuery(
            region=triangle(), staleness_seconds=120.0, sample_size=10
        )
        assert not isinstance(portal.execute_polygon(query), PolygonResult)

    def test_zoomed_query_takes_the_exact_path(self):
        portal = make_portal(seed=9)
        query = SensorQuery(
            region=triangle(), staleness_seconds=120.0, zoom_level=3
        )
        assert not isinstance(portal.execute_polygon(query), PolygonResult)

    def test_capped_portal_takes_the_exact_path(self):
        portal = make_portal(seed=9, max_sensors_per_query=50)
        result = portal.execute_polygon(exact_query(triangle()))
        assert not isinstance(result, PolygonResult)

    def test_over_budget_plan_takes_the_exact_path(self):
        portal = make_portal(seed=9, max_cells=4)
        assert (
            plan_polygon(triangle(), CELL_DEGREES, 4) is None
        ), "triangle must overflow the 4-cell budget for this test"
        result = portal.execute_polygon(exact_query(triangle()))
        assert not isinstance(result, PolygonResult)

    def test_fallbacks_still_answer_exactly(self):
        grid, exact = make_portal(seed=9, max_cells=4), make_portal(seed=9)
        assert sensor_ids(
            grid.execute_polygon(exact_query(triangle()))
        ) == sensor_ids(exact.execute(exact_query(triangle())))


class TestConservation:
    # Sensors pinned exactly on shared cell edges/corners inside the
    # triangle: closed cell geometry offers each to several sub-queries.
    EDGE_SENSORS = ((4.0, 4.0), (5.0, 4.0), (4.0, 5.0), (4.5, 3.0))

    def test_polygon_path_matches_exact_path(self):
        grid = make_portal(seed=10, extra_locations=self.EDGE_SENSORS)
        exact = make_portal(seed=10, extra_locations=self.EDGE_SENSORS)
        rg = grid.execute_polygon(exact_query(triangle()))
        re = exact.execute(exact_query(triangle()))
        assert isinstance(rg, PolygonResult)
        assert sensor_ids(rg) == sensor_ids(re)
        assert values_by_sensor(rg) == values_by_sensor(re)

    def test_shared_edge_sensors_are_deduplicated(self):
        portal = make_portal(seed=10, extra_locations=self.EDGE_SENSORS)
        result = portal.execute_polygon(exact_query(triangle()))
        assert isinstance(result, PolygonResult)
        ids = [
            r.sensor_id
            for a in result.answers
            for r in list(a.probed_readings) + list(a.cached_readings)
        ]
        assert len(ids) == len(set(ids))
        # The pinned edge sensors are all inside the triangle and must
        # each appear exactly once.
        by_location = {
            (s.location.x, s.location.y): s.sensor_id for s in portal.registry
        }
        for loc in self.EDGE_SENSORS:
            assert ids.count(by_location[loc]) == 1


class TestGridServing:
    def test_warm_interior_is_probe_free(self):
        portal = make_portal(seed=11)
        cold = portal.execute_polygon(exact_query(triangle()))
        assert isinstance(cold, PolygonResult)
        assert cold.interior_cells > 0
        warm = portal.execute_polygon(exact_query(triangle()))
        assert isinstance(warm, PolygonResult)
        assert warm.grid_cells_served == warm.interior_cells
        assert warm.interior_probes == 0
        assert sensor_ids(warm) == sensor_ids(cold)

    def test_stats_counters_surface_the_plan(self):
        portal = make_portal(seed=11)
        plan = plan_polygon(triangle(), CELL_DEGREES, 4096)
        result = portal.execute_polygon(exact_query(triangle()))
        assert result.interior_cells == len(plan.interior)
        assert result.boundary_cells == len(plan.boundary)
        stats = result.answers[0].stats
        assert stats.polygon_cells_interior == len(plan.interior)
        assert stats.polygon_cells_boundary == len(plan.boundary)
        net = portal.network.stats
        assert net.polygon_cells_interior == len(plan.interior)
        assert net.polygon_cells_boundary == len(plan.boundary)

    def test_unknown_sensor_type_raises(self):
        portal = make_portal(n=20, seed=11)
        query = replace(exact_query(triangle()), sensor_type="nope")
        try:
            portal.execute_polygon(query)
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError for unknown sensor type")
