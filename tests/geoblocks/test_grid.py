"""The geoblock grid: populations, listener mirroring, cell serving."""

import pytest

from repro.geoblocks.planner import cell_of_point, cell_rect
from repro.sensors.sensor import Reading

from tests.geoblocks.conftest import (
    CELL_DEGREES,
    STALENESS,
    exact_query,
    make_portal,
)


def populated_cell(portal):
    """Some cell with at least two sensors, plus its population."""
    grid = portal.geoblocks()
    for cell, state in grid._cells["generic"].items():
        if len(state.population) >= 2:
            return cell, list(state.population)
    raise AssertionError("fleet too sparse for the test")


def warm_cell(portal):
    """A populated cell whose mirror has been filled by a query."""
    grid = portal.geoblocks()
    cell, population = populated_cell(portal)
    portal.execute(exact_query(cell_rect(cell, CELL_DEGREES)))
    return grid, cell, population


class TestSync:
    def test_populations_partition_the_fleet(self):
        portal = make_portal(n=60, seed=1)
        grid = portal.geoblocks()
        seen: dict[int, tuple[int, int]] = {}
        for cell, state in grid._cells["generic"].items():
            assert state.population == sorted(state.population)
            for sensor_id in state.population:
                assert sensor_id not in seen
                seen[sensor_id] = cell
        for sensor in portal.registry:
            assert seen[sensor.sensor_id] == cell_of_point(
                sensor.location, CELL_DEGREES
            )

    def test_sync_is_idempotent_until_generation_moves(self):
        portal = make_portal(n=30, seed=1)
        grid = portal.geoblocks()
        rebuilds = grid.stats.rebuilds
        portal.geoblocks()
        assert grid.stats.rebuilds == rebuilds

    @pytest.mark.slow  # re-registers mid-test: full index rebuild
    def test_rebuild_on_generation_move_restarts_cold(self):
        portal = make_portal(n=60, seed=1)
        grid, cell, _ = warm_cell(portal)
        now = portal.clock.now()
        assert grid.serve_cell("generic", cell, now, STALENESS) is not None
        rebuilds = grid.stats.rebuilds
        from repro.geometry import GeoPoint

        portal.register_sensor(GeoPoint(0.1, 0.1), expiry_seconds=600.0)
        grid2 = portal.geoblocks()
        assert grid2 is grid
        assert grid.stats.rebuilds == rebuilds + 1
        # Mirrors restart cold, exactly like freshly rebuilt slot caches.
        assert grid.serve_cell("generic", cell, now, STALENESS) is None


class TestServeCell:
    def test_unpopulated_cell_serves_empty(self):
        portal = make_portal(n=20, seed=2)
        grid = portal.geoblocks()
        assert grid.serve_cell("generic", (999, 999), 0.0, STALENESS) == []
        assert grid.cell_version("generic", (999, 999)) == -1

    def test_cold_populated_cell_falls_back(self):
        portal = make_portal(n=60, seed=2)
        grid = portal.geoblocks()
        cell, _ = populated_cell(portal)
        fallbacks = grid.stats.cell_fallbacks
        assert grid.serve_cell(
            "generic", cell, portal.clock.now(), STALENESS
        ) is None
        assert grid.stats.cell_fallbacks == fallbacks + 1

    def test_query_ingest_fills_the_mirror(self):
        portal = make_portal(n=60, seed=2)
        grid, cell, population = warm_cell(portal)
        now = portal.clock.now()
        served = grid.serve_cell("generic", cell, now, STALENESS)
        assert served is not None
        # The full population, in sensor-id order.
        assert [r.sensor_id for r in served] == population
        assert grid.stats.readings_mirrored >= len(population)
        assert grid.stats.listener_batches > 0
        assert grid.cell_version("generic", cell) >= len(population)

    def test_stale_mirror_falls_back(self):
        portal = make_portal(n=60, seed=2)
        grid, cell, _ = warm_cell(portal)
        portal.clock.advance(STALENESS + 1.0)
        assert grid.serve_cell(
            "generic", cell, portal.clock.now(), STALENESS
        ) is None


class TestListener:
    def test_out_of_band_write_updates_mirror_and_version(self):
        portal = make_portal(n=60, seed=3)
        grid, cell, population = warm_cell(portal)
        now = portal.clock.now()
        version = grid.cell_version("generic", cell)
        sensor_id = population[0]
        tree = portal._trees["generic"]
        tree.insert_readings_batch(
            [Reading(sensor_id, 123.456, now + 1.0, now + 600.0)],
            fetched_at=now + 1.0,
        )
        assert grid.cell_version("generic", cell) == version + 1
        state = grid.cell_state("generic", cell)
        assert state.readings[sensor_id].value == 123.456

    def test_older_timestamp_does_not_regress_the_mirror(self):
        portal = make_portal(n=60, seed=3)
        grid, cell, population = warm_cell(portal)
        version = grid.cell_version("generic", cell)
        sensor_id = population[0]
        state = grid.cell_state("generic", cell)
        mirrored = state.readings[sensor_id]
        tree = portal._trees["generic"]
        tree.insert_readings_batch(
            [
                Reading(
                    sensor_id,
                    -1.0,
                    mirrored.timestamp - 10.0,
                    mirrored.expires_at,
                )
            ],
            fetched_at=portal.clock.now(),
        )
        assert state.readings[sensor_id] == mirrored
        assert grid.cell_version("generic", cell) == version


class TestCellAggregate:
    def test_tracks_the_mirror(self):
        portal = make_portal(n=60, seed=4)
        grid, cell, population = warm_cell(portal)
        sketch = grid.cell_aggregate("generic", cell)
        state = grid.cell_state("generic", cell)
        values = [r.value for r in state.readings.values()]
        assert sketch.count == len(values)
        assert sketch.total == sum(values)
        assert sketch.minimum == min(values)
        assert sketch.maximum == max(values)

    def test_displaced_extremum_is_repaired(self):
        portal = make_portal(n=60, seed=4)
        grid, cell, population = warm_cell(portal)
        now = portal.clock.now()
        state = grid.cell_state("generic", cell)
        top = max(state.readings.values(), key=lambda r: r.value)
        tree = portal._trees["generic"]
        # Replace the cell's maximum with a small value: the incremental
        # remove marks min/max dirty, and cell_aggregate repairs from
        # the mirror like a slot-cache recomputation.
        tree.insert_readings_batch(
            [Reading(top.sensor_id, -999.0, now + 1.0, now + 600.0)],
            fetched_at=now + 1.0,
        )
        assert state.sketch.minmax_dirty
        sketch = grid.cell_aggregate("generic", cell)
        assert not sketch.minmax_dirty
        values = [r.value for r in state.readings.values()]
        assert sketch.maximum == max(values)
        assert sketch.minimum == -999.0

    def test_unpopulated_cell_has_no_aggregate(self):
        portal = make_portal(n=20, seed=4)
        grid = portal.geoblocks()
        assert grid.cell_aggregate("generic", (999, 999)) is None
