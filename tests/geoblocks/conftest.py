"""Shared builders for the geoblocks suite.

Small reliable fleets (availability 1.0, deterministic value function)
behind uncapped portals with a 1-degree geoblock grid over a 10x10
extent, so twin same-seed portals produce identical reading content at
the same simulated instant — which lets the executor tests compare the
cell-plan path against the exact Region path value-for-value.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.config import COLRTreeConfig
from repro.geoblocks import GeoBlockConfig
from repro.geometry import GeoPoint, Polygon, Rect
from repro.portal import SensorMapPortal
from repro.portal.query import SensorQuery

EXTENT = 10.0
STALENESS = 120.0
CELL_DEGREES = 1.0

# Pristine built portals keyed by every make_portal argument.  The
# suite builds the same handful of 300-sensor fleets dozens of times;
# a freshly-built portal is pure deterministic state (no open files,
# no processes), so a deepcopy of the memoized prototype is
# bit-identical to a fresh build — and each test still gets a private
# mutable instance.
_PROTOTYPES: dict[tuple, SensorMapPortal] = {}


def make_portal(
    n: int = 300,
    seed: int = 0,
    cell_degrees: float = CELL_DEGREES,
    max_cells: int = 4096,
    max_sensors_per_query: int | None = None,
    extra_locations: tuple[tuple[float, float], ...] = (),
) -> SensorMapPortal:
    """A uniform reliable fleet with a geoblock grid.

    ``extra_locations`` appends sensors at exact coordinates (cell
    corners, edges) for dedup and ownership tests.
    """
    key = (n, seed, cell_degrees, max_cells, max_sensors_per_query, extra_locations)
    prototype = _PROTOTYPES.get(key)
    if prototype is None:
        prototype = _build_portal(
            n, seed, cell_degrees, max_cells, max_sensors_per_query, extra_locations
        )
        _PROTOTYPES[key] = prototype
    return copy.deepcopy(prototype)


def _build_portal(
    n: int,
    seed: int,
    cell_degrees: float,
    max_cells: int,
    max_sensors_per_query: int | None,
    extra_locations: tuple[tuple[float, float], ...],
) -> SensorMapPortal:
    portal = SensorMapPortal(
        config=COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        max_sensors_per_query=max_sensors_per_query,
        geoblocks=GeoBlockConfig(
            cell_degrees=cell_degrees, max_cells_per_query=max_cells
        ),
    )
    rng = np.random.default_rng(seed)
    for _ in range(n):
        portal.register_sensor(
            GeoPoint(float(rng.uniform(0, EXTENT)), float(rng.uniform(0, EXTENT))),
            expiry_seconds=float(rng.uniform(300.0, 900.0)),
            availability=1.0,
        )
    for x, y in extra_locations:
        portal.register_sensor(
            GeoPoint(x, y), expiry_seconds=600.0, availability=1.0
        )
    portal.rebuild_index()
    return portal


def triangle() -> Polygon:
    """A genuine (non-rectangular) polygon spanning several cells."""
    return Polygon([GeoPoint(1.2, 1.2), GeoPoint(8.4, 2.1), GeoPoint(4.3, 8.6)])


def exact_query(region, staleness: float = STALENESS) -> SensorQuery:
    return SensorQuery(region=region, staleness_seconds=staleness)


def rect_as_polygon(rect: Rect) -> Polygon:
    return Polygon(
        [
            GeoPoint(rect.min_x, rect.min_y),
            GeoPoint(rect.max_x, rect.min_y),
            GeoPoint(rect.max_x, rect.max_y),
            GeoPoint(rect.min_x, rect.max_y),
        ]
    )


def sensor_ids(result) -> set[int]:
    return {
        r.sensor_id
        for a in result.answers
        for r in list(a.probed_readings) + list(a.cached_readings)
    }


def values_by_sensor(result) -> dict[int, float]:
    out: dict[int, float] = {}
    for answer in result.answers:
        for reading in list(answer.probed_readings) + list(answer.cached_readings):
            out[reading.sensor_id] = reading.value
    return out


def assert_identical_results(a, b, context: str = "") -> None:
    """Field-for-field bit-identity of two portal results (the
    rectangle-parity contract)."""
    assert len(a.answers) == len(b.answers), context
    for x, y in zip(a.answers, b.answers):
        for field in (
            "probed_readings",
            "cached_readings",
            "cached_sketches",
            "cached_sketch_nodes",
            "terminals",
            "stats",
        ):
            assert getattr(x, field) == getattr(y, field), f"{context}: {field}"
    assert a.groups == b.groups, context
    assert a.processing_seconds == b.processing_seconds, context
    assert a.collection_seconds == b.collection_seconds, context
