"""Every example must run cleanly end-to-end (subprocess smoke tests)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"


def test_all_examples_discovered():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable minimum
