"""Federated polygon scatter: exact clipped routing and conservation.

Pins the satellite contract: a polygon scattered across shards routes
each shard the *exact* Sutherland–Hodgman clip of the polygon to the
shard's MBR — never the polygon's bounding rectangle — and the gathered
answer conserves the unsharded portal's sensor set bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.federation import FederatedPortal
from repro.geoblocks.executor import PolygonResult
from repro.geometry import GeoPoint, Polygon, Rect
from repro.portal import SensorMapPortal, SensorQuery

# Spans all four GridPartitioner quadrants of the 100x100 extent while
# keeping the bounding box under the default 4096-cell plan budget.
TRIANGLE = Polygon([GeoPoint(10.0, 10.0), GeoPoint(70.0, 20.0), GeoPoint(40.0, 65.0)])
QUERY = SensorQuery(region=TRIANGLE, staleness_seconds=300.0)


def _register_fleet(portal, n=240, seed=5):
    rng = np.random.default_rng(seed)
    for x, y in rng.random((n, 2)) * 100:
        portal.register_sensor(
            GeoPoint(float(x), float(y)), expiry_seconds=600.0
        )
    portal.rebuild_index()
    return portal


def _federation(n_shards=4, **kwargs):
    kwargs.setdefault("max_sensors_per_query", None)
    kwargs.setdefault("network_options", {"latency_jitter": 0.0})
    return _register_fleet(FederatedPortal(n_shards=n_shards, **kwargs))


def _unsharded(**kwargs):
    kwargs.setdefault("max_sensors_per_query", None)
    kwargs.setdefault("network_options", {"latency_jitter": 0.0})
    return _register_fleet(SensorMapPortal(**kwargs))


def _ids(result) -> set[int]:
    return {
        r.sensor_id
        for a in result.answers
        for r in list(a.probed_readings) + list(a.cached_readings)
    }


def _values(result) -> dict[int, float]:
    return {
        r.sensor_id: r.value
        for a in result.answers
        for r in list(a.probed_readings) + list(a.cached_readings)
    }


class TestConservation:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_multi_shard_polygon_conserves_the_exact_answer(self, n_shards):
        exact = _unsharded().execute(QUERY)
        assert len(_ids(exact)) > 0
        fed = _federation(n_shards=n_shards)
        merged = fed.execute_polygon(QUERY)
        assert not merged.partial
        assert _ids(merged) == _ids(exact)
        assert _values(merged) == _values(exact)

    def test_shards_answer_through_their_geoblock_path(self):
        fed = _federation(n_shards=4)
        merged = fed.execute_polygon(QUERY)
        assert len(merged.shard_results) > 1
        for result in merged.shard_results.values():
            assert isinstance(result, PolygonResult)


class TestScatterRouting:
    def test_subqueries_are_clipped_polygons_not_mbrs(self):
        fed = _federation(n_shards=4)
        fed._ensure_index()
        routes = fed._route(QUERY)
        assert len(routes) > 1
        plan = fed._scatter_plan(QUERY, routes)
        clipped_any = False
        for shard_id, sub in plan:
            region = sub.region
            assert isinstance(region, Polygon)
            assert region.as_rect() is None
            mbr = fed._directory.entry(shard_id).mbr
            if region is not TRIANGLE:
                clipped_any = True
                bbox = region.bounding_box
                eps = 1e-9
                assert bbox.min_x >= mbr.min_x - eps
                assert bbox.max_x <= mbr.max_x + eps
                assert bbox.min_y >= mbr.min_y - eps
                assert bbox.max_y <= mbr.max_y + eps
        assert clipped_any

    def test_single_shard_scatter_passes_the_polygon_through(self):
        fed = _federation(n_shards=1)
        fed._ensure_index()
        plan = fed._scatter_plan(QUERY, fed._route(QUERY))
        assert len(plan) == 1
        assert plan[0][1].region is TRIANGLE

    def test_rect_drawn_as_polygon_dispatches_to_execute(self):
        fed_a, fed_b = _federation(n_shards=4), _federation(n_shards=4)
        rect = Rect(20.0, 20.0, 70.0, 70.0)
        as_polygon = Polygon(
            [
                GeoPoint(rect.min_x, rect.min_y),
                GeoPoint(rect.max_x, rect.min_y),
                GeoPoint(rect.max_x, rect.max_y),
                GeoPoint(rect.min_x, rect.max_y),
            ]
        )
        ra = fed_a.execute(SensorQuery(region=rect, staleness_seconds=300.0))
        rb = fed_b.execute_polygon(
            SensorQuery(region=as_polygon, staleness_seconds=300.0)
        )
        assert ra.answers == rb.answers
        assert ra.groups == rb.groups
        assert ra.processing_seconds == rb.processing_seconds
        assert ra.collection_seconds == rb.collection_seconds
