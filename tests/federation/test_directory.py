"""Shard directory: MBR routing and overlap-weighted target splitting."""

from __future__ import annotations

import pytest

from repro.federation import ShardDirectory, ShardRoute
from repro.geometry import GeoPoint, Rect
from repro.sensors import SensorRegistry


def _group(points, sensor_type="generic"):
    registry = SensorRegistry()
    return [
        registry.register(GeoPoint(x, y), expiry_seconds=300.0, sensor_type=sensor_type)
        for x, y in points
    ]


def _two_shard_directory():
    """Shard 0 over the left half, shard 1 over the right half."""
    left = _group([(0.0, 0.0), (40.0, 100.0), (20.0, 50.0)], "temperature")
    right = _group([(60.0, 0.0), (100.0, 100.0), (80.0, 50.0)], "humidity")
    return ShardDirectory([left, right])


class TestEntries:
    def test_entry_summaries(self):
        directory = _two_shard_directory()
        assert len(directory) == 2
        left = directory.entry(0)
        assert left.weight == 3
        assert left.mbr == Rect(0.0, 0.0, 40.0, 100.0)
        assert left.sensor_types == frozenset({"temperature"})
        assert directory.has_type("humidity")
        assert not directory.has_type("rain")

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ShardDirectory([_group([(1.0, 1.0)]), []])


class TestRouting:
    def test_routes_only_overlapping_shards(self):
        directory = _two_shard_directory()
        routes = directory.route(Rect(0.0, 0.0, 30.0, 30.0))
        assert [r.shard_id for r in routes] == [0]
        both = directory.route(Rect(30.0, 30.0, 70.0, 70.0))
        assert [r.shard_id for r in both] == [0, 1]

    def test_typed_routing_filters_shards(self):
        directory = _two_shard_directory()
        routes = directory.route(Rect(0.0, 0.0, 100.0, 100.0), "humidity")
        assert [r.shard_id for r in routes] == [1]

    def test_single_shard_routes_unconditionally(self):
        """A one-shard federation is a pass-through: even a viewport
        outside the fleet MBR reaches the shard, exactly as it would
        reach an unsharded portal (which answers it with weight 0)."""
        directory = ShardDirectory([_group([(10.0, 10.0), (20.0, 20.0)])])
        routes = directory.route(Rect(500.0, 500.0, 600.0, 600.0))
        assert [(r.shard_id, r.overlap) for r in routes] == [(0, 1.0)]

    def test_single_shard_typed_miss_returns_nothing(self):
        directory = ShardDirectory([_group([(10.0, 10.0)], "temperature")])
        assert directory.route(Rect(0, 0, 100, 100), "rain") == []

    def test_share_weight_scales_with_population_and_overlap(self):
        big = _group([(float(i), 0.0) for i in range(10)])  # mbr (0,0)-(9,0)
        small = _group([(50.0, 0.0), (59.0, 0.0)])
        directory = ShardDirectory([big, small])
        routes = directory.route(Rect(-10.0, -10.0, 100.0, 10.0))
        weights = {r.shard_id: r.weight for r in routes}
        assert weights[0] > weights[1]


class TestSplitTarget:
    def _routes(self, *weights):
        return [ShardRoute(i, 1.0, float(w)) for i, w in enumerate(weights)]

    def test_shares_sum_exactly_to_target(self):
        for target in (0, 1, 7, 40, 101):
            shares = ShardDirectory.split_target(target, self._routes(3, 1, 5, 2))
            assert sum(shares.values()) == target

    def test_proportional_split(self):
        shares = ShardDirectory.split_target(100, self._routes(3.0, 1.0))
        assert shares == {0: 75, 1: 25}

    def test_remainder_ties_go_to_lower_shard_id(self):
        # 3 equal routes, target 4: one leftover after floor(4/3)=1 each.
        shares = ShardDirectory.split_target(4, self._routes(1.0, 1.0, 1.0))
        assert shares == {0: 2, 1: 1, 2: 1}

    def test_zero_weight_routes_can_get_zero(self):
        shares = ShardDirectory.split_target(10, self._routes(5.0, 0.0))
        assert shares == {0: 10, 1: 0}

    def test_degenerate_weights_all_to_first(self):
        shares = ShardDirectory.split_target(9, self._routes(0.0, 0.0))
        assert shares == {0: 9, 1: 0}

    def test_empty_routes(self):
        assert ShardDirectory.split_target(5, []) == {}

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            ShardDirectory.split_target(-1, self._routes(1.0))
