"""Shard directory: MBR routing and overlap-weighted target splitting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import ShardDirectory, ShardRoute
from repro.geometry import GeoPoint, Polygon, Rect
from repro.sensors import SensorRegistry


def _group(points, sensor_type="generic"):
    registry = SensorRegistry()
    return [
        registry.register(GeoPoint(x, y), expiry_seconds=300.0, sensor_type=sensor_type)
        for x, y in points
    ]


def _two_shard_directory():
    """Shard 0 over the left half, shard 1 over the right half."""
    left = _group([(0.0, 0.0), (40.0, 100.0), (20.0, 50.0)], "temperature")
    right = _group([(60.0, 0.0), (100.0, 100.0), (80.0, 50.0)], "humidity")
    return ShardDirectory([left, right])


class TestEntries:
    def test_entry_summaries(self):
        directory = _two_shard_directory()
        assert len(directory) == 2
        left = directory.entry(0)
        assert left.weight == 3
        assert left.mbr == Rect(0.0, 0.0, 40.0, 100.0)
        assert left.sensor_types == frozenset({"temperature"})
        assert directory.has_type("humidity")
        assert not directory.has_type("rain")

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ShardDirectory([_group([(1.0, 1.0)]), []])


class TestRouting:
    def test_routes_only_overlapping_shards(self):
        directory = _two_shard_directory()
        routes = directory.route(Rect(0.0, 0.0, 30.0, 30.0))
        assert [r.shard_id for r in routes] == [0]
        both = directory.route(Rect(30.0, 30.0, 70.0, 70.0))
        assert [r.shard_id for r in both] == [0, 1]

    def test_typed_routing_filters_shards(self):
        directory = _two_shard_directory()
        routes = directory.route(Rect(0.0, 0.0, 100.0, 100.0), "humidity")
        assert [r.shard_id for r in routes] == [1]

    def test_single_shard_routes_unconditionally(self):
        """A one-shard federation is a pass-through: even a viewport
        outside the fleet MBR reaches the shard, exactly as it would
        reach an unsharded portal (which answers it with weight 0)."""
        directory = ShardDirectory([_group([(10.0, 10.0), (20.0, 20.0)])])
        routes = directory.route(Rect(500.0, 500.0, 600.0, 600.0))
        assert [(r.shard_id, r.overlap) for r in routes] == [(0, 1.0)]

    def test_single_shard_typed_miss_returns_nothing(self):
        directory = ShardDirectory([_group([(10.0, 10.0)], "temperature")])
        assert directory.route(Rect(0, 0, 100, 100), "rain") == []

    def test_share_weight_scales_with_population_and_overlap(self):
        big = _group([(float(i), 0.0) for i in range(10)])  # mbr (0,0)-(9,0)
        small = _group([(50.0, 0.0), (59.0, 0.0)])
        directory = ShardDirectory([big, small])
        routes = directory.route(Rect(-10.0, -10.0, 100.0, 10.0))
        weights = {r.shard_id: r.weight for r in routes}
        assert weights[0] > weights[1]


class TestSplitTarget:
    def _routes(self, *weights):
        return [ShardRoute(i, 1.0, float(w)) for i, w in enumerate(weights)]

    def test_shares_sum_exactly_to_target(self):
        for target in (0, 1, 7, 40, 101):
            shares = ShardDirectory.split_target(target, self._routes(3, 1, 5, 2))
            assert sum(shares.values()) == target

    def test_proportional_split(self):
        shares = ShardDirectory.split_target(100, self._routes(3.0, 1.0))
        assert shares == {0: 75, 1: 25}

    def test_remainder_ties_go_to_lower_shard_id(self):
        # 3 equal routes, target 4: one leftover after floor(4/3)=1 each.
        shares = ShardDirectory.split_target(4, self._routes(1.0, 1.0, 1.0))
        assert shares == {0: 2, 1: 1, 2: 1}

    def test_zero_weight_routes_can_get_zero(self):
        shares = ShardDirectory.split_target(10, self._routes(5.0, 0.0))
        assert shares == {0: 10, 1: 0}

    def test_degenerate_weights_all_to_first(self):
        shares = ShardDirectory.split_target(9, self._routes(0.0, 0.0))
        assert shares == {0: 9, 1: 0}

    def test_empty_routes(self):
        assert ShardDirectory.split_target(5, []) == {}

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            ShardDirectory.split_target(-1, self._routes(1.0))


def _weighted_routes(weights):
    return [ShardRoute(i, 1.0, float(w)) for i, w in enumerate(weights)]


weight_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)
targets = st.integers(min_value=0, max_value=10_000)


class TestSplitTargetProperties:
    """Algorithm 1's share rule, checked for *any* weights and target."""

    @settings(max_examples=200, deadline=None)
    @given(target=targets, weights=weight_lists)
    def test_integer_conservation(self, target, weights):
        shares = ShardDirectory.split_target(target, _weighted_routes(weights))
        assert sum(shares.values()) == target
        assert all(s >= 0 for s in shares.values())

    @settings(max_examples=200, deadline=None)
    @given(target=targets, weights=weight_lists)
    def test_zero_weight_routes_get_zero(self, target, weights):
        """A route with zero overlap weight never receives a share
        (largest-remainder units only reach routes with a positive
        fractional quota) — except in the all-zero degenerate case,
        where everything collapses onto the first route."""
        routes = _weighted_routes(weights)
        shares = ShardDirectory.split_target(target, routes)
        if sum(weights) > 0:
            for route in routes:
                if route.weight == 0.0:
                    assert shares[route.shard_id] == 0
        else:
            assert shares[routes[0].shard_id] == target

    @settings(max_examples=200, deadline=None)
    @given(target=targets, weights=weight_lists)
    def test_monotone_in_weight(self, target, weights):
        """A strictly heavier route never gets a smaller share, and
        equal-weight routes differ by at most the one remainder unit."""
        routes = _weighted_routes(weights)
        shares = ShardDirectory.split_target(target, routes)
        if sum(weights) <= 0:
            return
        for a in routes:
            for b in routes:
                if a.weight > b.weight:
                    assert shares[a.shard_id] >= shares[b.shard_id]
                elif a.weight == b.weight:
                    assert abs(shares[a.shard_id] - shares[b.shard_id]) <= 1


capped_routes = st.lists(
    st.tuples(
        st.floats(
            min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
        ),
        st.integers(min_value=0, max_value=500),
    ),
    min_size=1,
    max_size=10,
)


class TestSplitTargetCappedProperties:
    """The top-up splitter: conservation up to pool exhaustion."""

    @settings(max_examples=200, deadline=None)
    @given(target=targets, rows=capped_routes)
    def test_allocates_min_of_target_and_capacity(self, target, rows):
        routes = _weighted_routes([w for w, _ in rows])
        caps = {i: cap for i, (_, cap) in enumerate(rows)}
        shares = ShardDirectory.split_target_capped(target, routes, caps)
        assert sum(shares.values()) == min(target, sum(caps.values()))

    @settings(max_examples=200, deadline=None)
    @given(target=targets, rows=capped_routes)
    def test_never_exceeds_any_cap(self, target, rows):
        routes = _weighted_routes([w for w, _ in rows])
        caps = {i: cap for i, (_, cap) in enumerate(rows)}
        shares = ShardDirectory.split_target_capped(target, routes, caps)
        for sid, share in shares.items():
            assert 0 <= share <= caps[sid]

    @settings(max_examples=100, deadline=None)
    @given(target=targets, weights=weight_lists)
    def test_ample_caps_reduce_to_plain_split(self, target, weights):
        routes = _weighted_routes(weights)
        caps = {r.shard_id: target for r in routes}
        assert ShardDirectory.split_target_capped(
            target, routes, caps
        ) == ShardDirectory.split_target(target, routes)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            ShardDirectory.split_target_capped(
                -1, _weighted_routes([1.0]), {0: 5}
            )


class TestResidualRoutes:
    def _directory(self):
        left = _group([(0.0, 0.0), (40.0, 40.0), (20.0, 20.0), (10.0, 30.0)])
        right = _group([(60.0, 0.0), (100.0, 40.0), (80.0, 20.0), (70.0, 30.0)])
        return ShardDirectory([left, right])

    def test_residual_is_pool_minus_achieved(self):
        directory = self._directory()
        routes = directory.route(Rect(-10.0, -10.0, 110.0, 50.0))
        assert [r.overlap for r in routes] == [1.0, 1.0]
        residual = directory.residual_routes(routes, {0: 1, 1: 3})
        weights = {r.shard_id: r.weight for r in residual}
        assert weights == {0: 3.0, 1: 1.0}

    def test_drained_and_excluded_shards_drop_out(self):
        directory = self._directory()
        routes = directory.route(Rect(-10.0, -10.0, 110.0, 50.0))
        assert directory.residual_routes(routes, {0: 4, 1: 5}) == []
        only_right = directory.residual_routes(routes, {0: 0, 1: 0}, exclude={0})
        assert [r.shard_id for r in only_right] == [1]

    def test_partial_overlap_scales_the_pool(self):
        directory = self._directory()
        # Half of the left shard's MBR: pool estimate floor(4 x 0.5) = 2.
        routes = directory.route(Rect(0.0, 0.0, 20.0, 40.0))
        left = [r for r in routes if r.shard_id == 0]
        assert left and left[0].overlap == pytest.approx(0.5)
        residual = directory.residual_routes(left, {0: 1})
        assert [(r.shard_id, r.weight) for r in residual] == [(0, 1.0)]


class TestPolygonRouting:
    """Exact polygon-vs-shard overlap weights (the MBR over-admission
    fix): a polygon is clipped against each shard MBR, so shards the
    polygon never actually reaches are not routed and partially covered
    shards get their true area fraction, not their bounding-box one."""

    def _directory(self):
        # Shard 0: MBR (0,0)-(40,40); shard 1: MBR (60,0)-(100,40).
        left = _group([(0.0, 0.0), (40.0, 40.0), (20.0, 20.0), (10.0, 30.0)])
        right = _group([(60.0, 0.0), (100.0, 40.0), (80.0, 20.0), (70.0, 30.0)])
        return ShardDirectory([left, right])

    def test_zero_actual_overlap_shard_not_routed(self):
        """The polygon's bounding box spans both shards, but its
        interior stays left of x=50 — the right shard must not be
        routed at all (its bbox share would have been positive)."""
        directory = self._directory()
        poly = Polygon(
            [
                GeoPoint(0.0, 0.0),
                GeoPoint(50.0, 0.0),
                GeoPoint(0.0, 45.0),
            ]
        )
        routes = directory.route(poly)
        assert [r.shard_id for r in routes] == [0]

    def test_partial_overlap_uses_clipped_area_not_bbox(self):
        """Triangle (0,0)-(70,0)-(0,40): covers ~71.4% of shard 0's MBR
        but only ~1.8% of shard 1's, while the bounding-box rule would
        have charged shard 1 a 25% overlap.  Pin the exact clipped
        fractions and the share split they produce (the bbox weights
        used to split the same target 80/20)."""
        directory = self._directory()
        poly = Polygon(
            [GeoPoint(0.0, 0.0), GeoPoint(70.0, 0.0), GeoPoint(0.0, 40.0)]
        )
        routes = directory.route(poly)
        overlaps = {r.shard_id: r.overlap for r in routes}
        assert overlaps[0] == pytest.approx(1142.857142857 / 1600.0)
        assert overlaps[1] == pytest.approx(200.0 / 7.0 / 1600.0)
        shares = ShardDirectory.split_target(100, routes)
        assert shares == {0: 98, 1: 2}
