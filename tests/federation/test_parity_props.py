"""Property-based single-shard pass-through parity.

A one-shard ``FederatedPortal`` must be observationally identical to an
unsharded ``SensorMapPortal`` built from the same fleet, for *any*
viewport and sample target — the scatter layer may add no randomness,
reordering or rounding of its own.  Shard 0's network seeds from
``network_seed + 0`` and the clocks start equal, so both portals draw
the same RNG stream in the same order."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import FederatedPortal
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery

FLEET_N = 120
TYPES = ("temperature", "humidity")

coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
span = st.floats(min_value=1.0, max_value=80.0, allow_nan=False)
sample = st.one_of(st.none(), st.integers(min_value=1, max_value=60))
staleness = st.sampled_from([30.0, 120.0, 600.0])
sensor_type = st.sampled_from([None, *TYPES])


def _build_pair(availability):
    def fill(portal):
        rng = np.random.default_rng(13)
        for i, (x, y) in enumerate(rng.random((FLEET_N, 2)) * 100):
            portal.register_sensor(
                GeoPoint(float(x), float(y)),
                expiry_seconds=600.0,
                sensor_type=TYPES[i % len(TYPES)],
                availability=availability,
            )
        portal.rebuild_index()
        return portal

    return (
        fill(SensorMapPortal(max_sensors_per_query=None)),
        fill(FederatedPortal(n_shards=1, max_sensors_per_query=None)),
    )


class TestSingleShardPassThrough:
    @settings(max_examples=25, deadline=None)
    @given(
        x=coord, y=coord, w=span, h=span,
        sample_size=sample, stale=staleness, stype=sensor_type,
        availability=st.sampled_from([1.0, 0.6]),
    )
    def test_any_query_shape_is_bit_identical(
        self, x, y, w, h, sample_size, stale, stype, availability
    ):
        plain, fed = _build_pair(availability)
        query = SensorQuery(
            region=Rect(x, y, min(100.0, x + w), min(100.0, y + h)),
            staleness_seconds=stale,
            sample_size=sample_size,
            sensor_type=stype,
        )
        a = plain.execute(query)
        b = fed.execute(query)
        assert a.answers == b.answers
        assert a.groups == b.groups
        assert a.result_weight == b.result_weight
        assert (a.processing_seconds, a.collection_seconds) == (
            b.processing_seconds,
            b.collection_seconds,
        )
        assert not b.partial
        # Second execution on the now-warm caches stays in lockstep.
        a2 = plain.execute(query)
        b2 = fed.execute(query)
        assert a2.answers == b2.answers
        assert plain.network.stats == fed.shard(0).network.stats
