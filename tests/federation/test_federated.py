"""FederatedPortal: scatter-gather behavior, parity, and degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federation import (
    FederatedPortal,
    FederationConfig,
    GridPartitioner,
    KMeansPartitioner,
)
from repro.geometry import GeoPoint, Rect
from repro.portal import ContinuousQueryManager, SensorMapPortal, SensorQuery


def _register_fleet(portal, n=240, seed=5, types=("temperature", "humidity")):
    rng = np.random.default_rng(seed)
    for i, (x, y) in enumerate(rng.random((n, 2)) * 100):
        portal.register_sensor(
            GeoPoint(float(x), float(y)),
            expiry_seconds=600.0,
            sensor_type=types[i % len(types)],
        )
    portal.rebuild_index()
    return portal


def _federation(n_shards=4, n=240, seed=5, **kwargs):
    kwargs.setdefault("max_sensors_per_query", None)
    kwargs.setdefault("network_options", {"latency_jitter": 0.0})
    return _register_fleet(FederatedPortal(n_shards=n_shards, **kwargs), n=n, seed=seed)


def _unsharded(n=240, seed=5, **kwargs):
    kwargs.setdefault("max_sensors_per_query", None)
    kwargs.setdefault("network_options", {"latency_jitter": 0.0})
    return _register_fleet(SensorMapPortal(**kwargs), n=n, seed=seed)


WIDE = SensorQuery(region=Rect(0.0, 0.0, 100.0, 100.0), staleness_seconds=300.0)


class TestSingleShardParity:
    def test_execute_matches_unsharded_bit_for_bit(self):
        plain = _unsharded()
        fed = _federation(n_shards=1)
        queries = [
            WIDE,
            SensorQuery(region=Rect(20, 20, 70, 70), staleness_seconds=120.0),
            SensorQuery(
                region=Rect(20, 20, 70, 70), staleness_seconds=120.0, sample_size=30
            ),
            SensorQuery(
                region=Rect(10, 40, 90, 95),
                staleness_seconds=120.0,
                sensor_type="humidity",
            ),
        ]
        for tick in range(3):
            for query in queries:
                a = plain.execute(query)
                b = fed.execute(query)
                assert a.answers == b.answers
                assert a.groups == b.groups
                assert a.result_weight == b.result_weight
                assert a.processing_seconds == b.processing_seconds
                assert a.collection_seconds == b.collection_seconds
                assert not b.partial
            plain.clock.advance(45.0)
            fed.clock.advance(45.0)
        assert plain.network.stats == fed.shard(0).network.stats

    def test_bench_parity_gate(self):
        """The benchmark's own gate (exact/sampled x rect/polygon x
        cold/warm x reliable/flaky/transport, single + batch paths) at
        test scale."""
        from repro.bench.federation import check_single_shard_parity

        assert check_single_shard_parity(600, seed=0) == 72


class TestConservation:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_exact_weights_conserved(self, n_shards):
        """Shards hold disjoint sensors, so a deterministic exact
        scatter-gather neither loses nor double-counts readings."""
        want = _unsharded().execute(WIDE).result_weight
        assert want > 0
        got = _federation(n_shards=n_shards).execute(WIDE)
        assert got.result_weight == want
        assert not got.partial

    def test_bench_conservation_gate(self):
        from repro.bench.federation import check_conservation

        check_conservation(600, seed=0, shard_counts=(1, 2, 4))

    def test_sampled_split_shares_sum_to_target(self):
        fed = _federation(n_shards=4)
        query = SensorQuery(
            region=Rect(0, 0, 100, 100), staleness_seconds=300.0, sample_size=48
        )
        plan = fed._scatter_plan(query, fed._route(query))
        assert sum(sub.sample_size for _, sub in plan) == 48
        assert fed.stats.sampled_splits == 1


class TestScatterPlanning:
    def test_uncapped_missing_samplesize_broadcasts_exact(self):
        fed = _federation(n_shards=4)
        fed.execute(WIDE)
        assert fed.stats.exact_broadcasts == 1
        assert fed.stats.sampled_splits == 0

    def test_capped_missing_samplesize_demotes_to_cap(self):
        fed = _federation(n_shards=4, max_sensors_per_query=50)
        fed.execute(WIDE)
        assert fed.stats.exact_broadcasts == 0
        assert fed.stats.sampled_splits == 1

    def test_explicit_target_clamps_to_cap(self):
        fed = _federation(n_shards=4, max_sensors_per_query=50)
        query = SensorQuery(
            region=Rect(0, 0, 100, 100), staleness_seconds=300.0, sample_size=10_000
        )
        plan = fed._scatter_plan(query, fed._route(query))
        assert sum(sub.sample_size for _, sub in plan) == 50

    def test_narrow_viewport_routes_fewer_shards(self):
        fed = _federation(n_shards=4)
        routed = fed._route(
            SensorQuery(region=Rect(1.0, 1.0, 9.0, 9.0), staleness_seconds=300.0)
        )
        assert 1 <= len(routed) < 4

    def test_unknown_type_raises(self):
        fed = _federation(n_shards=2)
        with pytest.raises(KeyError, match="seismograph"):
            fed.execute(
                SensorQuery(
                    region=Rect(0, 0, 100, 100),
                    staleness_seconds=300.0,
                    sensor_type="seismograph",
                )
            )


class TestDegradation:
    def test_killed_shard_yields_flagged_partial_answer(self):
        fed = _federation(n_shards=4, federation=FederationConfig(shard_retry_budget=1))
        whole = fed.execute(WIDE)
        fed.kill_shard(2)
        degraded = fed.execute(WIDE)  # must not raise
        assert degraded.partial
        assert degraded.failed_shards == (2,)
        assert degraded.shard_retries == 1
        assert 2 not in degraded.shard_results
        assert 0 < degraded.result_weight < whole.result_weight
        assert fed.stats.partial_answers == 1
        assert fed.stats.shard_failures == 1

    def test_retry_budget_and_backoff_charged_to_gather(self):
        cfg = FederationConfig(
            shard_retry_budget=2, retry_backoff_base=0.5, retry_backoff_multiplier=2.0
        )
        fed = _federation(n_shards=2, federation=cfg)
        fed.kill_shard(1)
        result = fed.execute(WIDE)
        assert result.shard_retries == 2
        # Backoff 0.5 + 1.0 = 1.5s occupies the failed shard's gather slot.
        assert result.collection_seconds >= 1.5

    def test_revive_restores_whole_answers(self):
        fed = _federation(n_shards=4)
        fed.kill_shard(1)
        assert fed.execute(WIDE).partial
        fed.revive_shard(1)
        recovered = fed.execute(WIDE)
        assert not recovered.partial and not recovered.failed_shards

    def test_coordinator_cooldown_skips_failed_shard_without_retries(self):
        cfg = FederationConfig(shard_retry_budget=1, cooldown_seconds=120.0)
        fed = _federation(n_shards=2, federation=cfg)
        fed.kill_shard(0)
        fed.execute(WIDE)
        attempts = fed.stats.shard_attempts
        fed.clock.advance(10.0)  # still inside the shard cooldown
        again = fed.execute(WIDE)
        assert again.partial and again.failed_shards == (0,)
        assert fed.stats.shard_cooldown_skips == 1
        # The cooled-down shard was not contacted at all this round.
        assert fed.stats.shard_attempts == attempts + 1  # only shard 1

    def test_health_state_survives_rebuild(self):
        fed = _federation(n_shards=2)
        fed.kill_shard(1)
        fed.register_sensor(GeoPoint(50.0, 50.0), expiry_seconds=300.0)
        fed.rebuild_index()
        assert fed.execute(WIDE).failed_shards == (1,)


class TestBatch:
    def _queries(self):
        return [
            WIDE,
            SensorQuery(
                region=Rect(10, 10, 60, 60), staleness_seconds=120.0, sample_size=20
            ),
            SensorQuery(region=Rect(40, 40, 95, 95), staleness_seconds=120.0),
        ]

    def test_batch_reassembles_per_query_results(self):
        fed = _federation(n_shards=4)
        batch = fed.execute_batch(self._queries())
        assert len(batch.results) == 3
        assert not batch.partial
        assert batch.stats.queries == 3
        assert set(batch.shard_seconds) <= set(range(4))
        for result, query in zip(batch.results, self._queries()):
            assert result.query == query
            assert result.result_weight > 0

    def test_batch_with_killed_shard_degrades_routed_queries_only(self):
        fed = _federation(n_shards=4)
        fed.kill_shard(0)
        batch = fed.execute_batch(self._queries())
        assert batch.partial and batch.failed_shards == (0,)
        wide_result = batch.results[0]  # routes everywhere, so degraded
        assert wide_result.partial and wide_result.failed_shards == (0,)
        untouched = [
            r for r in batch.results if 0 not in {s for s, _ in fed._scatter_plan(
                r.query, fed._route(r.query))}
        ]
        for result in untouched:
            assert not result.partial

    def test_empty_batch(self):
        fed = _federation(n_shards=2)
        batch = fed.execute_batch([])
        assert batch.results == [] and not batch.partial


class TestIntrospection:
    def test_explain_lists_scatter_and_skips_killed(self):
        fed = _federation(n_shards=4)
        fed.kill_shard(3)
        plan = fed.explain(WIDE)
        assert [entry["shard"] for entry in plan["scatter"]] == [0, 1, 2, 3]
        assert plan["skipped_shards"] == [3]
        assert set(plan["shards"]) == {0, 1, 2}

    def test_stats_summary_shape(self):
        fed = _federation(n_shards=2)
        fed.execute(WIDE)
        summary = fed.stats_summary()
        assert summary["n_shards"] == 2
        assert summary["total_sensors"] == 240
        assert len(summary["directory"]) == 2
        assert summary["federation"]["queries"] == 1

    def test_sensor_types_and_shards_accessors(self):
        fed = _federation(n_shards=2)
        assert fed.sensor_types() == ["humidity", "temperature"]
        assert len(fed.shards()) == 2
        assert fed.shard(0) is fed.shards()[0]

    def test_kmeans_partitioner_builds_working_federation(self):
        fed = _federation(
            n_shards=3, partitioner=KMeansPartitioner(3, seed=1)
        )
        assert fed.n_shards == 3
        assert fed.execute(WIDE).result_weight > 0

    def test_misaligned_partitioner_rejected(self):
        class Broken:
            n_shards = 2

            def assign(self, sensors):
                return [0]

        portal = FederatedPortal(partitioner=Broken())
        portal.register_sensor(GeoPoint(1.0, 1.0), expiry_seconds=300.0)
        portal.register_sensor(GeoPoint(2.0, 2.0), expiry_seconds=300.0)
        with pytest.raises(ValueError, match="misaligned"):
            portal.rebuild_index()

    def test_no_sensors_rejected(self):
        with pytest.raises(ValueError, match="no sensors"):
            FederatedPortal(n_shards=2).rebuild_index()


class TestContinuousOverFederation:
    def test_continuous_manager_drives_federated_portal(self):
        """The continuous-query manager only needs clock + execute, so a
        federation drops in: subscriptions run scattered and record
        merged (possibly partial) results."""
        fed = _federation(n_shards=4)
        manager = ContinuousQueryManager(fed, stagger_seconds=10.0)
        sub = manager.subscribe(WIDE, refresh_seconds=30.0)
        ran = manager.tick()
        assert len(ran) == 1
        assert sub.last_result is not None
        assert sub.last_result.result_weight > 0
        fed.kill_shard(1)
        fed.clock.advance(30.0)
        ran = manager.tick()
        assert len(ran) == 1
        assert sub.last_result.partial
