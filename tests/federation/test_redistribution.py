"""Cross-shard REDISTRIBUTE failure handling and EXPLAIN consistency.

The top-up rounds run *after* the first gather, against shards that
already did a round of work.  A shard that dies or times out mid-top-up
must degrade exactly like a first-round casualty: the federated answer
keeps everything round 1 delivered, flags the query partial, and the
shard's transport-layer dedup tables stay intact for the next query.

EXPLAIN, being the read-only twin of execute, must describe the same
scatter and the same redistribution plan that an execute on the same
portal actually performs.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.federation import FederatedPortal, FederationConfig, ShardDownError
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorQuery
from repro.transport import TransportConfig

EXTENT = 100.0
WHOLE = Rect(0.0, 0.0, EXTENT, EXTENT)


def _skewed_federation(
    n_sensors: int = 200,
    seed: int = 11,
    rounds: int = 2,
    timeout: float | None = None,
) -> FederatedPortal:
    """Four grid shards (2x2: x-strips split by y), the low-x half of
    the fleet nearly dead: a sampled query over the whole extent falls
    short on shards 0/1 and tops up from healthy shards 2/3."""
    fed = FederatedPortal(
        n_shards=4,
        transport=TransportConfig.parity(inflight_ttl=120.0),
        federation=FederationConfig(
            shard_retry_budget=0,
            shard_timeout_seconds=timeout,
            redistribution_enabled=rounds > 0,
            redistribution_rounds=max(rounds, 0),
        ),
        max_sensors_per_query=None,
        network_options={"latency_jitter": 0.0},
    )
    rng = np.random.default_rng(seed)
    for x, y in rng.random((n_sensors, 2)) * EXTENT:
        fed.register_sensor(
            GeoPoint(float(x), float(y)),
            expiry_seconds=600.0,
            availability=0.05 if x < EXTENT / 2 else 1.0,
        )
    fed.rebuild_index()
    # Calibrate so the flaky half is *expected* to under-deliver (the
    # sampler plans with the model's estimate, not the hidden truth).
    for shard in fed.shards():
        for sensor in shard.registry.all():
            a = sensor.availability
            fed_obs = round(a * 400)
            shard.availability.seed(sensor.sensor_id, fed_obs, 400 - fed_obs)
    return fed


def _query(target: int = 80) -> SensorQuery:
    return SensorQuery(region=WHOLE, staleness_seconds=600.0, sample_size=target)


class TestTopupShardFailure:
    """Satellite regression: a shard lost *during* the top-up round."""

    def _arm_second_call_failure(self, fed, shard_id):
        """The shard answers its round-1 sub-query, then goes down."""
        shard = fed.shard(shard_id)
        real = shard.execute
        calls = {"n": 0}

        def flaky_execute(query):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise ShardDownError(f"shard {shard_id} crashed mid-top-up")
            return real(query)

        shard.execute = flaky_execute
        return calls, real

    def test_crash_during_topup_keeps_round1_and_flags_partial(self):
        fed = _skewed_federation(rounds=1)
        calls, real = self._arm_second_call_failure(fed, 3)

        result = fed.execute(_query())
        assert calls["n"] == 2, "the top-up round must have re-called shard 3"
        assert result.partial
        assert 3 in result.failed_shards
        # Round 1's answer from the now-dead shard is NOT thrown away.
        assert 3 in result.shard_results
        assert result.shard_results[3].result_weight > 0
        assert result.result_weight >= sum(
            r.result_weight for r in result.shard_results.values()
        )
        # The surviving healthy shard still topped up, but the dead
        # shard's share of the shortfall stayed open.
        assert result.redistribution_rounds_run == 1
        assert result.sampled_shortfall > 0

        # The shard's dispatcher/cache state is unpoisoned: the crash
        # happened before any round-2 work, so after revival a repeat of
        # the round-1 scatter (top-ups off to isolate it) is served from
        # the shard's slot caches and dedup tables with zero new wire
        # traffic.
        shard = fed.shard(3)
        shard.execute = real
        fed.revive_shard(3)
        fed.federation = replace(fed.federation, redistribution_enabled=False)
        attempted = shard.network.stats.probes_attempted
        fed.clock.advance(10.0)
        again = fed.execute(_query())
        assert not again.partial
        assert again.shard_results[3].result_weight > 0
        # The randomized sampler may pick a few sensors outside the
        # warmed set; a wiped or poisoned table would re-probe the full
        # sample (~20 sensors).
        assert shard.network.stats.probes_attempted - attempted <= 5, (
            "re-query within ttl must be served from the tables"
        )

    def test_timeout_during_topup_keeps_round1_and_flags_partial(self):
        """Same degradation when the top-up answer is merely too slow:
        the round-2 sub-query's collection time blows a deadline the
        round-1 answer met."""
        fed = _skewed_federation(rounds=1, timeout=1e6)
        shard = fed.shard(3)
        real = shard.execute
        calls = {"n": 0}

        def slow_execute(query):
            calls["n"] += 1
            result = real(query)
            if calls["n"] >= 2:
                return replace(result, collection_seconds=2e6)
            return result

        shard.execute = slow_execute
        result = fed.execute(_query())
        assert calls["n"] == 2
        assert result.partial
        assert 3 in result.timed_out_shards
        assert 3 in result.shard_results
        assert result.shard_results[3].result_weight > 0
        assert result.redistribution_rounds_run >= 1

    def test_healthy_topup_is_not_partial(self):
        """Control: the same federation without the failure injection
        recovers the shortfall and stays whole."""
        fed = _skewed_federation()
        result = fed.execute(_query())
        assert not result.partial
        assert result.redistribution_rounds_run >= 1
        assert result.topup_sensors_gained > 0


class TestExplainMatchesExecute:
    """Satellite: EXPLAIN's scatter and redistribution plan describe
    what execute actually does on the same portal."""

    def test_scatter_plan_matches_executed_shards(self):
        fed = _skewed_federation()
        query = _query()
        plan = fed.explain(query)
        result = fed.execute(query)

        scatter = {row["shard"]: row["sample_size"] for row in plan["scatter"]}
        assert set(scatter) == set(result.shard_results)
        assert sum(scatter.values()) == query.sample_size
        # Each shard was asked exactly the planned sub-query size
        # (requested readings = share x the shard's type-tree fan-out).
        for shard_id, sub in result.shard_results.items():
            n_trees = max(1, len(fed.directory.entry(shard_id).sensor_types))
            assert sub.sample_requested == scatter[shard_id] * n_trees

    def test_redistribution_plan_matches_execute_behavior(self):
        fed = _skewed_federation()
        query = _query()
        plan = fed.explain(query)["redistribution"]
        result = fed.execute(query)

        assert plan["enabled"] is True
        assert plan["rounds"] == fed.federation.redistribution_rounds
        assert plan["eligible"] is True
        assert result.redistribution_rounds_run >= 1
        assert result.redistribution_rounds_run <= plan["rounds"]
        assert plan["target"] == query.sample_size
        assert plan["target_readings"] == result.sample_requested
        # Pool estimates cover exactly the routed shards, and no top-up
        # gained more than the advertised pools could hold.
        assert set(plan["pool_estimates"]) == set(result.shard_results)
        assert result.topup_sensors_gained <= sum(
            plan["pool_estimates"].values()
        )

    def test_ineligible_when_disabled_or_single_shard(self):
        disabled = _skewed_federation(rounds=0)
        plan = disabled.explain(_query())["redistribution"]
        assert plan["eligible"] is False
        result = disabled.execute(_query())
        assert result.redistribution_rounds_run == 0
        assert result.topup_results == ()

        single = FederatedPortal(n_shards=1, max_sensors_per_query=None)
        rng = np.random.default_rng(3)
        for x, y in rng.random((50, 2)) * EXTENT:
            single.register_sensor(
                GeoPoint(float(x), float(y)), expiry_seconds=600.0
            )
        single.rebuild_index()
        plan = single.explain(_query(20))["redistribution"]
        assert plan["eligible"] is False
        assert single.execute(_query(20)).redistribution_rounds_run == 0

    def test_unsampled_query_is_never_eligible(self):
        fed = _skewed_federation()
        query = SensorQuery(region=WHOLE, staleness_seconds=600.0)
        plan = fed.explain(query)["redistribution"]
        assert plan["target"] is None
        assert plan["eligible"] is False
        assert fed.execute(query).redistribution_rounds_run == 0
