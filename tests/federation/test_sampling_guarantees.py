"""Statistical guarantees of federated sampling (Theorem 2, one level up).

The paper's Theorem 2 says layered sampling gives every in-region
sensor the same inclusion probability ``R/N``.  The federation must
preserve that when it splits ``R`` across shards by Algorithm 1's share
rule: a sensor's inclusion frequency may not depend on *which shard it
landed on*, however skewed the partition populations are.

The Monte-Carlo suite here runs a seeded repeated-sampling experiment
over deliberately skewed 2 / 4 / 8-shard partitions and checks

* per-shard inclusion frequency within the share-quantization bound
  plus a binomial tolerance of the uniform ``R/N``, and
* per-sensor frequencies free of gross outliers (a cache- or
  RNG-reuse bug would pin the same sensors every round).

A second group pins the cross-shard REDISTRIBUTE guarantees at test
scale: recovery to within 2% of the target on the availability-skewed
fleet (or provable pool exhaustion), no top-up ever exceeding a
shard's pool, and termination inside the round bound even when the
target is unfillable.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bench.federation import run_shortfall_recovery
from repro.core.config import COLRTreeConfig
from repro.federation import FederatedPortal, FederationConfig, make_partitioner
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorQuery

EXTENT = 100.0
WHOLE = Rect(0.0, 0.0, EXTENT, EXTENT)


class _FixedStripsPartitioner:
    """Equal-*width* vertical strips (NOT equal population — the stock
    ``GridPartitioner`` balances populations by construction, which
    would defeat a skew test)."""

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards

    def assign(self, sensors) -> list[int]:
        width = EXTENT / self.n_shards
        return [
            min(int(s.location.x / width), self.n_shards - 1) for s in sensors
        ]


def _skewed_portal(n_sensors: int, n_shards: int, seed: int) -> FederatedPortal:
    """A federation whose shards hold very different populations:
    sensor density falls off quadratically in x, and the fixed-width
    strip partitioner does not rebalance, so low-x strips are crowded
    and high-x strips sparse.  Availability is 1.0 and caching /
    oversampling are off, so every execute draws a fresh independent
    sample and delivers it deterministically."""
    fed = FederatedPortal(
        partitioner=_FixedStripsPartitioner(n_shards),
        config=COLRTreeConfig(caching_enabled=False, oversampling_enabled=False),
        max_sensors_per_query=None,
        network_options={"latency_jitter": 0.0},
    )
    rng = np.random.default_rng(seed)
    xs = EXTENT * rng.random(n_sensors) ** 2
    ys = EXTENT * rng.random(n_sensors)
    for i in range(n_sensors):
        fed.register_sensor(
            GeoPoint(float(xs[i]), float(ys[i])),
            expiry_seconds=600.0,
            availability=1.0,
        )
    fed.rebuild_index()
    return fed


def _included_ids(result) -> set[int]:
    ids: set[int] = set()
    for answer in result.answers:
        for reading in answer.probed_readings:
            ids.add(reading.sensor_id)
        for reading in answer.cached_readings:
            ids.add(reading.sensor_id)
    return ids


class TestFederatedInclusionUniformity:
    """Theorem 2, federation edition: inclusion frequency is flat across
    shards of wildly different populations."""

    N_SENSORS = 1200
    TARGET = 180
    REPEATS = 60

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_per_shard_inclusion_matches_global_rate(self, n_shards):
        fed = _skewed_portal(self.N_SENSORS, n_shards, seed=7)
        populations = [e.weight for e in fed.directory.entries()]
        # The partitions must actually be skewed for this test to mean
        # anything: the most crowded strip holds at least double the
        # population of the sparsest one.
        assert max(populations) >= 2 * min(populations)

        query = SensorQuery(
            region=WHOLE, staleness_seconds=600.0, sample_size=self.TARGET
        )
        counts: dict[int, int] = {}
        for _ in range(self.REPEATS):
            for sid in _included_ids(fed.execute(query)):
                counts[sid] = counts.get(sid, 0) + 1

        p = self.TARGET / self.N_SENSORS
        for entry in fed.directory.entries():
            shard = fed.shard(entry.shard_id)
            members = [s.sensor_id for s in shard.registry.all()]
            n_i = len(members)
            freq = sum(counts.get(sid, 0) for sid in members) / (
                self.REPEATS * n_i
            )
            # The deterministic largest-remainder share is off the exact
            # quota by at most one unit (|share_i/n_i - p| <= 1/n_i);
            # on top of that the Monte-Carlo mean of n_i * REPEATS
            # Bernoulli draws gets a 5-sigma binomial allowance.
            sigma = math.sqrt(p * (1.0 - p) / (self.REPEATS * n_i))
            tolerance = 1.0 / n_i + 5.0 * sigma
            assert abs(freq - p) <= tolerance, (
                f"shard {entry.shard_id} (n={n_i}): inclusion {freq:.4f} vs "
                f"uniform {p:.4f} (tolerance {tolerance:.4f})"
            )

    def test_no_sensor_is_pinned_or_starved(self):
        """Per-sensor frequencies stay inside a generous binomial band —
        the failure mode being hunted is systematic (a cached sample
        replayed every round shows up as frequency 1.0)."""
        fed = _skewed_portal(self.N_SENSORS, 4, seed=11)
        query = SensorQuery(
            region=WHOLE, staleness_seconds=600.0, sample_size=self.TARGET
        )
        counts: dict[int, int] = {}
        for _ in range(self.REPEATS):
            for sid in _included_ids(fed.execute(query)):
                counts[sid] = counts.get(sid, 0) + 1
        p = self.TARGET / self.N_SENSORS
        # Share quantization shifts a shard's per-sensor rate by at most
        # 1/n_i; with the smallest shard comfortably over 100 sensors a
        # 6-sigma band plus 0.01 covers it for every sensor.
        sigma = math.sqrt(p * (1.0 - p) / self.REPEATS)
        band = 6.0 * sigma + 0.01
        worst = max(
            abs(counts.get(s.sensor_id, 0) / self.REPEATS - p)
            for s in fed.registry.all()
        )
        assert worst <= band, f"worst per-sensor deviation {worst:.3f} > {band:.3f}"


class TestShortfallRecovery:
    """The bench's acceptance claim at test scale: >= 10% first-round
    shortfall on the availability-skewed fleet, recovered to within 2%
    of the target by one top-up round (or every pool provably dry)."""

    def test_topup_recovers_skewed_fleet_shortfall(self):
        probe = run_shortfall_recovery(2_000, seed=1, n_shards=8)
        assert probe["first_round_shortfall_fraction"] >= 0.10
        assert probe["redistribution_rounds_run"] >= 1
        assert probe["topup_sensors_gained"] > 0
        assert (
            probe["recovered_gap_fraction"] <= 0.02
            or probe["all_pools_exhausted"]
        )
        # The residual shortfall the coordinator reports is consistent
        # with what the probe measured from the merged answer.
        assert probe["residual_shortfall"] == max(
            0, probe["target_readings"] - probe["recovered_achieved"]
        )

    def test_disabled_redistribution_leaves_shortfall_standing(self):
        probe = run_shortfall_recovery(
            2_000, seed=1, n_shards=8, redistribution_rounds=0
        )
        assert probe["first_round_shortfall_fraction"] >= 0.10


class TestRedistributionInvariants:
    """Safety properties of the top-up rounds, checked on live
    federations rather than the splitter in isolation."""

    def _skewed_availability_portal(
        self, n_sensors: int, n_shards: int, seed: int, rounds: int
    ) -> FederatedPortal:
        fed = FederatedPortal(
            partitioner=make_partitioner("grid", n_shards, seed=seed),
            max_sensors_per_query=None,
            network_options={"latency_jitter": 0.0},
            federation=FederationConfig(
                shard_retry_budget=0,
                redistribution_enabled=True,
                redistribution_rounds=rounds,
            ),
        )
        rng = np.random.default_rng(seed)
        for x, y in rng.random((n_sensors, 2)) * EXTENT:
            fed.register_sensor(
                GeoPoint(float(x), float(y)),
                expiry_seconds=600.0,
                availability=0.15 if x < EXTENT / 2 else 1.0,
            )
        fed.rebuild_index()
        return fed

    @pytest.mark.parametrize("target", [40, 150, 400])
    def test_topups_never_exceed_shard_pools(self, target):
        """However the shortfall re-splits, no shard ever contributes
        more distinct sensors than it owns (top-up shares are capped by
        the residual-pool estimate)."""
        fed = self._skewed_availability_portal(800, 4, seed=3, rounds=2)
        query = SensorQuery(
            region=WHOLE, staleness_seconds=600.0, sample_size=target
        )
        result = fed.execute(query)
        per_shard: dict[int, set[int]] = {}
        for sid, sub in result.shard_results.items():
            per_shard.setdefault(sid, set()).update(_included_ids(sub))
        for sid, sub in result.topup_results:
            per_shard.setdefault(sid, set()).update(_included_ids(sub))
        for sid, ids in per_shard.items():
            population = fed.directory.entry(sid).weight
            assert len(ids) <= population

    def test_unfillable_target_terminates_within_round_bound(self):
        """A target beyond the whole fleet's pool cannot close; the
        rounds must stop early on a zero-gain round instead of burning
        the full budget, and the shortfall must be reported."""
        fed = self._skewed_availability_portal(400, 4, seed=5, rounds=6)
        query = SensorQuery(
            region=WHOLE, staleness_seconds=600.0, sample_size=5_000
        )
        result = fed.execute(query)
        assert result.redistribution_rounds_run <= 6
        assert result.sampled_shortfall > 0
        assert not result.partial  # shortfall is not a failure
        # Every distinct sensor at most once in the merged answer.
        seen: set[int] = set()
        for answer in result.answers:
            for reading in answer.probed_readings + answer.cached_readings:
                assert reading.sensor_id not in seen
                seen.add(reading.sensor_id)

    def test_single_shard_federation_never_redistributes(self):
        fed = self._skewed_availability_portal(300, 1, seed=9, rounds=3)
        query = SensorQuery(
            region=WHOLE, staleness_seconds=600.0, sample_size=150
        )
        result = fed.execute(query)
        assert result.redistribution_rounds_run == 0
        assert result.topup_results == ()
        assert fed.stats.redistributions == 0
