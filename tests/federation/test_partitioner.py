"""Fleet partitioners: coverage, balance, determinism."""

from __future__ import annotations

import pytest

from repro.federation import (
    GridPartitioner,
    KMeansPartitioner,
    Partitioner,
    make_partitioner,
)

from tests.conftest import make_registry


def _populations(assignment, n_shards):
    counts = [0] * n_shards
    for shard in assignment:
        counts[shard] += 1
    return counts


class TestGridPartitioner:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 8])
    def test_covers_every_sensor_in_range(self, n_shards):
        sensors = make_registry(n=500, seed=3).all()
        assignment = GridPartitioner(n_shards).assign(sensors)
        assert len(assignment) == len(sensors)
        assert all(0 <= s < n_shards for s in assignment)
        assert all(c > 0 for c in _populations(assignment, n_shards))

    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_populations_balanced(self, n_shards):
        sensors = make_registry(n=800, seed=3).all()
        counts = _populations(GridPartitioner(n_shards).assign(sensors), n_shards)
        # array_split spreads remainders: populations differ by at most
        # a couple of sensors per grid dimension.
        assert max(counts) - min(counts) <= 4

    def test_grid_shape_is_most_square_factorization(self):
        assert (GridPartitioner(4).nx, GridPartitioner(4).ny) == (2, 2)
        assert (GridPartitioner(8).nx, GridPartitioner(8).ny) == (2, 4)
        assert (GridPartitioner(6).nx, GridPartitioner(6).ny) == (2, 3)
        assert (GridPartitioner(7).nx, GridPartitioner(7).ny) == (1, 7)

    def test_deterministic(self):
        sensors = make_registry(n=300, seed=9).all()
        assert GridPartitioner(4).assign(sensors) == GridPartitioner(4).assign(sensors)

    def test_single_shard_is_identity(self):
        sensors = make_registry(n=50, seed=1).all()
        assert GridPartitioner(1).assign(sensors) == [0] * len(sensors)

    def test_empty_fleet(self):
        assert GridPartitioner(4).assign([]) == []

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            GridPartitioner(0)


class TestKMeansPartitioner:
    def test_covers_every_sensor_no_empty_shard(self):
        sensors = make_registry(n=400, seed=3).all()
        assignment = KMeansPartitioner(4, seed=0).assign(sensors)
        assert len(assignment) == len(sensors)
        assert all(c > 0 for c in _populations(assignment, 4))

    def test_deterministic_per_seed(self):
        sensors = make_registry(n=300, seed=3).all()
        a = KMeansPartitioner(3, seed=5).assign(sensors)
        b = KMeansPartitioner(3, seed=5).assign(sensors)
        assert a == b

    def test_more_shards_than_sensors_clamps(self):
        sensors = make_registry(n=3, seed=3).all()
        assignment = KMeansPartitioner(8, seed=0).assign(sensors)
        assert len(assignment) == 3
        assert all(0 <= s < 3 for s in assignment)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            KMeansPartitioner(0)
        with pytest.raises(ValueError):
            KMeansPartitioner(2, iterations=0)


class TestFactory:
    def test_grid(self):
        p = make_partitioner("grid", 4)
        assert isinstance(p, GridPartitioner) and isinstance(p, Partitioner)

    def test_kmeans(self):
        p = make_partitioner("kmeans", 3, seed=7)
        assert isinstance(p, KMeansPartitioner) and p.seed == 7

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("consistent-hashing", 4)
