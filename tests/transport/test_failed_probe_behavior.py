"""Failed-probe behavior on flaky networks (availability < 1).

Characterizes the sync baseline — a sensor that fails is re-contacted
on every subsequent tick that wants it — and pins the transport
semantics that replace it: failure memory in the recently-probed table,
cooldown for sensors the availability model has written off, and
exactly one availability-model observation per logical probe no matter
how many wire attempts retries add.
"""

from __future__ import annotations

from dataclasses import replace

from repro import AvailabilityModel, SensorNetwork
from repro.transport import ProbeDispatcher, TransportConfig
from tests.conftest import make_registry


def _network(availability, seed=3, n=40):
    registry = make_registry(n=n, availability=availability, seed=11)
    return SensorNetwork(
        registry.all(), availability_model=AvailabilityModel(), seed=seed
    )


def test_sync_baseline_recontacts_failures_every_tick():
    # Characterization: without the transport layer, a dead sensor costs
    # one wire probe on every tick that asks for it, forever.
    net = _network(availability=0.0)
    ids = [s.sensor_id for s in net.sensors()][:10]
    for tick in range(5):
        result = net.probe(ids, now=tick * 45.0)
        assert len(result.unavailable) == 10
    assert net.stats.probes_attempted == 50
    assert net.stats.probes_succeeded == 0
    # ...and the model keeps accumulating evidence it never acts on.
    assert all(net.availability_model.observed_probes(sid) == 5 for sid in ids)


def test_transport_failure_memory_caps_recontact():
    # Same workload through the dispatcher with cooldown disabled: the
    # first tick pays 10 probes, ticks inside the ttl are served from
    # failure memory, and only ttl expiry re-contacts.
    net = _network(availability=0.0)
    ids = [s.sensor_id for s in net.sensors()][:10]
    cfg = TransportConfig(
        seed=7,
        max_retries=0,
        overlap_enabled=False,
        inflight_ttl=60.0,
        cooldown_seconds=0.0,
    )
    d = ProbeDispatcher(net, cfg)
    for tick in range(5):
        rnd = d.collect(ids, now=tick * 45.0)
        assert len(rnd.readings) == 0
    # Ticks at t=0/90/180 contact (ttl lapsed); t=45 and t=135 are
    # served from failure memory.
    assert net.stats.probes_attempted == 30
    assert d.stats.dedup_recent == 20
    assert all(net.availability_model.observed_probes(sid) == 3 for sid in ids)


def test_cooldown_takes_precedence_over_failure_memory():
    # With both tables armed, a sensor whose estimate fell below the
    # threshold is skipped by cooldown on every tick — failure memory
    # never even gets consulted, and the model's history stays at one
    # logical probe.
    net = _network(availability=0.0)
    ids = [s.sensor_id for s in net.sensors()][:10]
    cfg = TransportConfig(
        seed=7,
        max_retries=0,
        overlap_enabled=False,
        inflight_ttl=60.0,
        cooldown_seconds=300.0,
        cooldown_threshold=0.5,
    )
    d = ProbeDispatcher(net, cfg)
    for tick in range(5):
        rnd = d.collect(ids, now=tick * 45.0)
        assert len(rnd.readings) == 0
    assert net.stats.probes_attempted == 10
    assert d.stats.cooldown_skips == 40
    assert all(net.availability_model.observed_probes(sid) == 1 for sid in ids)


def test_cooldown_expires_and_allows_reassessment():
    net = _network(availability=0.0)
    sid = net.sensors()[0].sensor_id
    cfg = TransportConfig.parity(cooldown_seconds=100.0)
    d = ProbeDispatcher(net, cfg)
    d.collect([sid], now=0.0)
    assert d.collect([sid], now=50.0).cooldown_skipped == [sid]
    # Cooldown is re-armed from the *last resolution*, not extended by
    # skipped ticks: the t=0 failure cools until t=100.
    rnd = d.collect([sid], now=101.0)
    assert rnd.cooldown_skipped == []
    assert rnd.unavailable == [sid]
    assert net.stats.probes_attempted == 2
    assert net.availability_model.observed_probes(sid) == 2


def test_retries_do_not_inflate_availability_history():
    # A flaky sensor probed with retries across several ticks: the
    # wire-attempt count grows with retries, the model's history grows
    # exactly once per logical probe.
    net = _network(availability=0.0)
    sid = net.sensors()[0].sensor_id
    cfg = TransportConfig(
        seed=7, max_retries=3, inflight_ttl=0.0, cooldown_seconds=0.0
    )
    d = ProbeDispatcher(net, cfg)
    for tick in range(4):
        d.collect([sid], now=tick * 400.0)
    assert net.stats.probes_attempted == 16  # 4 ticks x (1 + 3 retries)
    assert net.stats.probes_retried == 12
    assert net.availability_model.observed_probes(sid) == 4
    # Four observed failures under a Beta(1, 1) prior.
    assert net.availability_model.estimate(sid) == 1.0 / 6.0


def test_mixed_fleet_only_flaky_sensors_cool_down():
    registry = make_registry(n=40, availability=1.0, seed=11)
    sensors = [
        replace(s, availability=0.0) if i < 10 else s
        for i, s in enumerate(registry.all())
    ]
    flaky_ids = {s.sensor_id for s in sensors[:10]}
    model = AvailabilityModel()
    net = SensorNetwork(sensors, availability_model=model, seed=3)
    cfg = TransportConfig.parity(cooldown_seconds=300.0, cooldown_threshold=0.5)
    d = ProbeDispatcher(net, cfg)
    all_ids = [s.sensor_id for s in sensors]
    d.collect(all_ids, now=0.0)
    rnd = d.collect(all_ids, now=30.0, max_staleness=10.0)
    assert set(rnd.cooldown_skipped) == flaky_ids
    assert set(rnd.readings) == {sid for sid in all_ids if sid not in flaky_ids}
