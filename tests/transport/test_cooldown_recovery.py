"""Cooldown recovery: a sensor the availability model has written off
must become probeable again once its cooldown expires, and coordinator-
level shard timeouts must not corrupt the dispatcher's dedup tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AvailabilityModel, SensorNetwork
from repro.federation import FederatedPortal, FederationConfig
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorQuery
from repro.transport import ProbeDispatcher, TransportConfig

from tests.conftest import make_registry


def _dispatcher(registry, **config):
    network = SensorNetwork(
        registry.all(), availability_model=AvailabilityModel(), seed=3
    )
    defaults = dict(
        max_retries=0,
        overlap_enabled=False,
        inflight_ttl=0.0,
        cooldown_seconds=300.0,
        cooldown_threshold=0.5,
    )
    defaults.update(config)
    return ProbeDispatcher(network, TransportConfig(**defaults))


class TestSensorCooldownRecovery:
    def test_written_off_sensor_probeable_again_after_cooldown(self):
        """Dead fleet: one failure each drops the Beta(1,1) estimate to
        1/3 < threshold, so every sensor enters cooldown.  Requests
        inside the window are skipped without traffic; the first request
        after expiry goes back on the wire."""
        registry = make_registry(n=6, availability=0.0, seed=1)
        dispatcher = _dispatcher(registry)
        network = dispatcher.network
        ids = [s.sensor_id for s in registry.all()]

        first = dispatcher.collect(ids, now=0.0)
        assert not first.readings
        assert network.stats.probes_attempted == len(ids)

        during = dispatcher.collect(ids, now=100.0)
        assert sorted(during.cooldown_skipped) == sorted(ids)
        assert dispatcher.stats.cooldown_skips == len(ids)
        assert network.stats.probes_attempted == len(ids), (
            "cooldown window must suppress wire traffic entirely"
        )

        after = dispatcher.collect(ids, now=301.0)  # 0 + 300s expired
        assert not after.cooldown_skipped
        assert network.stats.probes_attempted == 2 * len(ids), (
            "expired cooldown must not keep the sensor written off"
        )

    def test_expired_entry_deleted_and_estimate_recovery_respected(self):
        """After the cooldown expires the table entry is dropped on the
        next submit; if the availability model has meanwhile recovered
        above the threshold, a fresh failure no longer re-arms it."""
        registry = make_registry(n=1, availability=0.0, seed=1)
        dispatcher = _dispatcher(registry)
        sid = registry.all()[0].sensor_id

        dispatcher.collect([sid], now=0.0)
        assert sid in dispatcher._cooldown_until
        # Operator intervention / long success history elsewhere: the
        # model now believes in the sensor again.
        dispatcher.network.availability_model.seed(sid, successes=20, failures=0)
        assert dispatcher.network.availability_model.estimate(sid) > 0.5

        dispatcher.collect([sid], now=301.0)
        assert sid not in dispatcher._cooldown_until, (
            "expired entry must be deleted, and a healthy estimate must "
            "not re-arm the cooldown on failure"
        )
        again = dispatcher.collect([sid], now=302.0)
        assert not again.cooldown_skipped

    def test_healthy_estimate_never_enters_cooldown(self):
        registry = make_registry(n=4, availability=0.0, seed=1)
        dispatcher = _dispatcher(registry)
        model = dispatcher.network.availability_model
        ids = [s.sensor_id for s in registry.all()]
        for sid in ids:
            model.seed(sid, successes=10, failures=0)
        dispatcher.collect(ids, now=0.0)
        assert not dispatcher._cooldown_until
        soon = dispatcher.collect(ids, now=1.0)
        assert not soon.cooldown_skipped
        assert dispatcher.network.stats.probes_attempted == 2 * len(ids)


class TestShardTimeoutDoesNotPoisonRecentTable:
    def _federation(self):
        portal = FederatedPortal(
            n_shards=2,
            transport=TransportConfig.parity(inflight_ttl=120.0),
            federation=FederationConfig(
                shard_retry_budget=0, shard_timeout_seconds=1e-6
            ),
            max_sensors_per_query=None,
        )
        rng = np.random.default_rng(11)
        for x, y in rng.random((200, 2)) * 100:
            portal.register_sensor(
                GeoPoint(float(x), float(y)),
                expiry_seconds=600.0,
                availability=0.5,
            )
        portal.rebuild_index()
        return portal

    def test_recent_table_survives_coordinator_timeout(self):
        """The coordinator drops a too-slow shard's *answer*, but the
        shard still did the work: its slot caches and its dispatcher's
        recently-probed table hold the round's outcomes.  A re-query
        within the ttl is absorbed (failures served from the table,
        successes from the tree caches) with zero new wire traffic —
        the timeout did not poison or wipe transport state."""
        portal = self._federation()
        query = SensorQuery(
            region=Rect(0.0, 0.0, 100.0, 100.0), staleness_seconds=300.0
        )

        first = portal.execute(query)
        assert set(first.timed_out_shards) == {0, 1}
        assert first.partial
        per_shard = {}
        for i in range(portal.n_shards):
            shard = portal.shard(i)
            stats = shard.network.stats
            assert stats.probes_attempted > 0
            failures = stats.probes_attempted - stats.probes_succeeded
            assert failures > 0
            assert shard.dispatcher.stats.dedup_recent == 0
            per_shard[i] = (stats.probes_attempted, failures)

        portal.clock.advance(10.0)
        second = portal.execute(query)
        # Served from caches/tables, the round has no wire latency and
        # comes in under even this absurd timeout.
        assert not second.timed_out_shards and not second.partial
        for i, (attempted, failures) in per_shard.items():
            shard = portal.shard(i)
            assert shard.network.stats.probes_attempted == attempted, (
                "re-query within ttl must be served from the tables"
            )
            assert shard.dispatcher.stats.dedup_recent == failures

    def test_generous_timeout_leaves_answers_whole(self):
        portal = self._federation()
        relaxed = FederatedPortal(
            n_shards=2,
            transport=TransportConfig.parity(inflight_ttl=120.0),
            federation=FederationConfig(shard_retry_budget=0),
            max_sensors_per_query=None,
        )
        rng = np.random.default_rng(11)
        for x, y in rng.random((200, 2)) * 100:
            relaxed.register_sensor(
                GeoPoint(float(x), float(y)),
                expiry_seconds=600.0,
                availability=0.5,
            )
        relaxed.rebuild_index()
        query = SensorQuery(
            region=Rect(0.0, 0.0, 100.0, 100.0), staleness_seconds=300.0
        )
        strict = portal.execute(query)
        whole = relaxed.execute(query)
        assert not whole.partial and not whole.timed_out_shards
        assert whole.result_weight > strict.result_weight
