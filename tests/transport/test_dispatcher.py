"""ProbeDispatcher mechanics: dedup tables, retry/backoff, cooldown,
overlap scheduling and streaming ingestion."""

from __future__ import annotations

import pytest

from repro import AvailabilityModel, COLRTree, COLRTreeConfig, SensorNetwork
from repro.transport import ProbeDispatcher, TransportConfig
from tests.conftest import make_registry


CFG = COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0)


def _network(availability=1.0, seed=3, n=60, **kw):
    registry = make_registry(n=n, availability=availability, seed=11)
    net = SensorNetwork(
        registry.all(), availability_model=AvailabilityModel(), seed=seed, **kw
    )
    return registry, net


# ----------------------------------------------------------------------
# Parity mode
# ----------------------------------------------------------------------
def test_parity_collect_matches_probe():
    _, a = _network(availability=0.6, latency_jitter=0.3, timeout_seconds=0.5)
    _, b = _network(availability=0.6, latency_jitter=0.3, timeout_seconds=0.5)
    ids = [s.sensor_id for s in a.sensors()][:40]
    expected = a.probe(ids, now=50.0)
    dispatcher = ProbeDispatcher(b, TransportConfig.parity())
    rnd = dispatcher.collect(ids, now=50.0)
    assert rnd.readings == dict(expected.readings)
    assert tuple(rnd.unavailable) == expected.unavailable
    assert tuple(rnd.timed_out) == expected.timed_out
    assert rnd.latency_seconds == expected.latency_seconds
    assert a.stats == b.stats
    assert not dispatcher.streams_ingestion


# ----------------------------------------------------------------------
# Recently-probed table
# ----------------------------------------------------------------------
def test_recent_success_served_within_ttl():
    _, net = _network()
    ids = [s.sensor_id for s in net.sensors()][:10]
    d = ProbeDispatcher(net, TransportConfig.parity(inflight_ttl=60.0))
    first = d.collect(ids, now=0.0)
    attempted = net.stats.probes_attempted
    second = d.collect(ids, now=30.0, max_staleness=120.0)
    assert net.stats.probes_attempted == attempted, "no new wire traffic"
    assert sorted(second.deduped) == sorted(ids)
    assert second.readings == first.readings
    assert d.stats.dedup_recent == len(ids)


def test_recent_entry_respects_staleness_bound():
    _, net = _network()
    ids = [s.sensor_id for s in net.sensors()][:5]
    d = ProbeDispatcher(net, TransportConfig.parity(inflight_ttl=60.0))
    d.collect(ids, now=0.0)
    rnd = d.collect(ids, now=30.0, max_staleness=10.0)
    # Cached readings are 30s old, bound is 10s: must re-contact.
    assert not rnd.deduped
    assert net.stats.probes_attempted == 2 * len(ids)
    assert all(r.timestamp == 30.0 for r in rnd.readings.values())


def test_recent_failure_not_recontacted_within_ttl():
    _, net = _network(availability=0.0)
    ids = [s.sensor_id for s in net.sensors()][:8]
    d = ProbeDispatcher(net, TransportConfig.parity(inflight_ttl=60.0))
    first = d.collect(ids, now=0.0)
    assert sorted(first.unavailable) == sorted(ids)
    second = d.collect(ids, now=20.0)
    assert net.stats.probes_attempted == len(ids)
    assert sorted(second.unavailable) == sorted(ids)
    assert sorted(second.deduped) == sorted(ids)


def test_ttl_expiry_recontacts():
    _, net = _network()
    ids = [s.sensor_id for s in net.sensors()][:4]
    d = ProbeDispatcher(net, TransportConfig.parity(inflight_ttl=60.0))
    d.collect(ids, now=0.0)
    d.collect(ids, now=61.0, max_staleness=1e9)
    assert net.stats.probes_attempted == 2 * len(ids)


# ----------------------------------------------------------------------
# In-flight attachment
# ----------------------------------------------------------------------
def test_inflight_waiters_share_one_contact():
    _, net = _network()
    ids = [s.sensor_id for s in net.sensors()][:6]
    d = ProbeDispatcher(net, TransportConfig(seed=5, inflight_ttl=0.0, cooldown_seconds=0.0))
    r1 = d.submit(ids, now=0.0)
    r2 = d.submit(ids, now=0.0)
    assert sorted(r2.deduped) == sorted(ids)
    d.drain([r1, r2])
    assert r1.resolved and r2.resolved
    assert net.stats.probes_attempted == len(ids)
    assert r1.readings == r2.readings
    assert d.stats.dedup_inflight == len(ids)


# ----------------------------------------------------------------------
# Retry / backoff
# ----------------------------------------------------------------------
def test_retries_bounded_and_metered():
    _, net = _network(availability=0.0)
    sid = net.sensors()[0].sensor_id
    d = ProbeDispatcher(
        net,
        TransportConfig(
            seed=2, max_retries=3, backoff_base=1.0, backoff_jitter=0.0,
            inflight_ttl=0.0, cooldown_seconds=0.0,
        ),
    )
    rnd = d.collect([sid], now=0.0)
    assert rnd.unavailable == [sid]
    assert net.stats.probes_attempted == 4  # 1 + 3 retries
    assert net.stats.probes_retried == 3
    assert rnd.retries_by_sensor == {sid: 3}
    # Backoff delays (1 + 2 + 4) are part of the round's makespan.
    assert rnd.latency_seconds > 7.0


def test_availability_recorded_once_per_logical_probe():
    _, net = _network(availability=0.0)
    sid = net.sensors()[0].sensor_id
    d = ProbeDispatcher(
        net,
        TransportConfig(seed=2, max_retries=4, inflight_ttl=0.0, cooldown_seconds=0.0),
    )
    d.collect([sid], now=0.0)
    assert net.stats.probes_attempted == 5
    assert net.availability_model.observed_probes(sid) == 1


def test_eventual_success_records_one_success():
    # availability 0.5: with enough retries some sensor fails first and
    # succeeds later; its history must show exactly one (successful)
    # logical outcome.
    _, net = _network(availability=0.5, seed=9)
    ids = [s.sensor_id for s in net.sensors()][:30]
    d = ProbeDispatcher(
        net,
        TransportConfig(seed=2, max_retries=6, inflight_ttl=0.0, cooldown_seconds=0.0),
    )
    rnd = d.collect(ids, now=0.0)
    assert rnd.retries > 0, "seed expected to produce at least one retry"
    retried_successes = [
        sid for sid in rnd.retries_by_sensor if sid in rnd.readings
    ]
    assert retried_successes, "expected a retried-then-successful sensor"
    model = net.availability_model
    for sid in ids:
        assert model.observed_probes(sid) == 1
    for sid in retried_successes:
        assert model.estimate(sid) > 0.5  # one success, zero failures


# ----------------------------------------------------------------------
# Cooldown
# ----------------------------------------------------------------------
def test_cooldown_skips_low_availability_sensor():
    _, net = _network(availability=0.0)
    ids = [s.sensor_id for s in net.sensors()][:5]
    cfg = TransportConfig.parity(cooldown_seconds=300.0, cooldown_threshold=0.5)
    d = ProbeDispatcher(net, cfg)
    d.collect(ids, now=0.0)  # fails; estimate drops to 1/3 < threshold
    rnd = d.collect(ids, now=30.0)
    assert sorted(rnd.cooldown_skipped) == sorted(ids)
    assert not rnd.readings and not rnd.unavailable
    assert net.stats.probes_attempted == len(ids)
    assert net.stats.probes_cooldown_skipped == len(ids)
    # Past the cooldown horizon the sensor is contacted again.
    later = d.collect(ids, now=301.0)
    assert not later.cooldown_skipped
    assert net.stats.probes_attempted == 2 * len(ids)


def test_reliable_sensor_never_cools_down():
    _, net = _network(availability=1.0)
    sid = net.sensors()[0].sensor_id
    # Seed a strong positive history, then force one failure via a
    # zero-availability twin sensor id… simpler: a healthy sensor that
    # succeeds never enters the failure path at all.
    d = ProbeDispatcher(net, TransportConfig.parity(cooldown_seconds=300.0))
    d.collect([sid], now=0.0)
    rnd = d.collect([sid], now=30.0, max_staleness=10.0)
    assert not rnd.cooldown_skipped


# ----------------------------------------------------------------------
# Overlap + streaming ingestion
# ----------------------------------------------------------------------
def _tree_with_dispatcher(config, availability=1.0, seed=3, **net_kw):
    registry = make_registry(n=80, availability=availability, seed=11)
    model = AvailabilityModel()
    net = SensorNetwork(registry.all(), availability_model=model, seed=seed, **net_kw)
    tree = COLRTree(registry.all(), CFG, network=net, availability_model=model)
    tree.transport = ProbeDispatcher(net, config)
    return tree, net


def test_streaming_ingestion_populates_cache():
    tree, net = _tree_with_dispatcher(
        TransportConfig(seed=4, stream_chunk=8), latency_jitter=0.2
    )
    ids = [s.sensor_id for s in net.sensors()][:40]
    rnd = tree.transport.collect(ids, now=0.0, tree=tree)
    assert rnd.resolved
    assert len(rnd.readings) == 40
    assert rnd.maintenance_ops > 0
    assert tree.cached_reading_count == 40
    assert tree.transport.stats.stream_flushes >= 5  # 40 readings / chunk 8
    assert tree.transport.stats.streamed_readings == 40


def test_streamed_cache_state_matches_sync_ingestion():
    # Same readings through streaming chunks vs one synchronous batch:
    # identical leaf contents and equivalent aggregates.
    tree_a, net_a = _tree_with_dispatcher(TransportConfig(seed=4, stream_chunk=7))
    registry = make_registry(n=80, availability=1.0, seed=11)
    net_b = SensorNetwork(registry.all(), availability_model=AvailabilityModel(), seed=3)
    tree_b = COLRTree(registry.all(), CFG, network=net_b, availability_model=AvailabilityModel())
    ids = [s.sensor_id for s in net_a.sensors()][:50]
    tree_a.transport.collect(ids, now=0.0, tree=tree_a)
    result = net_b.probe(ids, now=0.0)
    tree_b.insert_readings_batch(list(result.readings.values()), fetched_at=0.0)
    assert tree_a.cached_reading_count == tree_b.cached_reading_count
    for node_a, node_b in zip(tree_a.root.iter_subtree(), tree_b.root.iter_subtree()):
        if node_a.agg_cache is None or node_b.agg_cache is None:
            continue
        assert node_a.agg_cache.slot_ids() == node_b.agg_cache.slot_ids()
        for slot in node_a.agg_cache.slot_ids():
            sa, sb = node_a.agg_cache.sketch(slot), node_b.agg_cache.sketch(slot)
            assert sa.count == sb.count
            assert sa.total == pytest.approx(sb.total)
            assert sa.minimum == sb.minimum
            assert sa.maximum == sb.maximum


def test_overlapping_rounds_share_connections():
    _, net = _network(n=120, latency_jitter=0.3, seed=6)
    d = ProbeDispatcher(net, TransportConfig(seed=8, inflight_ttl=0.0, cooldown_seconds=0.0))
    all_ids = [s.sensor_id for s in net.sensors()]
    r1 = d.submit(all_ids[:40], now=0.0)
    r2 = d.submit(all_ids[40:80], now=0.0)
    r3 = d.submit(all_ids[80:], now=0.0)
    d.drain()
    assert r1.resolved and r2.resolved and r3.resolved
    assert d.stats.overlapped_rounds == 2
    # The tick's makespan beats running the three rounds back to back.
    makespan = max(r.latency_seconds for r in (r1, r2, r3))
    sequential = sum(r.latency_seconds for r in (r1, r2, r3))
    assert makespan < sequential


def test_empty_round_resolves_immediately():
    _, net = _network()
    d = ProbeDispatcher(net, TransportConfig(seed=1))
    rnd = d.submit([], now=0.0)
    assert rnd.resolved
    assert rnd.latency_seconds == 0.0
    d.drain()  # no-op


def test_unknown_sensor_raises():
    _, net = _network()
    d = ProbeDispatcher(net, TransportConfig.parity())
    with pytest.raises(KeyError):
        d.collect([999_999], now=0.0)
