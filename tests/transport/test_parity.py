"""Bit-identity of the dispatcher's parity mode with the sync paths.

``TransportConfig.parity()`` (no retries, no overlap, no dedup tables,
no cooldown) routes every probe through the dispatcher but must leave
zero observable trace: answers, stats, network counters and availability
estimates all match a portal with no transport at all — across multiple
ticks, flaky networks, and both ``execute`` and ``execute_batch``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery
from repro.transport import TransportConfig


def _build_portal(transport=None, availability=1.0, n=150):
    rng = np.random.default_rng(5)
    portal = SensorMapPortal(max_sensors_per_query=None, transport=transport)
    for x, y in rng.random((n, 2)) * 100:
        portal.register_sensor(
            GeoPoint(float(x), float(y)),
            expiry_seconds=300.0,
            availability=availability,
        )
    portal.rebuild_index()
    return portal


def _assert_answers_identical(plain, parity):
    assert len(plain.answers) == len(parity.answers)
    for a, b in zip(plain.answers, parity.answers):
        assert a.probed_readings == b.probed_readings
        assert a.cached_readings == b.cached_readings
        assert a.cached_sketches == b.cached_sketches
        assert a.cached_sketch_nodes == b.cached_sketch_nodes
        assert a.terminals == b.terminals
        assert a.stats == b.stats
    assert plain.groups == parity.groups
    assert plain.processing_seconds == parity.processing_seconds
    assert plain.collection_seconds == parity.collection_seconds


QUERIES = [
    SensorQuery(region=Rect(10.0, 10.0, 60.0, 60.0), staleness_seconds=120.0),
    SensorQuery(region=Rect(40.0, 30.0, 90.0, 85.0), staleness_seconds=120.0),
    SensorQuery(
        region=Rect(0.0, 0.0, 100.0, 100.0),
        staleness_seconds=120.0,
        sample_size=25,
    ),
    SensorQuery(region=Rect(55.0, 5.0, 95.0, 45.0), staleness_seconds=60.0),
]


@pytest.mark.parametrize("availability", [1.0, 0.8])
def test_execute_parity_over_ticks(availability):
    plain = _build_portal(availability=availability)
    parity = _build_portal(TransportConfig.parity(), availability=availability)
    assert parity.transport_enabled
    assert parity.dispatcher is not None
    for _ in range(3):
        for query in QUERIES:
            _assert_answers_identical(plain.execute(query), parity.execute(query))
        plain.clock.advance(45.0)
        parity.clock.advance(45.0)
    assert plain.network.stats == parity.network.stats


@pytest.mark.parametrize("availability", [1.0, 0.8])
def test_execute_batch_parity_over_ticks(availability):
    plain = _build_portal(availability=availability)
    parity = _build_portal(TransportConfig.parity(), availability=availability)
    for _ in range(3):
        a = plain.execute_batch(QUERIES)
        b = parity.execute_batch(QUERIES)
        assert len(a.results) == len(b.results)
        for ra, rb in zip(a.results, b.results):
            _assert_answers_identical(ra, rb)
        assert a.stats.probes_issued == b.stats.probes_issued
        assert a.stats.probes_contacted == b.stats.probes_contacted
        assert a.stats.probes_coalesced == b.stats.probes_coalesced
        assert a.stats.collection_seconds == b.stats.collection_seconds
        assert b.stats.probes_deduped == 0
        assert b.stats.probes_cooldown_skipped == 0
        assert b.stats.probes_retried == 0
        plain.clock.advance(45.0)
        parity.clock.advance(45.0)
    assert plain.network.stats == parity.network.stats


def test_parity_config_is_parity():
    assert TransportConfig.parity().is_parity
    assert not TransportConfig().is_parity
    cfg = TransportConfig(
        max_retries=0, overlap_enabled=False, inflight_ttl=0.0, cooldown_seconds=0.0
    )
    assert cfg.is_parity


def test_transport_disabled_means_no_dispatcher():
    portal = _build_portal(TransportConfig.parity(enabled=False), n=20)
    assert not portal.transport_enabled
    assert portal.dispatcher is None
