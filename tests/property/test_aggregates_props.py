"""Property-based tests of the aggregate sketch."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.aggregates import AggregateSketch, combine

value = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
timestamp = st.floats(min_value=0, max_value=1e7, allow_nan=False)
entries = st.lists(st.tuples(value, timestamp), min_size=1, max_size=40)


class TestSketchProperties:
    @given(entries)
    def test_matches_direct_computation(self, items):
        sketch = AggregateSketch.of(items)
        values = [v for v, _ in items]
        assert sketch.result("count") == len(values)
        assert math.isclose(sketch.result("sum"), sum(values), rel_tol=1e-9, abs_tol=1e-6)
        assert sketch.result("min") == min(values)
        assert sketch.result("max") == max(values)
        assert sketch.oldest_timestamp == min(t for _, t in items)

    @given(entries, entries)
    def test_merge_equals_concatenation(self, a, b):
        merged = AggregateSketch.of(a)
        merged.merge(AggregateSketch.of(b))
        direct = AggregateSketch.of(a + b)
        assert merged.count == direct.count
        assert math.isclose(merged.total, direct.total, rel_tol=1e-9, abs_tol=1e-6)
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum

    @given(entries, st.integers(min_value=1, max_value=5))
    def test_combine_invariant_under_partitioning(self, items, n_parts):
        """Splitting the entries into any number of sketches and
        combining them gives the same aggregate as one sketch."""
        parts = [items[i::n_parts] for i in range(n_parts)]
        total = combine(AggregateSketch.of(p) for p in parts if p)
        direct = AggregateSketch.of(items)
        assert total.count == direct.count
        assert math.isclose(total.total, direct.total, rel_tol=1e-9, abs_tol=1e-6)
        assert total.minimum == direct.minimum
        assert total.maximum == direct.maximum
        assert total.oldest_timestamp == direct.oldest_timestamp

    @given(entries, st.integers(min_value=0, max_value=39))
    def test_remove_preserves_count_and_sum(self, items, idx):
        if idx >= len(items):
            return
        sketch = AggregateSketch.of(items)
        removed_value = items[idx][0]
        sketch.remove(removed_value)
        remaining = [v for i, (v, _) in enumerate(items) if i != idx]
        assert sketch.count == len(remaining)
        if remaining:
            assert math.isclose(
                sketch.total, sum(remaining), rel_tol=1e-9, abs_tol=1e-5
            )
        else:
            assert sketch.is_empty

    @given(entries, st.integers(min_value=0, max_value=39))
    def test_remove_interior_keeps_minmax_exact(self, items, idx):
        if idx >= len(items):
            return
        sketch = AggregateSketch.of(items)
        values = [v for v, _ in items]
        victim = values[idx]
        sketch.remove(victim)
        if sketch.is_empty:
            return
        if not sketch.minmax_dirty:
            remaining = values[:idx] + values[idx + 1:]
            assert sketch.result("min") == min(remaining)
            assert sketch.result("max") == max(remaining)

    @given(entries)
    def test_copy_equivalence(self, items):
        sketch = AggregateSketch.of(items)
        clone = sketch.copy()
        assert clone.count == sketch.count
        assert clone.total == sketch.total
        assert clone.minimum == sketch.minimum
        assert clone.maximum == sketch.maximum
