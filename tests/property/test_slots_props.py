"""Property-based tests of the slot caches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Reading
from repro.core.slots import LeafSlotCache, SlotCache, slot_of


@st.composite
def readings(draw):
    sensor_id = draw(st.integers(min_value=0, max_value=20))
    timestamp = draw(st.floats(min_value=0, max_value=10_000, allow_nan=False))
    lifetime = draw(st.floats(min_value=1, max_value=600, allow_nan=False))
    value = draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
    return Reading(
        sensor_id=sensor_id,
        value=value,
        timestamp=timestamp,
        expires_at=timestamp + lifetime,
    )


reading_lists = st.lists(readings(), min_size=0, max_size=40)


class TestLeafSlotCacheProperties:
    @given(reading_lists)
    def test_one_entry_per_sensor(self, items):
        cache = LeafSlotCache(120.0)
        for r in items:
            cache.insert(r, fetched_at=r.timestamp)
        assert len(cache) == len({r.sensor_id for r in items})

    @given(reading_lists)
    def test_newest_reading_wins(self, items):
        cache = LeafSlotCache(120.0)
        last: dict[int, Reading] = {}
        for r in items:
            cache.insert(r, fetched_at=r.timestamp)
            last[r.sensor_id] = r
        for sensor_id, expected in last.items():
            assert cache.get(sensor_id).reading == expected

    @given(reading_lists)
    def test_slot_index_consistent(self, items):
        cache = LeafSlotCache(120.0)
        for r in items:
            cache.insert(r, fetched_at=r.timestamp)
        listed = set()
        for slot in cache.slot_ids():
            assert isinstance(slot, int)
        for r in cache.all_readings():
            assert slot_of(r.expires_at, 120.0) in cache.slot_ids()
            listed.add(r.sensor_id)
        assert len(listed) == len(cache)

    @given(
        reading_lists,
        st.floats(min_value=0, max_value=12_000, allow_nan=False),
        st.floats(min_value=0, max_value=1_000, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_fresh_readings_exactly_the_fresh_ones(self, items, now, staleness):
        """fresh_readings must agree with a brute-force filter of the
        cache contents."""
        cache = LeafSlotCache(120.0)
        for r in items:
            cache.insert(r, fetched_at=r.timestamp)
        expected = {
            r.sensor_id
            for r in cache.all_readings()
            if r.is_valid_at(now) and now - r.timestamp <= staleness
        }
        # The slot filter may additionally drop *whole expired slots*;
        # it must never drop an unexpired fresh reading nor return a
        # stale one.
        got = {r.sensor_id for r in cache.fresh_readings(now, staleness)}
        assert got == expected

    @given(reading_lists, st.floats(min_value=0, max_value=12_000, allow_nan=False))
    def test_prune_drops_only_expired(self, items, now):
        cache = LeafSlotCache(120.0)
        for r in items:
            cache.insert(r, fetched_at=r.timestamp)
        dropped = cache.prune_expired(now)
        for r in dropped:
            assert not r.is_valid_at(now + 120.0)  # entire slot behind now
        for r in cache.all_readings():
            assert slot_of(r.expires_at, 120.0) >= slot_of(now, 120.0)

    @given(reading_lists)
    def test_remove_then_absent(self, items):
        cache = LeafSlotCache(120.0)
        for r in items:
            cache.insert(r, fetched_at=r.timestamp)
        for sensor_id in {r.sensor_id for r in items}:
            assert cache.remove(sensor_id) is not None
            assert sensor_id not in cache
        assert len(cache) == 0
        assert cache.slot_ids() == []


class TestAggregateSlotCacheProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=1_000, allow_nan=False),
            ),
            max_size=40,
        )
    )
    def test_total_weight_counts_every_add(self, adds):
        cache = SlotCache(60.0)
        for slot, value, ts in adds:
            cache.add(slot, value, ts)
        assert cache.total_weight() == len(adds)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_add_remove_roundtrip_empties(self, adds):
        cache = SlotCache(60.0)
        for slot, value in adds:
            cache.add(slot, value, 0.0)
        for slot, value in adds:
            if cache.sketch(slot) is not None:
                cache.remove(slot, value)
        assert cache.total_weight() == 0
        assert len(cache) == 0

    @given(
        st.floats(min_value=1, max_value=600, allow_nan=False),
        st.floats(min_value=0, max_value=10_000, allow_nan=False),
    )
    def test_usable_excludes_boundary_and_past(self, slot_seconds, now):
        cache = SlotCache(slot_seconds)
        boundary = slot_of(now, slot_seconds)
        cache.add(boundary - 1, 1.0, now)
        cache.add(boundary, 1.0, now)
        cache.add(boundary + 1, 1.0, now)
        usable = cache.usable_sketches(now, max_staleness=1e9)
        assert len(usable) == 1


class TestSlotBoundaryProperties:
    """Boundary behaviour of the global slotting scheme: negative
    instants, exact slot edges, and the open-ended usable range."""

    @given(
        st.integers(min_value=-10_000, max_value=10_000),
        # Exactly representable widths so k*Δ carries no rounding —
        # the edge being tested is the slotting scheme's, not floats'.
        st.sampled_from([1.0, 0.5, 7.25, 30.0, 60.0, 120.0, 600.0]),
    )
    def test_exact_edges_start_their_slot(self, k, slot_seconds):
        from repro.core.slots import usable_slot_range

        assert slot_of(k * slot_seconds, slot_seconds) == k
        low, high = usable_slot_range(k * slot_seconds, slot_seconds)
        assert low == k + 1
        assert high is None

    @given(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        st.floats(min_value=1, max_value=600, allow_nan=False),
    )
    def test_negative_instants_floor_not_truncate(self, instant, slot_seconds):
        slot = slot_of(instant, slot_seconds)
        # Floor semantics, not int() truncation: negative instants round
        # *down*.  The midpoint of the computed slot must map back to it,
        # and the slot below/above must bracket it.
        assert slot_of(slot * slot_seconds + slot_seconds / 2, slot_seconds) == slot
        assert slot_of((slot - 1) * slot_seconds + slot_seconds / 2, slot_seconds) < slot
        if instant < 0:
            assert slot <= 0

    def test_negative_instant_examples(self):
        assert slot_of(-0.5, 120.0) == -1
        assert slot_of(-120.0, 120.0) == -1
        assert slot_of(-120.1, 120.0) == -2
        assert slot_of(-1e-9, 120.0) == -1

    @given(
        st.integers(min_value=-10_000, max_value=10_000),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=1, max_value=600, allow_nan=False),
    )
    def test_slot_usable_matches_range(self, slot, now, slot_seconds):
        from repro.core.slots import slot_usable, usable_slot_range

        low, high = usable_slot_range(now, slot_seconds)
        assert high is None
        assert slot_usable(slot, now, slot_seconds) == (slot >= low)

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=1, max_value=600, allow_nan=False),
    )
    def test_far_future_slots_always_usable(self, now, slot_seconds):
        """The fix for the old ``low + (1 << 31)`` sentinel: no finite
        upper bound may exclude a genuinely future expiry slot."""
        from repro.core.slots import slot_usable, usable_slot_range

        low, _ = usable_slot_range(now, slot_seconds)
        for offset in (0, 1, 2**31, 2**31 + 1, 2**40):
            assert slot_usable(low + offset, now, slot_seconds)

    @given(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
        st.floats(min_value=1, max_value=600, allow_nan=False),
    )
    def test_boundary_slot_never_usable(self, now, slot_seconds):
        from repro.core.slots import slot_usable

        boundary = slot_of(now, slot_seconds)
        assert not slot_usable(boundary, now, slot_seconds)
        assert not slot_usable(boundary - 1, now, slot_seconds)
        assert slot_usable(boundary + 1, now, slot_seconds)
