"""Property-based parity of tiled vs monolithic kernel classification.

Cache-conscious tiling re-brackets the vectorized DISJOINT / PARTIAL /
CONTAINED pass into ``tile_nodes``-sized sub-ranges so each tile's
working set stays L2-resident.  Its whole contract is that the
re-bracketing changes *nothing*: for any tree shape, any region (rect
or polygon, inside / outside / straddling the extent) and any tile size
— including degenerate one-node tiles and tiles larger than the tree —
the label array is bit-identical to the monolithic pass.  The process
execution backend leans on this: workers classify over shared-memory
arrays with tiling on while the coordinator-side parity gates compare
against untiled answers.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import COLRTreeConfig
from repro.core.flat import FlatKernel
from repro.geometry import GeoPoint, Polygon, Rect

from tests.conftest import make_registry, make_tree

EXTENT = 100.0

# Trees are expensive to build; a pool of shapes is built once (with
# the monolithic kernel attached) and hypothesis draws the regions and
# tile sizes.  Pool spans deep/narrow and shallow/wide trees.
_TREES = [
    make_tree(make_registry(n=n, extent=EXTENT, seed=seed), config)
    for n, seed, config in [
        (80, 1, None),
        (
            300,
            4,
            COLRTreeConfig(
                fanout=4,
                leaf_capacity=8,
                max_expiry_seconds=600.0,
                slot_seconds=120.0,
            ),
        ),
        (
            600,
            7,
            COLRTreeConfig(
                fanout=16,
                leaf_capacity=64,
                max_expiry_seconds=600.0,
                slot_seconds=120.0,
            ),
        ),
    ]
]

trees = st.sampled_from(_TREES)
tile_sizes = st.integers(min_value=1, max_value=2_000)

coord = st.floats(
    min_value=-25.0, max_value=EXTENT + 25.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rect_regions(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@st.composite
def polygon_regions(draw):
    """A star-shaped polygon around a drawn center (always a valid,
    non-self-intersecting ring)."""
    cx = draw(coord)
    cy = draw(coord)
    k = draw(st.integers(min_value=3, max_value=7))
    radii = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=40.0, allow_nan=False),
            min_size=k,
            max_size=k,
        )
    )
    verts = [
        GeoPoint(
            cx + r * math.cos(2 * math.pi * i / k),
            cy + r * math.sin(2 * math.pi * i / k),
        )
        for i, r in enumerate(radii)
    ]
    return Polygon(verts)


regions = st.one_of(rect_regions(), polygon_regions())


@settings(max_examples=120, deadline=None)
@given(tree=trees, region=regions, tile=tile_sizes)
def test_tiled_classification_is_bit_identical(tree, region, tile):
    mono = FlatKernel(tree.root)
    tiled = FlatKernel(tree.root, tile_nodes=tile)
    assert np.array_equal(mono.classify(region), tiled.classify(region))


@settings(max_examples=40, deadline=None)
@given(tree=trees, region=regions, tile=tile_sizes)
def test_tile_ranges_partition_the_node_range(tree, region, tile):
    """Tiles cover [0, n_nodes) exactly once, in order, with no gaps —
    the invariant that makes per-tile label writes race-free."""
    kernel = FlatKernel(tree.root, tile_nodes=tile)
    ranges = kernel._tile_ranges(0, kernel.n_nodes)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == kernel.n_nodes
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo
    assert all(lo < hi for lo, hi in ranges)
