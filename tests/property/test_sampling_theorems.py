"""Statistical validation of the sampling guarantees (Section V-B).

Theorem 1: Algorithm 1 returns a sample with expected size R.
Theorem 2: with uniform sensors and caching disabled, every sensor in
the query region is successfully probed with probability R/N.

Both are statements about expectations, so we validate them over many
independent runs with calibrated availability histories (the theorems
assume the oversampling factor uses the true availability; we seed the
historical model accordingly).
"""

import numpy as np
import pytest

from repro import (
    AvailabilityModel,
    COLRTree,
    COLRTreeConfig,
    GeoPoint,
    Rect,
    SensorNetwork,
    SensorRegistry,
)


def build_population(n, availability, seed):
    rng = np.random.default_rng(seed)
    registry = SensorRegistry()
    for _ in range(n):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=300.0,
            availability=availability,
        )
    return registry


def calibrated_model(registry, observations=400):
    """Availability history matching each sensor's true rate."""
    model = AvailabilityModel()
    for sensor in registry.all():
        successes = int(round(observations * sensor.availability))
        model.seed(sensor.sensor_id, successes, observations - successes)
    return model


def make_tree(registry, model, seed, caching=False):
    config = COLRTreeConfig(
        fanout=6,
        leaf_capacity=16,
        max_expiry_seconds=600.0,
        slot_seconds=120.0,
        caching_enabled=caching,
        seed=seed,
    )
    network = SensorNetwork(registry.all(), availability_model=model, seed=seed + 1)
    return COLRTree(registry.all(), config, network=network, availability_model=model)


FULL_REGION = Rect(0, 0, 100, 100)


class TestTheorem1ExpectedSampleSize:
    def test_full_availability(self):
        """With a = 1 everywhere the expected successes equal R."""
        registry = build_population(600, availability=1.0, seed=0)
        model = calibrated_model(registry)
        target = 40
        sizes = []
        for seed in range(25):
            tree = make_tree(registry, model, seed)
            answer = tree.query(FULL_REGION, now=0.0, max_staleness=600.0, sample_size=target)
            sizes.append(answer.probed_count)
        mean = float(np.mean(sizes))
        assert abs(mean - target) <= 0.15 * target, (mean, sizes)

    def test_partial_availability_compensated(self):
        """With a = 0.7 the 1/a oversampling keeps E[successes] ≈ R."""
        registry = build_population(800, availability=0.7, seed=1)
        model = calibrated_model(registry)
        target = 40
        sizes = []
        for seed in range(25):
            tree = make_tree(registry, model, seed)
            answer = tree.query(FULL_REGION, now=0.0, max_staleness=600.0, sample_size=target)
            sizes.append(answer.probed_count)
        mean = float(np.mean(sizes))
        assert abs(mean - target) <= 0.2 * target, (mean, sizes)

    def test_without_oversampling_expectation_shrinks_by_a(self):
        """Control: turning the mechanism off yields ≈ a * R."""
        registry = build_population(800, availability=0.6, seed=2)
        model = calibrated_model(registry)
        target = 40
        sizes = []
        for seed in range(25):
            config = COLRTreeConfig(
                fanout=6,
                leaf_capacity=16,
                caching_enabled=False,
                oversampling_enabled=False,
                seed=seed,
            )
            network = SensorNetwork(registry.all(), availability_model=model, seed=seed + 1)
            tree = COLRTree(registry.all(), config, network=network, availability_model=model)
            answer = tree.query(FULL_REGION, now=0.0, max_staleness=600.0, sample_size=target)
            sizes.append(answer.probed_count)
        mean = float(np.mean(sizes))
        assert abs(mean - 0.6 * target) <= 0.2 * target, mean

    def test_partial_region_expectation(self):
        """The guarantee holds for sub-regions too."""
        registry = build_population(900, availability=1.0, seed=3)
        model = calibrated_model(registry)
        region = Rect(0, 0, 60, 60)
        target = 30
        sizes = []
        for seed in range(25):
            tree = make_tree(registry, model, seed)
            answer = tree.query(region, now=0.0, max_staleness=600.0, sample_size=target)
            sizes.append(answer.probed_count)
        mean = float(np.mean(sizes))
        assert abs(mean - target) <= 0.25 * target, (mean, sizes)


class TestTheorem2Uniformity:
    @pytest.mark.parametrize("availability", [1.0, 0.75])
    def test_per_sensor_inclusion_near_uniform(self, availability):
        """Across many independent queries, each sensor's successful-
        probe count concentrates around n_queries * R / N."""
        n_sensors = 500
        registry = build_population(n_sensors, availability=availability, seed=4)
        model = calibrated_model(registry)
        target = 25
        n_queries = 400
        tree = make_tree(registry, model, seed=0)
        counts = np.zeros(n_sensors, dtype=np.int64)
        for i in range(n_queries):
            answer = tree.query(
                FULL_REGION, now=float(i), max_staleness=600.0, sample_size=target
            )
            for reading in answer.probed_readings:
                counts[reading.sensor_id] += 1
        expected = n_queries * target / n_sensors
        mean = counts.mean()
        assert abs(mean - expected) <= 0.2 * expected, (mean, expected)
        # Uniformity: the spread must look binomial, not clustered.
        assert counts.std() <= 0.6 * mean + 3.0, (counts.std(), mean)
        assert counts.max() <= 3.0 * mean + 5.0
        assert counts.min() >= 0.15 * mean - 2.0

    def test_dense_and_sparse_regions_equal_rates(self):
        """Sensors in a dense cluster and sensors spread out must have
        the same inclusion probability (weighted partitioning)."""
        rng = np.random.default_rng(5)
        registry = SensorRegistry()
        for _ in range(400):  # dense cluster in one corner
            registry.register(
                GeoPoint(float(rng.uniform(0, 10)), float(rng.uniform(0, 10))),
                expiry_seconds=300.0,
            )
        for _ in range(100):  # sparse spread
            registry.register(
                GeoPoint(float(rng.uniform(10, 100)), float(rng.uniform(10, 100))),
                expiry_seconds=300.0,
            )
        model = calibrated_model(registry)
        tree = make_tree(registry, model, seed=0)
        counts = np.zeros(500, dtype=np.int64)
        n_queries, target = 400, 25
        for i in range(n_queries):
            answer = tree.query(
                FULL_REGION, now=float(i), max_staleness=600.0, sample_size=target
            )
            for reading in answer.probed_readings:
                counts[reading.sensor_id] += 1
        dense_rate = counts[:400].mean()
        sparse_rate = counts[400:].mean()
        assert dense_rate == pytest.approx(sparse_rate, rel=0.3), (
            dense_rate,
            sparse_rate,
        )
