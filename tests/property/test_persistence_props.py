"""Property tests: snapshots and traces round-trip arbitrary inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import COLRTree, COLRTreeConfig, GeoPoint, Reading, Sensor
from repro.persistence import restore_tree, snapshot_tree
from repro.workloads.trace import workload_from_dict, workload_to_dict


@st.composite
def sensor_lists(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    sensors = []
    for i in range(n):
        sensors.append(
            Sensor(
                sensor_id=i,
                location=GeoPoint(
                    draw(st.floats(min_value=-170, max_value=170, allow_nan=False)),
                    draw(st.floats(min_value=-80, max_value=80, allow_nan=False)),
                ),
                expiry_seconds=draw(st.floats(min_value=1, max_value=3600, allow_nan=False)),
                sensor_type=draw(st.sampled_from(["a", "b", "generic"])),
                availability=draw(st.floats(min_value=0, max_value=1, allow_nan=False)),
            )
        )
    return sensors


class TestSnapshotProperties:
    @given(sensor_lists(), st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_snapshot_restore_preserves_cache(self, sensors, insert_times):
        tree = COLRTree(sensors, COLRTreeConfig(max_expiry_seconds=3600.0, slot_seconds=600.0))
        for k, t in enumerate(insert_times):
            sensor = sensors[k % len(sensors)]
            tree.insert_reading(
                Reading(
                    sensor_id=sensor.sensor_id,
                    value=float(k),
                    timestamp=t,
                    expires_at=t + sensor.expiry_seconds,
                ),
                fetched_at=t,
            )
        now = max(insert_times, default=0.0)
        restored = restore_tree(snapshot_tree(tree, now=now), build_network=False)
        assert restored.root.weight == tree.root.weight
        # Restore drops readings already expired at snapshot time (the
        # source tree may still hold boundary-slot corpses until its
        # next prune); everything valid at `now` must survive intact.
        valid = [
            r
            for leaf in tree.root.iter_leaves()
            for r in leaf.leaf_cache.all_readings()
            if r.is_valid_at(now)
        ]
        assert restored.cached_reading_count == len(valid)
        for reading in valid:
            other = restored.leaf_for(reading.sensor_id).leaf_cache.get(
                reading.sensor_id
            )
            assert other is not None
            assert other.reading == reading


class TestTraceProperties:
    @given(sensor_lists())
    @settings(max_examples=60, deadline=None)
    def test_sensor_round_trip_exact(self, sensors):
        restored, _ = workload_from_dict(workload_to_dict(sensors, []))
        assert restored == sensors
