"""Property-based tests of Sutherland–Hodgman polygon clipping.

The geoblock planner leans on ``Polygon.clip_to_rect`` for every
boundary cell, and the federation scatter uses it to route polygon
sub-queries — so the clip must stay well-behaved on the degenerate
inputs real workloads produce: vertices exactly on clip edges, flat
rings, polygons merely touching a rectangle at a corner.

Pinned properties:

* idempotence — ``clip(clip(p, r), r) == clip(p, r)`` exactly (the
  canonicalisation contract in the ``clip_to_rect`` docstring);
* the clip lies inside both inputs: every output vertex is in the
  rectangle, and the clip area never exceeds either input's area;
* area conservation — splitting the clip rectangle into halves
  partitions the clip area (no sliver is dropped or double-counted);
* a rectangle covering the whole polygon clips to the same area;
* degenerate inputs (flat rings, touch-only overlap) return ``None``
  rather than raising or producing a zero-area ring.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import GeoPoint, Polygon, Rect

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
radius = st.floats(min_value=0.1, max_value=50.0)


@st.composite
def star_polygons(draw):
    """Simple (possibly concave) polygons: jittered radii at jittered
    evenly spaced angles around a center.  Every angular gap stays
    below pi (jitter is bounded by ±0.2 steps), which makes the ring
    star-shaped around the center and therefore simple — unsorted or
    wide-gap angle draws can self-intersect."""
    cx, cy = draw(coord), draw(coord)
    n = draw(st.integers(min_value=3, max_value=12))
    jitters = draw(
        st.lists(
            st.floats(min_value=-0.2, max_value=0.2),
            min_size=n,
            max_size=n,
        )
    )
    radii = draw(st.lists(radius, min_size=n, max_size=n))
    step = 2.0 * math.pi / n
    return Polygon(
        GeoPoint(
            cx + r * math.cos((i + j) * step),
            cy + r * math.sin((i + j) * step),
        )
        for i, (j, r) in enumerate(zip(jitters, radii))
    )


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2 + draw(radius), y2 + draw(radius))


def _tol(polygon: Polygon, rect: Rect) -> float:
    scale = max(
        1.0,
        polygon.area,
        rect.area,
        *(abs(v.x) + abs(v.y) for v in polygon.vertices),
    )
    return 1e-9 * scale


class TestClipProperties:
    @given(star_polygons(), rects())
    def test_idempotent(self, polygon, rect):
        once = polygon.clip_to_rect(rect)
        if once is None:
            return
        twice = once.clip_to_rect(rect)
        assert twice == once

    @given(star_polygons(), rects())
    def test_clip_inside_both(self, polygon, rect):
        clipped = polygon.clip_to_rect(rect)
        if clipped is None:
            return
        eps = _tol(polygon, rect)
        for v in clipped.vertices:
            assert rect.min_x - eps <= v.x <= rect.max_x + eps
            assert rect.min_y - eps <= v.y <= rect.max_y + eps
        assert clipped.area <= polygon.area + eps
        assert clipped.area <= rect.area + eps

    @given(star_polygons(), rects())
    def test_area_conserved_under_partition(self, polygon, rect):
        """Splitting the clip rectangle down the middle partitions the
        clip area — Sutherland–Hodgman drops no sliver at the seam."""
        whole = polygon.clip_to_rect(rect)
        whole_area = whole.area if whole is not None else 0.0
        mid = (rect.min_x + rect.max_x) / 2.0
        left = polygon.clip_to_rect(Rect(rect.min_x, rect.min_y, mid, rect.max_y))
        right = polygon.clip_to_rect(Rect(mid, rect.min_y, rect.max_x, rect.max_y))
        parts = sum(p.area for p in (left, right) if p is not None)
        assert parts == pytest_approx(whole_area, _tol(polygon, rect))

    @given(star_polygons())
    def test_covering_rect_preserves_area(self, polygon):
        bbox = polygon.bounding_box
        cover = Rect(bbox.min_x - 1.0, bbox.min_y - 1.0, bbox.max_x + 1.0, bbox.max_y + 1.0)
        clipped = polygon.clip_to_rect(cover)
        assert clipped is not None
        assert clipped.area == pytest_approx(polygon.area, _tol(polygon, cover))

    @given(star_polygons())
    @settings(max_examples=50)
    def test_disjoint_rect_clips_to_none(self, polygon):
        bbox = polygon.bounding_box
        far = Rect(bbox.max_x + 1.0, bbox.min_y, bbox.max_x + 2.0, bbox.max_y)
        assert polygon.clip_to_rect(far) is None


class TestDegenerateInputs:
    def test_flat_ring_clips_to_none(self):
        flat = Polygon(
            [GeoPoint(0.0, 0.0), GeoPoint(1.0, 1.0), GeoPoint(2.0, 2.0)]
        )
        assert flat.clip_to_rect(Rect(-1.0, -1.0, 3.0, 3.0)) is None

    def test_edge_touch_clips_to_none(self):
        triangle = Polygon(
            [GeoPoint(0.0, 0.0), GeoPoint(2.0, 0.0), GeoPoint(1.0, 2.0)]
        )
        # The rectangle shares only the triangle's bottom edge.
        assert triangle.clip_to_rect(Rect(0.0, -1.0, 2.0, 0.0)) is None

    def test_corner_touch_clips_to_none(self):
        triangle = Polygon(
            [GeoPoint(0.0, 0.0), GeoPoint(2.0, 0.0), GeoPoint(1.0, 2.0)]
        )
        assert triangle.clip_to_rect(Rect(-2.0, -2.0, 0.0, 0.0)) is None

    def test_vertices_on_clip_edges_stay_canonical(self):
        # A diamond whose vertices lie exactly on the clip boundary:
        # clipping must not duplicate them or leave collinear residue.
        diamond = Polygon(
            [
                GeoPoint(0.0, -1.0),
                GeoPoint(1.0, 0.0),
                GeoPoint(0.0, 1.0),
                GeoPoint(-1.0, 0.0),
            ]
        )
        clipped = diamond.clip_to_rect(Rect(-1.0, -1.0, 1.0, 1.0))
        assert clipped is not None
        assert clipped.area == diamond.area
        assert len(clipped.vertices) == 4
        assert clipped.clip_to_rect(Rect(-1.0, -1.0, 1.0, 1.0)) == clipped


def pytest_approx(value: float, tol: float):
    import pytest

    return pytest.approx(value, abs=max(tol, 1e-9), rel=1e-6)
