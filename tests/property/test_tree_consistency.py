"""Randomized consistency testing of the cache-maintenance machinery.

A long random sequence of inserts, updates, evictions, expiry rolls and
queries must preserve the structural invariants:

* every internal (node, slot) aggregate equals the recomputation from
  its children (the trigger-equivalence invariant);
* the global cached-reading count matches the per-leaf contents and the
  slot registry;
* the capacity constraint is never violated after enforcement.

This is a differential/metamorphic test rather than a Hypothesis one
because building a tree per example would dominate runtime; a seeded
RNG drives long operation sequences instead.
"""

import numpy as np
import pytest

from repro import COLRTreeConfig, Reading, Rect

from tests.conftest import make_registry, make_tree


def check_invariants(tree):
    # (1) aggregate consistency at every internal node and slot
    for node in tree.root.iter_subtree():
        if node.is_leaf or node.agg_cache is None:
            continue
        for slot in node.agg_cache.slot_ids():
            cached = node.agg_cache.sketch(slot)
            recomputed = tree._recompute_slot(node, slot)
            assert cached.count == recomputed.count, (node.node_id, slot)
            assert cached.total == pytest.approx(recomputed.total, abs=1e-6)
            if not cached.minmax_dirty and not recomputed.is_empty:
                assert cached.minimum == pytest.approx(recomputed.minimum)
                assert cached.maximum == pytest.approx(recomputed.maximum)
    # (2) global count vs leaf contents vs registry
    leaf_total = sum(
        len(n.leaf_cache) for n in tree.root.iter_leaves() if n.leaf_cache is not None
    )
    registry_total = sum(len(m) for m in tree._cache_registry.values())
    assert tree.cached_reading_count == leaf_total == registry_total
    # (3) capacity
    if tree.config.cache_capacity is not None:
        assert tree.cached_reading_count <= tree.config.cache_capacity


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("capacity", [None, 60])
def test_random_operation_sequences_preserve_invariants(seed, capacity):
    registry = make_registry(n=250, seed=seed, expiry_range=(60.0, 600.0))
    tree = make_tree(
        registry,
        COLRTreeConfig(
            fanout=4,
            leaf_capacity=16,
            max_expiry_seconds=600.0,
            slot_seconds=120.0,
            cache_capacity=capacity,
        ),
        network_seed=seed,
    )
    rng = np.random.default_rng(seed + 100)
    sensors = registry.all()
    now = 0.0
    for step in range(300):
        now += float(rng.exponential(5.0))
        op = rng.random()
        if op < 0.5:
            # insert/update a random sensor's reading
            sensor = sensors[int(rng.integers(len(sensors)))]
            tree.insert_reading(
                Reading(
                    sensor_id=sensor.sensor_id,
                    value=float(rng.uniform(-50, 50)),
                    timestamp=now,
                    expires_at=now + sensor.expiry_seconds,
                ),
                fetched_at=now,
            )
            tree._enforce_capacity()
        elif op < 0.7:
            # expiry roll
            tree._prune_expired(now)
        elif op < 0.9:
            # sampled query (also probes + caches via the network)
            x = float(rng.uniform(0, 60))
            y = float(rng.uniform(0, 60))
            tree.query(
                Rect(x, y, x + 40, y + 40),
                now=now,
                max_staleness=float(rng.uniform(30, 600)),
                sample_size=int(rng.integers(5, 40)),
            )
        else:
            # exact query
            tree.query(
                Rect(10, 10, 90, 90), now=now, max_staleness=300.0, sample_size=0
            )
        if step % 25 == 0:
            check_invariants(tree)
    check_invariants(tree)


def test_long_time_jumps_expire_everything():
    registry = make_registry(n=120, seed=9)
    tree = make_tree(registry)
    rng = np.random.default_rng(9)
    now = 0.0
    for _ in range(10):
        for sensor in registry.all()[:40]:
            tree.insert_reading(
                Reading(
                    sensor_id=sensor.sensor_id,
                    value=float(rng.uniform(0, 10)),
                    timestamp=now,
                    expires_at=now + sensor.expiry_seconds,
                ),
                fetched_at=now,
            )
        now += 100_000.0  # everything expires
        tree._prune_expired(now)
        assert tree.cached_reading_count == 0
        check_invariants(tree)
