"""Property tests of viewport grouping: weights and values must be
preserved by any grouping, at any cluster distance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GeoPoint, Reading
from repro.core.aggregates import AggregateSketch
from repro.core.lookup import QueryAnswer
from repro.portal import group_answer


@st.composite
def answers(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    locations = {}
    probed, cached = [], []
    for sensor_id in range(n):
        locations[sensor_id] = GeoPoint(
            draw(st.floats(min_value=-170, max_value=170, allow_nan=False)),
            draw(st.floats(min_value=-80, max_value=80, allow_nan=False)),
        )
        reading = Reading(
            sensor_id=sensor_id,
            value=draw(st.floats(min_value=-1000, max_value=1000, allow_nan=False)),
            timestamp=0.0,
            expires_at=100.0,
        )
        if draw(st.booleans()):
            probed.append(reading)
        else:
            cached.append(reading)
    n_sketches = draw(st.integers(min_value=0, max_value=3))
    sketches, nodes = [], []
    for k in range(n_sketches):
        size = draw(st.integers(min_value=1, max_value=5))
        sketches.append(
            AggregateSketch.of(
                [(draw(st.floats(min_value=-10, max_value=10, allow_nan=False)), 0.0) for _ in range(size)]
            )
        )
        nodes.append(k)
    answer = QueryAnswer(
        probed_readings=probed,
        cached_readings=cached,
        cached_sketches=sketches,
        cached_sketch_nodes=nodes,
    )
    return answer, locations


cluster = st.one_of(st.none(), st.floats(min_value=0.5, max_value=5000, allow_nan=False))


class TestGroupingProperties:
    @given(answers(), cluster)
    @settings(max_examples=150)
    def test_total_weight_preserved(self, case, cluster_miles):
        answer, locations = case
        groups = group_answer(
            answer, cluster_miles, sensor_location=lambda sid: locations[sid]
        )
        assert sum(g.size for g in groups) == answer.result_weight

    @given(answers(), cluster)
    @settings(max_examples=150)
    def test_total_sum_preserved(self, case, cluster_miles):
        answer, locations = case
        groups = group_answer(
            answer, cluster_miles, sensor_location=lambda sid: locations[sid]
        )
        total = sum(g.sketch.total for g in groups)
        expected = (
            sum(r.value for r in answer.probed_readings)
            + sum(r.value for r in answer.cached_readings)
            + sum(s.total for s in answer.cached_sketches)
        )
        assert abs(total - expected) < 1e-6 * max(1.0, abs(expected))

    @given(answers())
    @settings(max_examples=100)
    def test_no_cluster_means_singleton_groups(self, case):
        answer, locations = case
        groups = group_answer(answer, None, sensor_location=lambda sid: locations[sid])
        reading_groups = [g for g in groups if g.from_cache_node is None]
        assert all(g.size == 1 for g in reading_groups)

    @given(answers())
    @settings(max_examples=100)
    def test_coarser_cluster_never_more_groups(self, case):
        answer, locations = case
        fine = group_answer(answer, 1.0, sensor_location=lambda sid: locations[sid])
        coarse = group_answer(answer, 5000.0, sensor_location=lambda sid: locations[sid])
        assert len(coarse) <= len(fine)
