"""Bit-identity of ``execute_batch([q])`` with ``execute(q)``.

The acceptance contract of the batch executor: a singleton batch takes
exactly the sequential path's decisions — same plan-cache interaction,
same probe order (hence the same network RNG draws), same ingestion,
same stats — for every query shape: rect/polygon region,
exact/sampled access path, cold/warmed cache.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.geometry import GeoPoint, Polygon, Rect
from repro.portal import SensorMapPortal, SensorQuery


def _build_portal(availability: float = 1.0, n: int = 150) -> SensorMapPortal:
    rng = np.random.default_rng(5)
    portal = SensorMapPortal(max_sensors_per_query=None)
    for x, y in rng.random((n, 2)) * 100:
        portal.register_sensor(
            GeoPoint(float(x), float(y)),
            expiry_seconds=300.0,
            availability=availability,
        )
    portal.rebuild_index()
    return portal


def _assert_identical(seq_result, batch_result):
    assert len(seq_result.answers) == len(batch_result.answers)
    for a, b in zip(seq_result.answers, batch_result.answers):
        assert a.probed_readings == b.probed_readings
        assert a.cached_readings == b.cached_readings
        assert a.cached_sketches == b.cached_sketches
        assert a.cached_sketch_nodes == b.cached_sketch_nodes
        assert a.terminals == b.terminals
        assert a.stats == b.stats
        # A singleton batch never coalesces nor inherits a plan.
        assert b.stats.probes_coalesced == 0
        assert b.stats.batch_shared_nodes == 0
    assert seq_result.groups == batch_result.groups
    assert seq_result.processing_seconds == batch_result.processing_seconds
    assert seq_result.collection_seconds == batch_result.collection_seconds


RECTS = st.tuples(
    st.floats(0, 80, allow_nan=False),
    st.floats(0, 80, allow_nan=False),
    st.floats(5, 60, allow_nan=False),
    st.floats(5, 60, allow_nan=False),
).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))

TRIANGLES = st.tuples(
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
).filter(
    lambda t: len({(t[0], t[1]), (t[2], t[3]), (t[4], t[5])}) == 3
).map(
    lambda t: Polygon(
        [GeoPoint(t[0], t[1]), GeoPoint(t[2], t[3]), GeoPoint(t[4], t[5])]
    )
)


class TestSingletonBitIdentity:
    @settings(max_examples=12, deadline=None)
    @given(region=RECTS, sampled=st.booleans(), warmed=st.booleans())
    def test_rect_queries(self, region, sampled, warmed):
        self._check(region, sampled, warmed)

    @settings(max_examples=12, deadline=None)
    @given(region=TRIANGLES, sampled=st.booleans(), warmed=st.booleans())
    def test_polygon_queries(self, region, sampled, warmed):
        self._check(region, sampled, warmed)

    @settings(max_examples=8, deadline=None)
    @given(region=RECTS, sampled=st.booleans())
    def test_flaky_network(self, region, sampled):
        self._check(region, sampled, warmed=False, availability=0.8)

    def _check(self, region, sampled, warmed, availability=1.0):
        query = SensorQuery(
            region=region,
            staleness_seconds=120.0,
            sample_size=20 if sampled else None,
        )
        seq_portal = _build_portal(availability)
        batch_portal = _build_portal(availability)
        if warmed:
            warm = SensorQuery(
                region=Rect(20.0, 20.0, 70.0, 70.0), staleness_seconds=120.0
            )
            seq_portal.execute(warm)
            batch_portal.execute(warm)
        seq = seq_portal.execute(query)
        batch = batch_portal.execute_batch([query])
        assert len(batch.results) == 1
        _assert_identical(seq, batch.results[0])

    def test_zoom_level_grouping(self):
        query = SensorQuery(
            region=Rect(10.0, 10.0, 80.0, 80.0),
            staleness_seconds=120.0,
            zoom_level=1,
        )
        seq = _build_portal().execute(query)
        batch = _build_portal().execute_batch([query])
        _assert_identical(seq, batch.results[0])
