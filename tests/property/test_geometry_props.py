"""Property-based tests of the spatial substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import GeoPoint, Polygon, Rect

coord = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@st.composite
def points(draw):
    return GeoPoint(draw(coord), draw(coord))


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_commutative(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        ia, ib = a.intersection(b), b.intersection(a)
        assert ia == ib

    @given(rects(), rects())
    def test_containment_implies_intersection(self, a, b):
        if a.contains_rect(b):
            assert a.intersects(b)

    @given(rects(), rects())
    def test_overlap_fraction_bounded(self, a, b):
        f = a.overlap_fraction(b)
        assert 0.0 <= f <= 1.0 + 1e-9

    @given(rects())
    def test_self_overlap_is_one(self, a):
        assert a.overlap_fraction(a) == 1.0

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = Rect.union_of([a, b])
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter) and b.contains_rect(inter)

    @given(rects(), points())
    def test_contained_point_has_zero_distance(self, r, p):
        if r.contains_point(p):
            assert r.distance_to_point(p) == 0.0
        else:
            assert r.distance_to_point(p) > 0.0

    @given(rects(), rects())
    def test_overlap_area_identity(self, a, b):
        """fraction * area == intersection area (when area > 0)."""
        if a.area > 0:
            inter = a.intersection(b)
            expected = inter.area if inter is not None else 0.0
            assert abs(a.overlap_fraction(b) * a.area - expected) <= 1e-6 * max(
                1.0, a.area
            )


class TestPolygonProperties:
    @given(rects(), points())
    @settings(max_examples=200)
    def test_polygon_from_rect_point_parity(self, r, p):
        if r.area == 0:
            return  # degenerate rects are not valid polygons
        poly = Polygon.from_rect(r)
        assert poly.contains_point(p) == r.contains_point(p)

    @given(rects(), rects())
    @settings(max_examples=200)
    def test_polygon_from_rect_relation_parity(self, r, probe):
        if r.area == 0:
            return
        poly = Polygon.from_rect(r)
        assert poly.intersects_rect(probe) == r.intersects_rect(probe)
        assert poly.contains_rect(probe) == r.contains_rect(probe)

    @given(rects())
    def test_polygon_area_matches_rect(self, r):
        if r.area == 0:
            return
        assert abs(Polygon.from_rect(r).area - r.area) <= 1e-6 * max(1.0, r.area)

    @given(st.lists(points(), min_size=3, max_size=8))
    @settings(max_examples=200)
    def test_bbox_contains_all_vertices(self, verts):
        try:
            poly = Polygon(verts)
        except ValueError:
            return  # collapsed ring
        for v in poly.vertices:
            assert poly.bounding_box.contains_point(v)

    @given(st.lists(points(), min_size=3, max_size=8), points())
    @settings(max_examples=200)
    def test_containment_implies_bbox_containment(self, verts, p):
        try:
            poly = Polygon(verts)
        except ValueError:
            return
        if poly.contains_point(p):
            assert poly.bounding_box.contains_point(p)
