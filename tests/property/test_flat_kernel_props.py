"""Property-based tests of the flattened traversal kernel.

The kernel's whole contract is *exact* agreement with the per-node
predicates the recursive query paths would have evaluated: same
three-way classification, same overlap fractions, same leaf
membership, and plan-cache hits that are indistinguishable from cold
traversals.  Trees are expensive to build, so a small pool of
differently shaped trees is built once and hypothesis draws the query
regions.
"""

from __future__ import annotations

import math
from dataclasses import fields

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import COLRTreeConfig
from repro.core.flat import CONTAINED, DISJOINT, PARTIAL
from repro.core.lookup import range_scan, region_overlap_fraction
from repro.geometry import GeoPoint, Polygon, Rect

from tests.conftest import make_registry, make_tree

EXTENT = 100.0

# A small pool of tree shapes: different populations, fanouts and leaf
# capacities, all with the kernel enabled (the default).
_TREES = [
    make_tree(make_registry(n=n, extent=EXTENT, seed=seed), config)
    for n, seed, config in [
        (120, 0, None),
        (
            350,
            3,
            COLRTreeConfig(
                fanout=4,
                leaf_capacity=8,
                max_expiry_seconds=600.0,
                slot_seconds=120.0,
            ),
        ),
        (
            500,
            5,
            COLRTreeConfig(
                fanout=12,
                leaf_capacity=50,
                max_expiry_seconds=600.0,
                slot_seconds=120.0,
            ),
        ),
    ]
]

trees = st.sampled_from(_TREES)

# Coordinates straddle the sensor extent so regions fall inside,
# outside, and across the boundary.
coord = st.floats(
    min_value=-25.0, max_value=EXTENT + 25.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rect_regions(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@st.composite
def polygon_regions(draw):
    """A star-shaped polygon around a drawn center (always a valid,
    non-self-intersecting ring)."""
    cx = draw(coord)
    cy = draw(coord)
    k = draw(st.integers(min_value=3, max_value=7))
    radii = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=40.0, allow_nan=False),
            min_size=k,
            max_size=k,
        )
    )
    verts = [
        GeoPoint(
            cx + r * math.cos(2 * math.pi * i / k),
            cy + r * math.sin(2 * math.pi * i / k),
        )
        for i, r in enumerate(radii)
    ]
    try:
        return Polygon(verts)
    except ValueError:
        assume(False)


regions = st.one_of(rect_regions(), polygon_regions())


def expected_label(region, bbox: Rect) -> int:
    """The label the recursive traversal's predicates imply."""
    if not region.intersects_rect(bbox):
        return DISJOINT
    if region.contains_rect(bbox):
        return CONTAINED
    return PARTIAL


class TestClassification:
    @given(trees, regions)
    @settings(max_examples=150, deadline=None)
    def test_classify_matches_per_node_predicates(self, tree, region):
        kernel = tree.kernel
        labels = kernel.classify(region)
        for i, node in enumerate(kernel.nodes):
            assert labels[i] == expected_label(region, node.bbox), (
                f"node {node.node_id} (level {node.level}) misclassified"
            )

    @given(trees, regions)
    @settings(max_examples=150, deadline=None)
    def test_overlap_fractions_match_scalar(self, tree, region):
        kernel = tree.kernel
        fracs = kernel.overlap_fractions(region)
        for i, node in enumerate(kernel.nodes):
            assert fracs[i] == region_overlap_fraction(node.bbox, region)

    @given(trees, regions)
    @settings(max_examples=100, deadline=None)
    def test_leaf_matching_matches_scalar(self, tree, region):
        kernel = tree.kernel
        for i, node in enumerate(kernel.nodes):
            if not node.is_leaf:
                continue
            expected = [s for s in node.sensors if region.contains_point(s.location)]
            assert kernel.leaf_matching(i, region) == expected

    @given(trees, regions)
    @settings(max_examples=100, deadline=None)
    def test_visited_mask_follows_labels(self, tree, region):
        """A node is visited iff every proper ancestor is non-disjoint."""
        kernel = tree.kernel
        labels = kernel.classify(region)
        visited = kernel.visited_mask(labels)
        assert visited[0]
        for i in range(1, kernel.n_nodes):
            parent = int(kernel.parent[i])
            assert visited[i] == (visited[parent] and labels[parent] != DISJOINT)


class TestPlanCacheIdentity:
    @given(trees, regions)
    @settings(max_examples=100, deadline=None)
    def test_plan_cache_hit_identical_to_cold(self, tree, region):
        """A traversal served from a cached plan is indistinguishable
        from one that classified the region from scratch."""
        now, staleness = 1_000.0, 240.0
        tree.plan_cache.clear()
        cold_answer, cold_probes = range_scan(tree, region, now, staleness)
        warm_answer, warm_probes = range_scan(tree, region, now, staleness)
        assert tree.plan_cache.hits >= 1  # second pass was a cache hit
        assert warm_probes == cold_probes
        assert warm_answer.probed_readings == cold_answer.probed_readings
        assert warm_answer.cached_readings == cold_answer.cached_readings
        assert warm_answer.terminals == cold_answer.terminals
        ignored = {"plan_cache_hits", "plan_cache_misses"}
        for f in fields(warm_answer.stats):
            if f.name in ignored:
                continue
            assert getattr(warm_answer.stats, f.name) == getattr(
                cold_answer.stats, f.name
            ), f"stats field {f.name} diverges between warm and cold"
