import pytest

from repro import AvailabilityModel, GeoPoint, Sensor, SensorNetwork


def make_sensors(n=10, availability=1.0):
    return [
        Sensor(
            sensor_id=i,
            location=GeoPoint(float(i), 0.0),
            expiry_seconds=300.0,
            availability=availability,
        )
        for i in range(n)
    ]


class TestProbe:
    def test_all_available_all_answer(self):
        net = SensorNetwork(make_sensors(10))
        result = net.probe(range(10), now=100.0)
        assert len(result.readings) == 10
        assert result.unavailable == () and result.timed_out == ()

    def test_readings_stamped_and_expiring(self):
        net = SensorNetwork(make_sensors(3))
        result = net.probe([0, 1, 2], now=50.0)
        for r in result.readings.values():
            assert r.timestamp == 50.0
            assert r.expires_at == 350.0

    def test_unavailable_sensors_fail(self):
        net = SensorNetwork(make_sensors(200, availability=0.0), seed=0)
        result = net.probe(range(200), now=0.0)
        assert len(result.readings) == 0
        assert len(result.unavailable) + len(result.timed_out) == 200

    def test_partial_availability_roughly_matches(self):
        net = SensorNetwork(make_sensors(2000, availability=0.7), seed=1)
        result = net.probe(range(2000), now=0.0)
        assert 0.65 <= len(result.readings) / 2000 <= 0.75

    def test_unknown_sensor_rejected(self):
        net = SensorNetwork(make_sensors(3))
        with pytest.raises(KeyError):
            net.probe([99], now=0.0)

    def test_duplicate_sensor_ids_rejected(self):
        sensors = make_sensors(2) + make_sensors(1)
        with pytest.raises(ValueError):
            SensorNetwork(sensors)

    def test_outcomes_recorded_in_availability_model(self):
        model = AvailabilityModel()
        net = SensorNetwork(make_sensors(5), availability_model=model, seed=0)
        net.probe(range(5), now=0.0)
        assert all(model.observed_probes(i) == 1 for i in range(5))


class TestLatencyModel:
    def test_empty_batch_free(self):
        net = SensorNetwork(make_sensors(1))
        assert net.batch_latency(0) == 0.0

    def test_single_round(self):
        net = SensorNetwork(make_sensors(1), rtt_seconds=0.2, parallelism=64)
        assert net.batch_latency(64) == pytest.approx(0.2)

    def test_multiple_rounds(self):
        net = SensorNetwork(make_sensors(1), rtt_seconds=0.2, parallelism=64)
        assert net.batch_latency(65) == pytest.approx(0.4)

    def test_probe_accumulates_stats(self):
        net = SensorNetwork(make_sensors(10))
        net.probe(range(10), now=0.0)
        net.probe(range(5), now=1.0)
        assert net.stats.probes_attempted == 15
        assert net.stats.batches == 2
        assert net.stats.per_sensor_probes[0] == 2

    def test_reset_stats(self):
        net = SensorNetwork(make_sensors(3))
        net.probe(range(3), now=0.0)
        net.reset_stats()
        assert net.stats.probes_attempted == 0

    def test_stats_snapshot_isolated(self):
        net = SensorNetwork(make_sensors(3))
        net.probe(range(3), now=0.0)
        snap = net.stats.snapshot()
        net.probe(range(3), now=1.0)
        assert snap.probes_attempted == 3
        assert net.stats.probes_attempted == 6

    def test_custom_value_fn(self):
        net = SensorNetwork(make_sensors(2), value_fn=lambda s, t: s.sensor_id * 10.0)
        result = net.probe([0, 1], now=0.0)
        assert result.readings[1].value == 10.0
