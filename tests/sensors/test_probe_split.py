"""The transport-facing split of ``SensorNetwork.probe``.

``probe()`` must be bit-identical to ``complete_batch(ids,
sample_attempts(ids), now)`` (the dispatcher builds on the two halves),
and ``ProbeResult`` must meter unavailable vs timed-out failures
separately.
"""

from __future__ import annotations

from repro import AvailabilityModel, SensorNetwork
from tests.conftest import make_registry


def _network(availability=0.6, seed=3, **kw):
    registry = make_registry(n=120, availability=availability, seed=11)
    return SensorNetwork(
        registry.all(), availability_model=AvailabilityModel(), seed=seed, **kw
    )


def test_probe_equals_sample_plus_complete():
    a = _network(latency_jitter=0.4, timeout_seconds=0.5)
    b = _network(latency_jitter=0.4, timeout_seconds=0.5)
    ids = [s.sensor_id for s in a.sensors()][:80]
    ra = a.probe(ids, now=100.0)
    attempts = b.sample_attempts(ids)
    rb = b.complete_batch(ids, attempts, now=100.0)
    assert ra.readings == rb.readings
    assert ra.unavailable == rb.unavailable
    assert ra.timed_out == rb.timed_out
    assert ra.latency_seconds == rb.latency_seconds
    assert a.stats == b.stats
    for sid in ids:
        assert a.availability_model.estimate(sid) == b.availability_model.estimate(sid)


def test_failure_modes_metered_separately():
    net = _network(availability=0.5, latency_jitter=0.8, timeout_seconds=0.25)
    ids = [s.sensor_id for s in net.sensors()]
    result = net.probe(ids, now=0.0)
    assert result.timed_out, "jittered latencies above the timeout expected"
    assert result.unavailable, "availability 0.5 failures expected"
    assert result.attempted == len(ids)
    assert net.stats.probes_unavailable == len(result.unavailable)
    assert net.stats.probes_timed_out == len(result.timed_out)
    assert (
        net.stats.probes_succeeded
        + net.stats.probes_unavailable
        + net.stats.probes_timed_out
        == net.stats.probes_attempted
    )


def test_no_timeout_means_no_timed_out():
    net = _network(availability=0.0, latency_jitter=0.0)
    ids = [s.sensor_id for s in net.sensors()][:10]
    result = net.probe(ids, now=0.0)
    assert result.timed_out == ()
    assert len(result.unavailable) == 10


def test_sample_attempts_records_nothing():
    net = _network()
    ids = [s.sensor_id for s in net.sensors()][:20]
    attempts = net.sample_attempts(ids)
    assert len(attempts) == 20
    assert net.stats.probes_attempted == 0
    assert all(net.availability_model.observed_probes(sid) == 0 for sid in ids)


def test_snapshot_carries_new_counters():
    net = _network(availability=0.5)
    ids = [s.sensor_id for s in net.sensors()][:40]
    net.probe(ids, now=0.0)
    snap = net.stats.snapshot()
    assert snap == net.stats
    net.probe(ids, now=1.0)
    assert snap.probes_attempted == 40
    assert net.stats.probes_attempted == 80
