import pytest

from repro import GeoPoint, Rect, Sensor, SensorRegistry


class TestRegistration:
    def test_ids_dense_and_increasing(self):
        reg = SensorRegistry()
        s0 = reg.register(GeoPoint(0, 0), 300.0)
        s1 = reg.register(GeoPoint(1, 1), 300.0)
        assert (s0.sensor_id, s1.sensor_id) == (0, 1)

    def test_metadata_stored_sorted(self):
        reg = SensorRegistry()
        s = reg.register(GeoPoint(0, 0), 300.0, metadata={"b": "2", "a": "1"})
        assert s.metadata == (("a", "1"), ("b", "2"))

    def test_register_all_rejects_duplicates(self):
        reg = SensorRegistry()
        s = reg.register(GeoPoint(0, 0), 300.0)
        with pytest.raises(ValueError):
            reg.register_all([s])

    def test_register_all_advances_ids(self):
        reg = SensorRegistry()
        reg.register_all(
            [Sensor(sensor_id=5, location=GeoPoint(0, 0), expiry_seconds=60.0)]
        )
        s = reg.register(GeoPoint(1, 1), 60.0)
        assert s.sensor_id == 6

    def test_unregister(self):
        reg = SensorRegistry()
        s = reg.register(GeoPoint(0, 0), 300.0)
        reg.unregister(s.sensor_id)
        assert s.sensor_id not in reg
        with pytest.raises(KeyError):
            reg.unregister(s.sensor_id)


class TestLookup:
    @pytest.fixture
    def reg(self) -> SensorRegistry:
        reg = SensorRegistry()
        for i in range(10):
            reg.register(
                GeoPoint(float(i), float(i)),
                300.0,
                sensor_type="water" if i % 2 == 0 else "weather",
            )
        return reg

    def test_len_and_iter(self, reg):
        assert len(reg) == 10
        assert len(list(reg)) == 10

    def test_by_type(self, reg):
        assert len(reg.by_type("water")) == 5
        assert all(s.sensor_type == "water" for s in reg.by_type("water"))

    def test_within(self, reg):
        found = reg.within(Rect(0, 0, 4.5, 4.5))
        assert {s.sensor_id for s in found} == {0, 1, 2, 3, 4}

    def test_bounding_box(self, reg):
        assert reg.bounding_box() == Rect(0, 0, 9, 9)

    def test_bounding_box_empty_rejected(self):
        with pytest.raises(ValueError):
            SensorRegistry().bounding_box()

    def test_all_in_id_order(self, reg):
        ids = [s.sensor_id for s in reg.all()]
        assert ids == sorted(ids)
