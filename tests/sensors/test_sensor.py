import pytest

from repro import GeoPoint, Reading, Sensor


def make_sensor(**overrides):
    defaults = dict(
        sensor_id=1,
        location=GeoPoint(0, 0),
        expiry_seconds=300.0,
        sensor_type="restaurant",
        availability=0.9,
    )
    defaults.update(overrides)
    return Sensor(**defaults)


class TestSensorValidation:
    def test_valid_sensor(self):
        s = make_sensor()
        assert s.sensor_type == "restaurant"

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            make_sensor(sensor_id=-1)

    def test_nonpositive_expiry_rejected(self):
        with pytest.raises(ValueError):
            make_sensor(expiry_seconds=0.0)

    def test_availability_bounds(self):
        with pytest.raises(ValueError):
            make_sensor(availability=1.5)
        with pytest.raises(ValueError):
            make_sensor(availability=-0.1)
        make_sensor(availability=0.0)
        make_sensor(availability=1.0)


class TestReading:
    def test_expiry_before_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Reading(sensor_id=1, value=5.0, timestamp=100.0, expires_at=50.0)

    def test_validity_window(self):
        r = Reading(sensor_id=1, value=5.0, timestamp=100.0, expires_at=400.0)
        assert r.is_valid_at(100.0)
        assert r.is_valid_at(399.9)
        assert not r.is_valid_at(400.0)

    def test_freshness_requires_both_conditions(self):
        r = Reading(sensor_id=1, value=5.0, timestamp=100.0, expires_at=400.0)
        assert r.is_fresh_at(150.0, max_staleness=60.0)
        # Stale even though unexpired.
        assert not r.is_fresh_at(200.0, max_staleness=60.0)
        # Expired even though within staleness... requires a long window.
        assert not r.is_fresh_at(401.0, max_staleness=1000.0)

    def test_lifetime(self):
        r = Reading(sensor_id=1, value=5.0, timestamp=100.0, expires_at=400.0)
        assert r.lifetime == 300.0
