"""Latency jitter, probe timeouts, and decayed availability tracking."""

import numpy as np
import pytest

from repro import AvailabilityModel, GeoPoint, Sensor, SensorNetwork


def make_sensors(n=100, availability=1.0):
    return [
        Sensor(
            sensor_id=i,
            location=GeoPoint(float(i), 0.0),
            expiry_seconds=300.0,
            availability=availability,
        )
        for i in range(n)
    ]


class TestLatencyJitter:
    def test_zero_jitter_deterministic(self):
        net = SensorNetwork(make_sensors(), rtt_seconds=0.2, parallelism=10)
        r1 = net.probe(range(25), now=0.0)
        assert r1.latency_seconds == pytest.approx(0.2 * 3)

    def test_jitter_produces_varied_latency(self):
        net = SensorNetwork(
            make_sensors(), rtt_seconds=0.2, parallelism=10, latency_jitter=0.5, seed=1
        )
        l1 = net.probe(range(25), now=0.0).latency_seconds
        l2 = net.probe(range(25), now=1.0).latency_seconds
        assert l1 != l2
        # Round maxima dominate: jittered batches are slower on average
        # than the deterministic baseline.
        assert l1 > 0.2 * 3 * 0.5

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork(make_sensors(5), latency_jitter=-0.1)


class TestTimeouts:
    def test_timeouts_cause_failures(self):
        # Huge jitter + a tight timeout: many probes must fail even
        # though every sensor is "available".
        net = SensorNetwork(
            make_sensors(1000),
            rtt_seconds=0.2,
            latency_jitter=1.0,
            timeout_seconds=0.2,
            seed=2,
        )
        result = net.probe(range(1000), now=0.0)
        assert len(result.unavailable) + len(result.timed_out) > 200

    def test_no_timeout_all_succeed(self):
        net = SensorNetwork(
            make_sensors(200), rtt_seconds=0.2, latency_jitter=1.0, seed=2
        )
        result = net.probe(range(200), now=0.0)
        assert result.unavailable == () and result.timed_out == ()

    def test_timeouts_recorded_as_unavailability(self):
        model = AvailabilityModel()
        net = SensorNetwork(
            make_sensors(500),
            availability_model=model,
            rtt_seconds=0.2,
            latency_jitter=1.5,
            timeout_seconds=0.1,
            seed=3,
        )
        net.probe(range(500), now=0.0)
        mean = model.mean_estimate(list(range(500)))
        assert mean < 0.9  # the model learned the fleet looks flaky

    def test_timeout_caps_round_latency(self):
        net = SensorNetwork(
            make_sensors(100),
            rtt_seconds=0.2,
            parallelism=100,
            latency_jitter=2.0,
            timeout_seconds=0.5,
            seed=4,
        )
        result = net.probe(range(100), now=0.0)
        assert result.latency_seconds <= 0.5 + 1e-9

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            SensorNetwork(make_sensors(5), timeout_seconds=0.0)


class TestDecayedAvailability:
    def test_decay_bounds_validated(self):
        with pytest.raises(ValueError):
            AvailabilityModel(decay=0.0)
        with pytest.raises(ValueError):
            AvailabilityModel(decay=1.5)

    def test_decayed_estimate_tracks_drift(self):
        """A fleet that dies mid-history: the decayed estimator follows,
        the all-history one lags."""
        plain = AvailabilityModel()
        decayed = AvailabilityModel(decay=0.9)
        for _ in range(200):  # healthy era
            plain.record(1, True)
            decayed.record(1, True)
        for _ in range(30):  # the sensor dies
            plain.record(1, False)
            decayed.record(1, False)
        assert decayed.estimate(1) < 0.15
        assert plain.estimate(1) > 0.7

    def test_decayed_estimate_recovers(self):
        decayed = AvailabilityModel(decay=0.9)
        for _ in range(50):
            decayed.record(1, False)
        for _ in range(50):
            decayed.record(1, True)
        assert decayed.estimate(1) > 0.85

    def test_effective_window_bounded(self):
        """With decay λ the weighted history converges to 1/(1-λ)."""
        model = AvailabilityModel(decay=0.9)
        for _ in range(1000):
            model.record(1, True)
        assert model.observed_probes(1) == pytest.approx(10, abs=1)

    def test_plain_model_unchanged(self):
        model = AvailabilityModel()
        for _ in range(100):
            model.record(1, True)
        assert model.observed_probes(1) == 100
