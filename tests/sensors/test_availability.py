import pytest

from repro import AvailabilityModel


class TestEstimates:
    def test_unknown_sensor_uses_prior(self):
        model = AvailabilityModel()
        assert model.estimate(42) == pytest.approx(0.5)

    def test_estimate_converges_to_true_rate(self):
        model = AvailabilityModel()
        for i in range(1000):
            model.record(1, success=i % 10 != 0)  # 90% up
        assert model.estimate(1) == pytest.approx(0.9, abs=0.02)

    def test_all_failures_stays_positive(self):
        model = AvailabilityModel()
        for _ in range(100):
            model.record(2, success=False)
        assert 0 < model.estimate(2) < 0.05

    def test_seed_bulk_history(self):
        model = AvailabilityModel()
        model.seed(3, successes=80, failures=20)
        assert model.estimate(3) == pytest.approx(0.8, abs=0.02)
        assert model.observed_probes(3) == 100

    def test_seed_negative_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityModel().seed(1, successes=-1, failures=0)


class TestMeanEstimate:
    def test_empty_set_is_one(self):
        assert AvailabilityModel().mean_estimate([]) == 1.0

    def test_mean_over_mixed_sensors(self):
        model = AvailabilityModel()
        model.seed(1, 99, 1)  # ~0.99
        model.seed(2, 1, 99)  # ~0.02
        mean = model.mean_estimate([1, 2])
        assert mean == pytest.approx(0.5, abs=0.03)

    def test_mean_clamped_away_from_zero(self):
        model = AvailabilityModel(prior_successes=1e-6, prior_failures=0)
        model.seed(1, 0, 10_000)
        assert model.mean_estimate([1]) >= 1e-3

    def test_observed_probes_unknown_sensor(self):
        assert AvailabilityModel().observed_probes(9) == 0
