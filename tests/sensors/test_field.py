import numpy as np
import pytest

from repro import GeoPoint, Rect, SpatialField


@pytest.fixture
def field() -> SpatialField:
    return SpatialField(Rect(0, 0, 100, 100), seed=3)


class TestSpatialField:
    def test_deterministic_mean(self, field):
        p = GeoPoint(30, 40)
        assert field.mean_value(p, 0.0) == field.mean_value(p, 0.0)

    def test_spatial_correlation(self, field):
        """Nearby points must be far more similar than distant ones."""
        rng = np.random.default_rng(0)
        near_diffs, far_diffs = [], []
        for _ in range(200):
            x, y = rng.uniform(5, 95, 2)
            base = field.mean_value(GeoPoint(x, y))
            near_diffs.append(abs(base - field.mean_value(GeoPoint(x + 1, y + 1))))
            fx, fy = rng.uniform(0, 100, 2)
            far_diffs.append(abs(base - field.mean_value(GeoPoint(fx, fy))))
        assert np.mean(near_diffs) < 0.3 * np.mean(far_diffs)

    def test_values_positive(self, field):
        rng = np.random.default_rng(1)
        for _ in range(50):
            p = GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            assert field.mean_value(p) > 0

    def test_sample_noise_centered_on_mean(self, field):
        p = GeoPoint(50, 50)
        samples = [field.sample(p) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(field.mean_value(p), abs=1.0)

    def test_temporal_drift_changes_values(self, field):
        p = GeoPoint(50, 50)
        assert field.mean_value(p, 0.0) != field.mean_value(p, 20_000.0)

    def test_regional_mean_matches_average(self, field):
        pts = [GeoPoint(10, 10), GeoPoint(20, 20), GeoPoint(30, 30)]
        expected = sum(field.mean_value(p) for p in pts) / 3
        assert field.regional_mean(pts) == pytest.approx(expected)

    def test_regional_mean_empty_rejected(self, field):
        with pytest.raises(ValueError):
            field.regional_mean([])

    def test_zero_bumps_rejected(self):
        with pytest.raises(ValueError):
            SpatialField(Rect(0, 0, 1, 1), n_bumps=0)
