import pytest

from repro.sensors import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(100.0).now() == 100.0

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now() == 5.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now() == 4.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_future(self):
        clock = SimClock(10.0)
        assert clock.advance_to(20.0) == 20.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(10.0)
        assert clock.advance_to(5.0) == 10.0
