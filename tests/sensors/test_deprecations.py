"""Deprecation surface of the sensors package."""

from __future__ import annotations

import warnings

import pytest

from repro import AvailabilityModel, SensorNetwork

from tests.conftest import make_registry


def _probe(availability=0.0, n=10):
    registry = make_registry(n=n, availability=availability, seed=5)
    network = SensorNetwork(
        registry.all(), availability_model=AvailabilityModel(), seed=2
    )
    return network.probe([s.sensor_id for s in registry.all()], now=0.0)


class TestProbeResultFailedDeprecation:
    def test_failed_warns_deprecation(self):
        result = _probe()
        with pytest.warns(DeprecationWarning, match="ProbeResult.failed"):
            _ = result.failed

    def test_failed_still_returns_union_of_replacements(self):
        result = _probe()
        with pytest.warns(DeprecationWarning):
            failed = result.failed
        assert sorted(failed) == sorted(result.unavailable + result.timed_out)

    def test_replacements_do_not_warn(self):
        result = _probe()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _ = result.unavailable
            _ = result.timed_out
            _ = result.attempted
