"""Deprecation surface of the sensors package.

``ProbeResult.failed`` went through the full cycle: deprecated in the
sharded-federation PR, removed once every internal caller had migrated
to the ``unavailable`` / ``timed_out`` split.  These tests pin the
removal so the combined property cannot quietly come back.
"""

from __future__ import annotations

import warnings

from repro import AvailabilityModel, SensorNetwork

from tests.conftest import make_registry


def _probe(availability=0.0, n=10):
    registry = make_registry(n=n, availability=availability, seed=5)
    network = SensorNetwork(
        registry.all(), availability_model=AvailabilityModel(), seed=2
    )
    return network.probe([s.sensor_id for s in registry.all()], now=0.0)


class TestProbeResultFailedRemoval:
    def test_failed_property_is_gone(self):
        result = _probe()
        assert not hasattr(result, "failed")

    def test_replacements_do_not_warn(self):
        result = _probe()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _ = result.unavailable
            _ = result.timed_out
            _ = result.attempted
