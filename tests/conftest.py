"""Shared fixtures: small deterministic sensor populations and trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AvailabilityModel,
    COLRTree,
    COLRTreeConfig,
    GeoPoint,
    SensorNetwork,
    SensorRegistry,
)


def make_registry(
    n: int = 400,
    extent: float = 100.0,
    expiry_range: tuple[float, float] = (120.0, 600.0),
    availability: float = 1.0,
    seed: int = 0,
) -> SensorRegistry:
    """A uniform random sensor population over a square region."""
    rng = np.random.default_rng(seed)
    registry = SensorRegistry()
    for _ in range(n):
        registry.register(
            GeoPoint(float(rng.uniform(0, extent)), float(rng.uniform(0, extent))),
            expiry_seconds=float(rng.uniform(*expiry_range)),
            availability=availability,
        )
    return registry


@pytest.fixture
def registry() -> SensorRegistry:
    return make_registry()


@pytest.fixture
def flaky_registry() -> SensorRegistry:
    return make_registry(availability=0.8, seed=7)


def make_tree(
    registry: SensorRegistry,
    config: COLRTreeConfig | None = None,
    network_seed: int = 1,
) -> COLRTree:
    """A tree wired to a network and a shared availability model."""
    model = AvailabilityModel()
    network = SensorNetwork(
        registry.all(), availability_model=model, seed=network_seed
    )
    cfg = config if config is not None else COLRTreeConfig(
        max_expiry_seconds=600.0, slot_seconds=120.0
    )
    return COLRTree(registry.all(), cfg, network=network, availability_model=model)


@pytest.fixture
def tree(registry: SensorRegistry) -> COLRTree:
    return make_tree(registry)
