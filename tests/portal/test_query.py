import pytest

from repro import Rect
from repro.portal import SensorQuery


class TestValidation:
    def test_valid(self):
        SensorQuery(region=Rect(0, 0, 1, 1), staleness_seconds=60.0)

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            SensorQuery(region=Rect(0, 0, 1, 1), staleness_seconds=-1.0)

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError):
            SensorQuery(region=Rect(0, 0, 1, 1), staleness_seconds=1.0, aggregate="median")

    def test_nonpositive_cluster_rejected(self):
        with pytest.raises(ValueError):
            SensorQuery(
                region=Rect(0, 0, 1, 1), staleness_seconds=1.0, cluster_miles=0.0
            )

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            SensorQuery(region=Rect(0, 0, 1, 1), staleness_seconds=1.0, sample_size=-1)

    def test_defaults(self):
        q = SensorQuery(region=Rect(0, 0, 1, 1), staleness_seconds=1.0)
        assert q.aggregate == "count"
        assert q.cluster_miles is None
        assert q.sample_size is None
        assert q.sensor_type is None
