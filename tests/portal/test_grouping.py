import pytest

from repro import GeoPoint, Reading
from repro.core.aggregates import AggregateSketch
from repro.core.lookup import QueryAnswer
from repro.portal import group_answer


LOCATIONS = {
    0: GeoPoint(-122.33, 47.60),  # Seattle
    1: GeoPoint(-122.34, 47.61),  # ~1 mile away
    2: GeoPoint(-71.06, 42.36),   # Boston
}


def loc(sensor_id):
    return LOCATIONS[sensor_id]


def reading(sensor_id, value):
    return Reading(sensor_id=sensor_id, value=value, timestamp=0.0, expires_at=100.0)


class TestGrouping:
    def test_no_cluster_one_group_per_reading(self):
        answer = QueryAnswer(probed_readings=[reading(0, 1.0), reading(2, 2.0)])
        groups = group_answer(answer, cluster_miles=None, sensor_location=loc)
        assert len(groups) == 2
        assert all(g.size == 1 for g in groups)

    def test_nearby_sensors_merged(self):
        answer = QueryAnswer(
            probed_readings=[reading(0, 1.0), reading(1, 3.0), reading(2, 5.0)]
        )
        groups = group_answer(answer, cluster_miles=10.0, sensor_location=loc)
        assert len(groups) == 2
        seattle = max(groups, key=lambda g: g.size)
        assert seattle.size == 2
        assert seattle.result("avg") == pytest.approx(2.0)

    def test_distant_sensors_not_merged(self):
        answer = QueryAnswer(probed_readings=[reading(0, 1.0), reading(2, 2.0)])
        groups = group_answer(answer, cluster_miles=10.0, sensor_location=loc)
        assert len(groups) == 2

    def test_group_center_is_member_centroid(self):
        answer = QueryAnswer(probed_readings=[reading(0, 1.0), reading(1, 3.0)])
        [group] = group_answer(answer, cluster_miles=10.0, sensor_location=loc)
        assert group.center.x == pytest.approx((LOCATIONS[0].x + LOCATIONS[1].x) / 2)

    def test_cached_readings_grouped_too(self):
        answer = QueryAnswer(cached_readings=[reading(0, 1.0)])
        groups = group_answer(answer, cluster_miles=10.0, sensor_location=loc)
        assert len(groups) == 1

    def test_cached_sketch_becomes_own_group(self):
        sketch = AggregateSketch.of([(1.0, 0.0), (2.0, 0.0)])
        answer = QueryAnswer(cached_sketches=[sketch], cached_sketch_nodes=[42])
        groups = group_answer(answer, cluster_miles=10.0, sensor_location=loc)
        assert len(groups) == 1
        assert groups[0].from_cache_node == 42
        assert groups[0].size == 2

    def test_requires_location_source(self):
        with pytest.raises(ValueError):
            group_answer(QueryAnswer(), cluster_miles=None)
