"""Multi-resolution (zoom-level) queries: per-node terminal grouping."""

import pytest

from repro import COLRTreeConfig, Rect
from repro.portal import SensorMapPortal, SensorQuery, group_by_terminal, parse_query

from tests.conftest import make_registry, make_tree


DEEP_CFG = COLRTreeConfig(
    fanout=4,
    leaf_capacity=8,
    max_expiry_seconds=600.0,
    slot_seconds=120.0,
    terminal_level=2,
    oversample_level=3,
)


@pytest.fixture
def tree():
    return make_tree(make_registry(n=1500, seed=17), DEEP_CFG)


class TestTerminalLevelOverride:
    def test_zoom_moves_terminal_depth(self, tree):
        region = Rect(0, 0, 100, 100)
        deep = tree.query(region, now=0.0, max_staleness=600.0, sample_size=60, terminal_level=3)
        tree2 = make_tree(make_registry(n=1500, seed=17), DEEP_CFG)
        shallow = tree2.query(
            region, now=0.0, max_staleness=600.0, sample_size=60, terminal_level=0
        )
        # With a deeper threshold, probing terminals sit strictly deeper.
        assert min(t.level for t in shallow.terminals) < min(
            t.level for t in deep.terminals
        )

    def test_terminal_levels_respect_override(self, tree):
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=60,
            terminal_level=1,
        )
        # Probing happens strictly below the override level.
        assert all(t.level >= 2 for t in answer.terminals if not t.used_cache)

    def test_negative_level_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.query(
                Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=10,
                terminal_level=-1,
            )

    def test_expected_size_preserved_under_zoom(self, tree):
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=40,
            terminal_level=1,
        )
        # All sensors fully available; prior estimates may inflate a bit.
        assert 20 <= answer.probed_count <= 100


class TestGroupByTerminal:
    def test_groups_anchor_at_level(self, tree):
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=80
        )
        groups = group_by_terminal(answer, tree, level=1)
        anchor_levels = set()
        for g in groups:
            # Every group's weight is positive and centers lie in the domain.
            assert g.size > 0
            assert tree.root.bbox.contains_point(g.center)
            anchor_levels.add(1)
        assert groups

    def test_group_weights_cover_answer(self, tree):
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=80
        )
        groups = group_by_terminal(answer, tree, level=2)
        assert sum(g.size for g in groups) == answer.result_weight

    def test_coarser_level_fewer_groups(self, tree):
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=120
        )
        fine = group_by_terminal(answer, tree, level=4)
        coarse = group_by_terminal(answer, tree, level=0)
        assert len(coarse) <= len(fine)
        assert len(coarse) == 1  # level 0 is the root

    def test_negative_level_rejected(self, tree):
        answer = tree.query(
            Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=10
        )
        with pytest.raises(ValueError):
            group_by_terminal(answer, tree, level=-1)


class TestPortalZoom:
    @pytest.fixture
    def portal(self):
        portal = SensorMapPortal(
            COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0)
        )
        registry = make_registry(n=500, seed=18)
        portal.register_all(registry.all())
        return portal

    def test_zoom_query_groups_per_node(self, portal):
        result = portal.execute(
            SensorQuery(
                region=Rect(0, 0, 100, 100),
                staleness_seconds=600.0,
                sample_size=60,
                zoom_level=1,
            )
        )
        assert result.groups
        assert sum(g.size for g in result.groups) == result.result_weight

    def test_zoom_out_coarsens_groups(self, portal):
        def run(zoom):
            portal.clock.advance(2000.0)  # fresh cache per run
            return portal.execute(
                SensorQuery(
                    region=Rect(0, 0, 100, 100),
                    staleness_seconds=600.0,
                    sample_size=60,
                    zoom_level=zoom,
                )
            )

        coarse = run(0)
        fine = run(3)
        assert len(coarse.groups) <= len(fine.groups)

    def test_zoom_clause_parsed(self):
        q = parse_query(
            "SELECT count(*) FROM sensor S WHERE S.location WITHIN Rect(0,0,1,1) "
            "AND S.time BETWEEN now()-5 AND now() mins SAMPLESIZE 10 ZOOM 2"
        )
        assert q.zoom_level == 2

    def test_invalid_zoom_rejected(self):
        with pytest.raises(ValueError):
            SensorQuery(region=Rect(0, 0, 1, 1), staleness_seconds=1.0, zoom_level=-1)
