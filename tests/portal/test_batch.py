"""Unit tests of the batch query executor (probe coalescing, fan-out,
stats attribution, parity with sequential execution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.shared_scan import ScanRequest, coalesce_probes, shared_range_scan
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery


def build_portal(
    availability: float = 1.0,
    n: int = 300,
    types: tuple[str, ...] = ("generic",),
    seed: int = 3,
) -> SensorMapPortal:
    rng = np.random.default_rng(seed)
    portal = SensorMapPortal(max_sensors_per_query=None)
    for i, (x, y) in enumerate(rng.random((n, 2)) * 100):
        portal.register_sensor(
            GeoPoint(float(x), float(y)),
            expiry_seconds=300.0,
            sensor_type=types[i % len(types)],
            availability=availability,
        )
    portal.rebuild_index()
    return portal


QUERY_A = SensorQuery(region=Rect(10, 10, 60, 60), staleness_seconds=120.0)
QUERY_B = SensorQuery(region=Rect(30, 30, 80, 80), staleness_seconds=120.0)
QUERY_A2 = SensorQuery(region=Rect(10, 10, 60, 60), staleness_seconds=120.0)


class TestCoalesceProbes:
    def test_union_preserves_first_request_order(self):
        union, owner = coalesce_probes([[3, 1, 2], [2, 4], [1, 5]])
        assert union == [3, 1, 2, 4, 5]
        assert owner == {3: 0, 1: 0, 2: 0, 4: 1, 5: 2}

    def test_empty(self):
        assert coalesce_probes([]) == ([], {})
        assert coalesce_probes([[], []]) == ([], {})


class TestSharedRangeScan:
    def test_repeated_region_shares_plan(self):
        portal = build_portal()
        tree = portal.tree("generic")
        scans = shared_range_scan(
            tree,
            [
                ScanRequest(QUERY_A.region, 120.0),
                ScanRequest(QUERY_B.region, 120.0),
                ScanRequest(QUERY_A2.region, 120.0),
            ],
            now=portal.clock.now(),
        )
        first, second, third = (answer.stats for answer, _ in scans)
        assert first.batch_shared_nodes == 0
        assert second.batch_shared_nodes == 0
        assert third.batch_shared_nodes > 0
        assert third.plan_cache_hits == 0  # batch sharing, not a cache hit
        # Shared plan produces the identical probe list.
        assert scans[0][1] == scans[2][1]

    def test_distinct_regions_match_sequential_scan(self):
        from repro.core.lookup import range_scan

        portal = build_portal()
        batch_tree = portal.tree("generic")
        seq_portal = build_portal()
        seq_tree = seq_portal.tree("generic")
        now = portal.clock.now()
        scans = shared_range_scan(
            batch_tree,
            [ScanRequest(QUERY_A.region, 120.0), ScanRequest(QUERY_B.region, 120.0)],
            now,
        )
        for (answer, to_probe), region in zip(scans, (QUERY_A.region, QUERY_B.region)):
            ref_answer, ref_probe = range_scan(seq_tree, region, now, 120.0)
            assert to_probe == ref_probe
            assert answer.stats == ref_answer.stats


class TestExecuteBatch:
    def test_each_sensor_probed_once(self):
        portal = build_portal()
        batch = portal.execute_batch([QUERY_A, QUERY_B, QUERY_A2])
        net = portal.network.stats
        assert net.batches == 1
        assert net.probes_attempted == batch.stats.probes_issued
        assert max(net.per_sensor_probes.values()) == 1
        assert batch.stats.probes_coalesced == (
            batch.stats.probes_requested - batch.stats.probes_issued
        )
        assert batch.stats.probes_coalesced > 0
        assert net.probes_coalesced == batch.stats.probes_coalesced

    def test_readings_fan_out_to_every_requester(self):
        portal = build_portal()
        batch = portal.execute_batch([QUERY_A, QUERY_A2])
        first, second = batch.results
        assert first.result_weight == second.result_weight > 0
        ids_first = {r.sensor_id for r in first.answers[0].probed_readings}
        ids_second = {r.sensor_id for r in second.answers[0].probed_readings}
        assert ids_first == ids_second
        # All of the second query's readings came from the first's probes.
        stats2 = second.answers[0].stats
        assert stats2.sensors_probed == 0
        assert stats2.probes_coalesced == len(ids_second)

    def test_owner_attribution_is_exact(self):
        portal = build_portal()
        batch = portal.execute_batch([QUERY_A, QUERY_B])
        total_probed = sum(
            r.answers[0].stats.sensors_probed for r in batch.results
        )
        assert total_probed == batch.stats.probes_issued

    def test_answer_parity_with_sequential(self):
        seq_portal = build_portal()
        batch_portal = build_portal()
        queries = [QUERY_A, QUERY_B, QUERY_A2]
        seq = [seq_portal.execute(q) for q in queries]
        batch = batch_portal.execute_batch(queries)
        for s, b in zip(seq, batch.results):
            assert s.result_weight == b.result_weight
            assert s.aggregate() == pytest.approx(b.aggregate())

    def test_fewer_probes_than_sequential_when_flaky(self):
        seq_portal = build_portal(availability=0.85)
        batch_portal = build_portal(availability=0.85)
        queries = [QUERY_A, QUERY_B, QUERY_A2] * 4
        for q in queries:
            seq_portal.execute(q)
        batch_portal.execute_batch(queries)
        assert (
            batch_portal.network.stats.probes_attempted
            < seq_portal.network.stats.probes_attempted
        )

    def test_multi_tree_batch(self):
        portal = build_portal(types=("air", "water"))
        q_air = SensorQuery(
            region=Rect(0, 0, 100, 100), staleness_seconds=120.0, sensor_type="air"
        )
        q_all = SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=120.0)
        batch = portal.execute_batch([q_air, q_all])
        assert len(batch.results[0].answers) == 1
        assert len(batch.results[1].answers) == 2
        assert batch.results[1].result_weight == 300

    def test_mixed_exact_and_sampled(self):
        portal = build_portal()
        sampled = SensorQuery(
            region=Rect(0, 0, 100, 100), staleness_seconds=120.0, sample_size=25
        )
        batch = portal.execute_batch([QUERY_A, sampled, QUERY_A2])
        assert batch.results[1].result_weight > 0
        assert batch.results[0].result_weight == batch.results[2].result_weight
        assert batch.stats.probes_coalesced > 0

    def test_empty_batch(self):
        portal = build_portal()
        batch = portal.execute_batch([])
        assert batch.results == []
        assert batch.stats.queries == 0

    def test_unknown_type_raises(self):
        portal = build_portal()
        bad = SensorQuery(
            region=QUERY_A.region, staleness_seconds=120.0, sensor_type="nope"
        )
        with pytest.raises(KeyError):
            portal.execute_batch([QUERY_A, bad])

    def test_batch_results_align_with_queries(self):
        portal = build_portal()
        queries = [QUERY_B, QUERY_A]
        batch = portal.execute_batch(queries)
        assert [r.query for r in batch.results] == queries
