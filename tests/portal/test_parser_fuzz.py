"""Round-trip fuzzing of the query dialect: render a random query as
SQL text, parse it back, and require semantic equality."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rect
from repro.portal import parse_query


lat = st.floats(min_value=-80, max_value=80, allow_nan=False).map(lambda v: round(v, 4))
lon = st.floats(min_value=-170, max_value=170, allow_nan=False).map(lambda v: round(v, 4))


@st.composite
def rect_queries(draw):
    lat1, lat2 = sorted((draw(lat), draw(lat)))
    lon1, lon2 = sorted((draw(lon), draw(lon)))
    agg = draw(st.sampled_from(["count", "sum", "avg", "min", "max"]))
    minutes = draw(st.integers(min_value=1, max_value=120))
    cluster = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=100)))
    sample = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=5000)))
    zoom = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=9)))
    sensor_type = draw(st.one_of(st.none(), st.sampled_from(["restaurant", "water", "traffic"])))
    sql = (
        f"SELECT {agg}(*) FROM sensor S WHERE S.location WITHIN "
        f"Rect({lat1}, {lon1}, {lat2}, {lon2}) "
    )
    if sensor_type is not None:
        sql += f"AND S.type = '{sensor_type}' "
    sql += f"AND S.time BETWEEN now()-{minutes} AND now() mins "
    if cluster is not None:
        sql += f"CLUSTER {cluster} miles "
    if sample is not None:
        sql += f"SAMPLESIZE {sample} "
    if zoom is not None:
        sql += f"ZOOM {zoom}"
    return sql, {
        "agg": agg,
        "region": Rect(lon1, lat1, lon2, lat2),
        "staleness": minutes * 60.0,
        "cluster": float(cluster) if cluster is not None else None,
        "sample": sample,
        "zoom": zoom,
        "type": sensor_type,
    }


class TestRoundTrip:
    @given(rect_queries())
    @settings(max_examples=200)
    def test_render_then_parse(self, case):
        sql, expected = case
        query = parse_query(sql)
        assert query.aggregate == expected["agg"]
        assert query.region == expected["region"]
        assert query.staleness_seconds == expected["staleness"]
        assert query.cluster_miles == expected["cluster"]
        assert query.sample_size == expected["sample"]
        assert query.zoom_level == expected["zoom"]
        assert query.sensor_type == expected["type"]

    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_garbage_never_crashes_unexpectedly(self, text):
        """Arbitrary input either parses or raises QueryParseError —
        never an unhandled exception type."""
        from repro.portal import QueryParseError, SensorQuery

        try:
            result = parse_query(text)
        except QueryParseError:
            return
        assert isinstance(result, SensorQuery)
