import pytest

from repro import Polygon, Rect
from repro.portal import QueryParseError, parse_query


PAPER_QUERY = """
SELECT count(*)
FROM sensor S
WHERE S.location WITHIN Polygon((47.2, -122.5), (47.9, -122.5), (47.9, -121.9), (47.2, -121.9))
AND S.time BETWEEN now()-10 AND now() mins
CLUSTER 10 miles
SAMPLESIZE 30
"""


class TestPaperExample:
    def test_parses(self):
        q = parse_query(PAPER_QUERY)
        assert q.aggregate == "count"
        assert isinstance(q.region, Polygon)
        assert q.staleness_seconds == 600.0
        assert q.cluster_miles == 10.0
        assert q.sample_size == 30

    def test_polygon_latlon_to_xy(self):
        q = parse_query(PAPER_QUERY)
        bbox = q.region.bounding_box
        assert bbox.min_x == -122.5 and bbox.max_x == -121.9
        assert bbox.min_y == 47.2 and bbox.max_y == 47.9


class TestVariants:
    def test_rect_shorthand(self):
        q = parse_query(
            "SELECT avg(value) FROM sensor S WHERE S.location WITHIN "
            "Rect(47.0, -123.0, 48.0, -122.0) AND S.time BETWEEN now()-5 AND now() mins"
        )
        assert q.aggregate == "avg"
        assert q.region == Rect(-123.0, 47.0, -122.0, 48.0)
        assert q.cluster_miles is None and q.sample_size is None

    def test_type_filter(self):
        q = parse_query(
            "SELECT count(*) FROM sensor S WHERE S.location WITHIN "
            "Rect(0, 0, 1, 1) AND S.type = 'restaurant' "
            "AND S.time BETWEEN now()-10 AND now() mins"
        )
        assert q.sensor_type == "restaurant"

    @pytest.mark.parametrize(
        "unit,expected",
        [("secs", 10.0), ("mins", 600.0), ("hours", 36_000.0), ("", 600.0)],
    )
    def test_time_units(self, unit, expected):
        q = parse_query(
            "SELECT count(*) FROM sensor S WHERE S.location WITHIN Rect(0,0,1,1) "
            f"AND S.time BETWEEN now()-10 AND now() {unit}"
        )
        assert q.staleness_seconds == expected

    def test_case_insensitive(self):
        q = parse_query(
            "select COUNT(*) from SENSOR s where s.LOCATION within rect(0,0,1,1) "
            "and s.time BETWEEN NOW()-2 and now() MINS samplesize 5"
        )
        assert q.sample_size == 5

    def test_min_max_sum(self):
        for agg in ("min", "max", "sum"):
            q = parse_query(
                f"SELECT {agg}(value) FROM sensor S WHERE S.location WITHIN "
                "Rect(0,0,1,1) AND S.time BETWEEN now()-1 AND now()"
            )
            assert q.aggregate == agg


class TestErrors:
    def test_missing_select(self):
        with pytest.raises(QueryParseError):
            parse_query("WHERE S.location WITHIN Rect(0,0,1,1)")

    def test_missing_region(self):
        with pytest.raises(QueryParseError):
            parse_query(
                "SELECT count(*) FROM sensor S WHERE S.time BETWEEN now()-1 AND now()"
            )

    def test_missing_time_window(self):
        with pytest.raises(QueryParseError):
            parse_query(
                "SELECT count(*) FROM sensor S WHERE S.location WITHIN Rect(0,0,1,1)"
            )

    def test_polygon_too_few_vertices(self):
        with pytest.raises(QueryParseError):
            parse_query(
                "SELECT count(*) FROM sensor S WHERE S.location WITHIN "
                "Polygon((0,0),(1,1)) AND S.time BETWEEN now()-1 AND now()"
            )

    def test_rect_wrong_arity(self):
        with pytest.raises(QueryParseError):
            parse_query(
                "SELECT count(*) FROM sensor S WHERE S.location WITHIN "
                "Rect(0,0,1) AND S.time BETWEEN now()-1 AND now()"
            )

    def test_rect_inverted(self):
        with pytest.raises(QueryParseError):
            parse_query(
                "SELECT count(*) FROM sensor S WHERE S.location WITHIN "
                "Rect(5,5,1,1) AND S.time BETWEEN now()-1 AND now()"
            )
