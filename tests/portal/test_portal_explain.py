import pytest

from repro import COLRTreeConfig, Rect
from repro.portal import SensorMapPortal, SensorQuery

from tests.conftest import make_registry


@pytest.fixture
def portal():
    portal = SensorMapPortal(
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        max_sensors_per_query=None,
    )
    registry = make_registry(n=400, seed=70)
    for sensor in registry.all():
        portal.register_sensor(
            sensor.location,
            sensor.expiry_seconds,
            sensor_type="restaurant" if sensor.sensor_id % 2 == 0 else "traffic",
        )
    return portal


QUERY = SensorQuery(region=Rect(0, 0, 70, 70), staleness_seconds=600.0, sample_size=25)


class TestPortalExplain:
    def test_no_side_effects(self, portal):
        info = portal.explain(QUERY)
        assert info["expected_probes"] > 0
        assert portal.network.stats.probes_attempted == 0

    def test_per_type_plans(self, portal):
        info = portal.explain(QUERY)
        assert set(info["plans"]) == {"restaurant", "traffic"}

    def test_type_filter_restricts_plans(self, portal):
        info = portal.explain(
            SensorQuery(
                region=Rect(0, 0, 70, 70),
                staleness_seconds=600.0,
                sample_size=25,
                sensor_type="traffic",
            )
        )
        assert set(info["plans"]) == {"traffic"}

    def test_unknown_type_rejected(self, portal):
        with pytest.raises(KeyError):
            portal.explain(
                SensorQuery(
                    region=Rect(0, 0, 1, 1),
                    staleness_seconds=1.0,
                    sensor_type="submarine",
                )
            )

    def test_warm_cache_visible_in_plan(self, portal):
        cold = portal.explain(QUERY)
        portal.execute(QUERY)
        portal.clock.advance(5.0)
        warm = portal.explain(QUERY)
        assert warm["expected_probes"] < cold["expected_probes"]
        assert warm["cache_coverage"] > cold["cache_coverage"]

    def test_explain_tracks_execution_roughly(self, portal):
        info = portal.explain(QUERY)
        result = portal.execute(QUERY)
        probed = sum(a.stats.sensors_probed for a in result.answers)
        assert info["expected_probes"] == pytest.approx(probed, rel=0.6, abs=15)
