import pytest

from repro import COLRTreeConfig, GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery

from tests.conftest import make_registry


@pytest.fixture
def portal() -> SensorMapPortal:
    portal = SensorMapPortal(
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0)
    )
    registry = make_registry(n=300, seed=12)
    for sensor in registry.all():
        portal.register_sensor(
            sensor.location,
            sensor.expiry_seconds,
            sensor_type="restaurant" if sensor.sensor_id % 2 == 0 else "traffic",
        )
    return portal


class TestLifecycle:
    def test_rebuild_required_before_query(self, portal):
        portal.rebuild_index()
        assert set(portal.sensor_types()) == {"restaurant", "traffic"}

    def test_query_autobuilds(self, portal):
        result = portal.execute(
            SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=600.0, sample_size=20)
        )
        assert result.result_weight > 0

    def test_registering_marks_dirty(self, portal):
        portal.rebuild_index()
        assert len(portal.tree("restaurant")) == 150
        for _ in range(50):
            portal.register_sensor(GeoPoint(50, 50), 300.0, sensor_type="restaurant")
        # The next tree access rebuilds with the new population.
        assert len(portal.tree("restaurant")) == 200

    def test_empty_portal_rejected(self):
        portal = SensorMapPortal()
        with pytest.raises(ValueError):
            portal.rebuild_index()


class TestExecution:
    def test_type_filter_restricts_results(self, portal):
        all_result = portal.execute(
            SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=600.0)
        )
        restaurant_result = portal.execute(
            SensorQuery(
                region=Rect(0, 0, 100, 100),
                staleness_seconds=600.0,
                sensor_type="restaurant",
            )
        )
        assert restaurant_result.result_weight < all_result.result_weight

    def test_unknown_type_rejected(self, portal):
        with pytest.raises(KeyError):
            portal.execute(
                SensorQuery(
                    region=Rect(0, 0, 1, 1),
                    staleness_seconds=1.0,
                    sensor_type="submarine",
                )
            )

    def test_count_aggregate(self, portal):
        result = portal.execute(
            SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=600.0)
        )
        assert result.aggregate() == float(result.result_weight)

    def test_latencies_positive(self, portal):
        result = portal.execute(
            SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=600.0, sample_size=30)
        )
        assert result.processing_seconds > 0
        assert result.end_to_end_seconds >= result.processing_seconds

    def test_sql_round_trip(self, portal):
        result = portal.execute_sql(
            "SELECT count(*) FROM sensor S WHERE S.location WITHIN "
            "Rect(0, 0, 100, 100) AND S.time BETWEEN now()-10 AND now() mins "
            "SAMPLESIZE 25"
        )
        assert result.query.sample_size == 25
        assert result.result_weight > 0

    def test_clock_drives_staleness(self, portal):
        region = Rect(0, 0, 100, 100)
        q = SensorQuery(region=region, staleness_seconds=60.0, sample_size=30)
        r1 = portal.execute(q)
        portal.clock.advance(30.0)
        r2 = portal.execute(q)  # within staleness: cache helps
        portal.clock.advance(120.0)
        r3 = portal.execute(q)  # beyond staleness: probes again
        probed_2 = sum(a.stats.sensors_probed for a in r2.answers)
        probed_3 = sum(a.stats.sensors_probed for a in r3.answers)
        probed_1 = sum(a.stats.sensors_probed for a in r1.answers)
        assert probed_2 < probed_1
        assert probed_3 > probed_2


class TestGrouping:
    def test_cluster_produces_fewer_groups(self, portal):
        region = Rect(0, 0, 100, 100)
        fine = portal.execute(
            SensorQuery(region=region, staleness_seconds=600.0, sample_size=50)
        )
        portal.clock.advance(2000.0)  # expire cache to re-run cleanly
        coarse = portal.execute(
            SensorQuery(
                region=region,
                staleness_seconds=600.0,
                sample_size=50,
                cluster_miles=2000.0,
            )
        )
        assert len(coarse.groups) <= len(fine.groups)

    def test_group_weights_cover_answer(self, portal):
        result = portal.execute(
            SensorQuery(
                region=Rect(0, 0, 100, 100),
                staleness_seconds=600.0,
                sample_size=40,
                cluster_miles=500.0,
            )
        )
        assert sum(g.size for g in result.groups) == result.result_weight


class TestPortalStats:
    def test_stats_shape(self, portal):
        stats = portal.stats()
        assert stats["total_sensors"] == 300
        assert set(stats["types"]) == {"restaurant", "traffic"}
        for info in stats["types"].values():
            assert info["sensors"] > 0
            assert info["queries"] == 0

    def test_stats_track_activity(self, portal):
        portal.execute(
            SensorQuery(region=Rect(0, 0, 100, 100), staleness_seconds=600.0, sample_size=20)
        )
        stats = portal.stats()
        assert stats["network"]["probes_attempted"] > 0
        assert any(info["queries"] == 1 for info in stats["types"].values())
        assert any(info["cached_readings"] > 0 for info in stats["types"].values())
