"""Staggered continuous-query ticks: per-subscription phase offsets and
their interaction with the transport dispatcher's dedup tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import GeoPoint, Rect
from repro.portal import ContinuousQueryManager, SensorMapPortal, SensorQuery
from repro.transport import TransportConfig


def _build_portal(transport=None, n=80, availability=1.0):
    rng = np.random.default_rng(7)
    portal = SensorMapPortal(max_sensors_per_query=None, transport=transport)
    for x, y in rng.random((n, 2)) * 100:
        portal.register_sensor(
            GeoPoint(float(x), float(y)),
            expiry_seconds=600.0,
            availability=availability,
        )
    portal.rebuild_index()
    return portal


QUERY = SensorQuery(region=Rect(10.0, 10.0, 90.0, 90.0), staleness_seconds=120.0)


class TestPhaseOffsets:
    def test_default_phase_is_zero_and_due_immediately(self):
        portal = _build_portal()
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY, refresh_seconds=60.0)
        assert sub.phase_seconds == 0.0
        assert sub.due_at() == portal.clock.now()
        assert len(manager.tick()) == 1

    def test_explicit_phase_delays_first_run_only(self):
        portal = _build_portal()
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY, refresh_seconds=60.0, phase_seconds=25.0)
        assert manager.tick() == []
        portal.clock.advance(20.0)
        assert manager.tick() == []
        portal.clock.advance(10.0)  # t=30 >= phase 25
        assert len(manager.tick()) == 1
        # Subsequent runs follow refresh_seconds from the last run.
        assert sub.due_at() == pytest.approx(30.0 + 60.0)

    def test_negative_phase_rejected(self):
        manager = ContinuousQueryManager(_build_portal())
        with pytest.raises(ValueError):
            manager.subscribe(QUERY, refresh_seconds=60.0, phase_seconds=-1.0)

    def test_negative_stagger_rejected(self):
        with pytest.raises(ValueError):
            ContinuousQueryManager(_build_portal(), stagger_seconds=-5.0)

    def test_stagger_assigns_distinct_spread_phases(self):
        portal = _build_portal()
        manager = ContinuousQueryManager(portal, stagger_seconds=30.0)
        subs = [manager.subscribe(QUERY, refresh_seconds=60.0) for _ in range(8)]
        phases = [s.phase_seconds for s in subs]
        assert phases[0] == 0.0
        assert len(set(phases)) == len(phases), "golden-ratio offsets collide"
        assert all(0.0 <= p < 30.0 for p in phases)

    def test_staggered_subscriptions_fire_across_ticks(self):
        portal = _build_portal()
        manager = ContinuousQueryManager(portal, stagger_seconds=30.0)
        for _ in range(6):
            manager.subscribe(QUERY, refresh_seconds=60.0)
        first_tick = len(manager.tick())  # only phase-0 subscriptions
        assert first_tick < 6
        ran = first_tick
        for _ in range(6):
            portal.clock.advance(5.0)
            ran += len(manager.tick())
        assert ran == 6, "every subscription ran once within the stagger window"
        # After the window, each keeps its own cadence.
        portal.clock.advance(60.0)
        assert len(manager.tick()) == 6

    def test_explicit_phase_overrides_stagger(self):
        manager = ContinuousQueryManager(_build_portal(), stagger_seconds=30.0)
        manager.subscribe(QUERY, refresh_seconds=60.0)  # auto phase 0
        sub = manager.subscribe(QUERY, refresh_seconds=60.0, phase_seconds=3.5)
        assert sub.phase_seconds == 3.5


class TestDispatcherAbsorbsStaggeredOverlap:
    def test_recent_table_absorbs_staggered_rerequests(self):
        """Two same-viewport subscriptions staggered onto different
        ticks within the dispatcher's recently-probed ttl.  The first
        tick's *successes* enter the portal's slot caches (the twin
        never re-requests them); its *failures* do not, so the twin's
        tick re-requests exactly those sensors — and the dispatcher's
        recently-probed table answers every one from its cached-failure
        entries: zero new wire traffic."""
        portal = _build_portal(
            transport=TransportConfig.parity(inflight_ttl=60.0), availability=0.5
        )
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY, refresh_seconds=120.0, phase_seconds=0.0)
        late = manager.subscribe(QUERY, refresh_seconds=120.0, phase_seconds=10.0)

        ran = manager.tick()  # t=0: only the phase-0 subscription
        assert [s.subscription_id for s, _ in ran] == [0]
        attempted = portal.network.stats.probes_attempted
        assert attempted > 0
        failures = attempted - portal.network.stats.probes_succeeded
        assert failures > 0, "flaky fleet expected some failed probes"

        portal.clock.advance(10.0)  # t=10: the staggered twin fires
        ran = manager.tick()
        assert [s.subscription_id for s, _ in ran] == [late.subscription_id]
        assert portal.network.stats.probes_attempted == attempted, (
            "staggered twin re-contacted sensors the table already covers"
        )
        assert portal.dispatcher.stats.dedup_recent == failures
        # The absorbed tick still produced a full answer from cache.
        assert late.last_result is not None
        assert late.last_result.result_weight > 0

    def test_inflight_table_absorbs_concurrently_submitted_rounds(self):
        """Rounds submitted while each other are still unresolved share
        one logical probe per sensor via the in-flight table."""
        from repro.transport import ProbeDispatcher

        portal = _build_portal()
        ids = [s.sensor_id for s in portal.network.sensors()][:20]
        dispatcher = ProbeDispatcher(
            portal.network, TransportConfig(overlap_enabled=True)
        )
        first = dispatcher.submit(ids, now=0.0)
        second = dispatcher.submit(ids, now=0.0)
        dispatcher.drain()
        assert first.resolved and second.resolved
        assert dispatcher.stats.dedup_inflight == len(ids)
        assert sorted(second.deduped) == sorted(ids)
        assert second.readings == first.readings
        assert portal.network.stats.probes_attempted == len(ids)

    def test_stagger_without_transport_still_correct(self):
        portal = _build_portal()
        manager = ContinuousQueryManager(portal, stagger_seconds=20.0)
        a = manager.subscribe(QUERY, refresh_seconds=60.0)
        b = manager.subscribe(QUERY, refresh_seconds=60.0)
        total = len(manager.tick())
        for _ in range(5):
            portal.clock.advance(5.0)
            total += len(manager.tick())
        assert total == 2
        assert a.executions == 1 and b.executions == 1
