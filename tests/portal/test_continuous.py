"""Standing (continuous) queries over the portal clock."""

import pytest

from repro import COLRTreeConfig, Rect
from repro.portal import ContinuousQueryManager, SensorMapPortal, SensorQuery

from tests.conftest import make_registry


@pytest.fixture
def portal():
    portal = SensorMapPortal(
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        value_fn=lambda s, t: float(s.sensor_id % 5) + t / 1000.0,
        max_sensors_per_query=None,
    )
    portal.register_all(make_registry(n=300, seed=41).all())
    return portal


QUERY = SensorQuery(
    region=Rect(0, 0, 60, 60), staleness_seconds=120.0, sample_size=40
)


class TestSubscriptionLifecycle:
    def test_subscribe_assigns_ids(self, portal):
        manager = ContinuousQueryManager(portal)
        a = manager.subscribe(QUERY)
        b = manager.subscribe(QUERY)
        assert (a.subscription_id, b.subscription_id) == (0, 1)
        assert len(manager) == 2

    def test_default_refresh_is_staleness(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY)
        assert sub.refresh_seconds == 120.0

    def test_invalid_refresh_rejected(self, portal):
        manager = ContinuousQueryManager(portal)
        with pytest.raises(ValueError):
            manager.subscribe(QUERY, refresh_seconds=0)

    def test_unsubscribe(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY)
        manager.unsubscribe(sub.subscription_id)
        assert len(manager) == 0
        with pytest.raises(KeyError):
            manager.unsubscribe(sub.subscription_id)


class TestTicking:
    def test_first_tick_runs_immediately(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY)
        ran = manager.tick()
        assert len(ran) == 1
        assert sub.executions == 1

    def test_not_due_no_rerun(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY, refresh_seconds=100.0)
        manager.tick()
        portal.clock.advance(10.0)
        assert manager.tick() == []

    def test_due_after_interval(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY, refresh_seconds=100.0)
        manager.tick()
        portal.clock.advance(150.0)
        assert len(manager.tick()) == 1
        assert sub.executions == 2

    def test_run_for_counts_executions(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY, refresh_seconds=50.0)
        executed = manager.run_for(duration=200.0, step=25.0)
        assert executed >= 4

    def test_run_for_validates_args(self, portal):
        manager = ContinuousQueryManager(portal)
        with pytest.raises(ValueError):
            manager.run_for(duration=10.0, step=0.0)


class TestDeltas:
    def test_first_run_everything_appears(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY)
        [(sub, delta)] = manager.tick()
        assert len(delta.appeared) == sub.last_result.result_weight
        assert delta.departed == ()
        assert delta.aggregate_before is None

    def test_changed_values_detected(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY, refresh_seconds=50.0)
        manager.tick()
        # Past the staleness bound everything is re-probed with a new
        # time-dependent value.
        portal.clock.advance(200.0)
        [(sub, delta)] = manager.tick()
        assert delta.changed or delta.appeared

    def test_empty_region_delta_empty(self, portal):
        manager = ContinuousQueryManager(portal)
        empty_query = SensorQuery(
            region=Rect(500, 500, 600, 600), staleness_seconds=60.0, sample_size=10
        )
        manager.subscribe(empty_query)
        [(sub, delta)] = manager.tick()
        assert delta.is_empty or delta.aggregate_after is None

    def test_callback_invoked(self, portal):
        calls = []
        manager = ContinuousQueryManager(portal)
        manager.subscribe(
            QUERY,
            callback=lambda sub, delta, result: calls.append(
                (sub.subscription_id, len(delta.appeared))
            ),
        )
        manager.tick()
        assert len(calls) == 1
        assert calls[0][0] == 0

    def test_aggregate_drift_tracked(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY, refresh_seconds=50.0)
        manager.tick()
        portal.clock.advance(300.0)
        [(_, delta)] = manager.tick()
        assert delta.aggregate_before is not None
        assert delta.aggregate_after is not None
