"""Standing (continuous) queries over the portal clock."""

import pytest

from repro import COLRTreeConfig, Rect
from repro.portal import ContinuousQueryManager, SensorMapPortal, SensorQuery

from tests.conftest import make_registry


@pytest.fixture
def portal():
    portal = SensorMapPortal(
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        value_fn=lambda s, t: float(s.sensor_id % 5) + t / 1000.0,
        max_sensors_per_query=None,
    )
    portal.register_all(make_registry(n=300, seed=41).all())
    return portal


QUERY = SensorQuery(
    region=Rect(0, 0, 60, 60), staleness_seconds=120.0, sample_size=40
)


class TestSubscriptionLifecycle:
    def test_subscribe_assigns_ids(self, portal):
        manager = ContinuousQueryManager(portal)
        a = manager.subscribe(QUERY)
        b = manager.subscribe(QUERY)
        assert (a.subscription_id, b.subscription_id) == (0, 1)
        assert len(manager) == 2

    def test_default_refresh_is_staleness(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY)
        assert sub.refresh_seconds == 120.0

    def test_invalid_refresh_rejected(self, portal):
        manager = ContinuousQueryManager(portal)
        with pytest.raises(ValueError):
            manager.subscribe(QUERY, refresh_seconds=0)

    def test_unsubscribe(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY)
        manager.unsubscribe(sub.subscription_id)
        assert len(manager) == 0
        with pytest.raises(KeyError):
            manager.unsubscribe(sub.subscription_id)


class TestTicking:
    def test_first_tick_runs_immediately(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY)
        ran = manager.tick()
        assert len(ran) == 1
        assert sub.executions == 1

    def test_not_due_no_rerun(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY, refresh_seconds=100.0)
        manager.tick()
        portal.clock.advance(10.0)
        assert manager.tick() == []

    def test_due_after_interval(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY, refresh_seconds=100.0)
        manager.tick()
        portal.clock.advance(150.0)
        assert len(manager.tick()) == 1
        assert sub.executions == 2

    def test_run_for_counts_executions(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY, refresh_seconds=50.0)
        executed = manager.run_for(duration=200.0, step=25.0)
        assert executed >= 4

    def test_run_for_validates_args(self, portal):
        manager = ContinuousQueryManager(portal)
        with pytest.raises(ValueError):
            manager.run_for(duration=10.0, step=0.0)


class TestDeltas:
    def test_first_run_everything_appears(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY)
        [(sub, delta)] = manager.tick()
        assert len(delta.appeared) == sub.last_result.result_weight
        assert delta.departed == ()
        assert delta.aggregate_before is None

    def test_changed_values_detected(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(QUERY, refresh_seconds=50.0)
        manager.tick()
        # Past the staleness bound everything is re-probed with a new
        # time-dependent value.
        portal.clock.advance(200.0)
        [(sub, delta)] = manager.tick()
        assert delta.changed or delta.appeared

    def test_empty_region_delta_empty(self, portal):
        manager = ContinuousQueryManager(portal)
        empty_query = SensorQuery(
            region=Rect(500, 500, 600, 600), staleness_seconds=60.0, sample_size=10
        )
        manager.subscribe(empty_query)
        [(sub, delta)] = manager.tick()
        assert delta.is_empty or delta.aggregate_after is None

    def test_callback_invoked(self, portal):
        calls = []
        manager = ContinuousQueryManager(portal)
        manager.subscribe(
            QUERY,
            callback=lambda sub, delta, result: calls.append(
                (sub.subscription_id, len(delta.appeared))
            ),
        )
        manager.tick()
        assert len(calls) == 1
        assert calls[0][0] == 0

    def test_aggregate_drift_tracked(self, portal):
        manager = ContinuousQueryManager(portal)
        sub = manager.subscribe(QUERY, refresh_seconds=50.0)
        manager.tick()
        portal.clock.advance(300.0)
        [(_, delta)] = manager.tick()
        assert delta.aggregate_before is not None
        assert delta.aggregate_after is not None


EXACT_A = SensorQuery(region=Rect(0, 0, 60, 60), staleness_seconds=120.0)
EXACT_B = SensorQuery(region=Rect(30, 30, 90, 90), staleness_seconds=120.0)


class TestDeltaSemanticsUnderBatching:
    """Delta correctness when a tick batches several due subscriptions
    (the batch-executor rewiring's safety net)."""

    def test_overlapping_subscriptions_each_get_full_results(self, portal):
        manager = ContinuousQueryManager(portal)
        a = manager.subscribe(EXACT_A, refresh_seconds=60.0)
        b = manager.subscribe(EXACT_B, refresh_seconds=60.0)
        same_as_a = manager.subscribe(EXACT_A, refresh_seconds=60.0)
        ran = manager.tick()
        assert [s.subscription_id for s, _ in ran] == [0, 1, 2]
        deltas = {s.subscription_id: d for s, d in ran}
        # First run: everything appears, nothing departed/changed.
        for d in deltas.values():
            assert d.appeared and not d.departed and not d.changed
        # Identical standing queries see identical deltas even though
        # only one of them paid for the probes.
        assert deltas[a.subscription_id].appeared == deltas[
            same_as_a.subscription_id
        ].appeared
        assert b.last_result.result_weight == len(
            deltas[b.subscription_id].appeared
        )

    def test_batched_tick_matches_sequential_tick(self):
        """Two portals, same subscriptions: one ticked via the batch
        path, one executed subscription-by-subscription; the deltas
        must agree (availability 1, shared clock instant)."""

        def build():
            p = SensorMapPortal(
                COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
                value_fn=lambda s, t: float(s.sensor_id % 7) + t / 1000.0,
                max_sensors_per_query=None,
            )
            p.register_all(make_registry(n=300, seed=41).all())
            return p

        batch_portal, seq_portal = build(), build()
        manager = ContinuousQueryManager(batch_portal)
        manager.subscribe(EXACT_A, refresh_seconds=60.0)
        manager.subscribe(EXACT_B, refresh_seconds=60.0)
        for tick in range(3):
            ran = manager.tick()
            seq_results = [
                seq_portal.execute(q) for q in (EXACT_A, EXACT_B)
            ]
            for (_, delta), seq_result in zip(ran, seq_results):
                batch_ids = set(delta.appeared) | set(delta.changed)
                seq_ids = {
                    r.sensor_id
                    for a in seq_result.answers
                    for r in list(a.probed_readings) + list(a.cached_readings)
                }
                # Every sensor the sequential run sees is in the batch
                # run's cumulative view, and first tick they are equal.
                if tick == 0:
                    assert set(delta.appeared) == seq_ids
            batch_portal.clock.advance(61.0)
            seq_portal.clock.advance(61.0)

    def test_subscribe_mid_run_joins_next_tick(self, portal):
        manager = ContinuousQueryManager(portal)
        manager.subscribe(EXACT_A, refresh_seconds=60.0)
        manager.tick()
        late = manager.subscribe(EXACT_B, refresh_seconds=60.0)
        portal.clock.advance(30.0)
        ran = manager.tick()  # only the late one is due
        assert [s.subscription_id for s, _ in ran] == [late.subscription_id]
        assert late.executions == 1
        d = ran[0][1]
        assert d.appeared and not d.departed

    def test_unsubscribe_mid_run_stops_execution(self, portal):
        manager = ContinuousQueryManager(portal)
        keep = manager.subscribe(EXACT_A, refresh_seconds=60.0)
        drop = manager.subscribe(EXACT_B, refresh_seconds=60.0)
        manager.tick()
        manager.unsubscribe(drop.subscription_id)
        portal.clock.advance(61.0)
        ran = manager.tick()
        assert [s.subscription_id for s, _ in ran] == [keep.subscription_id]
        assert drop.executions == 1
        assert keep.executions == 2

    def test_resubscribe_fresh_baseline(self, portal):
        """A new subscription over the same region starts from scratch:
        everything its own run sees appears, regardless of what a
        previous (removed) subscription had seen.  The id universe may
        shrink on the warm run — subtrees fully covered by cached
        aggregates answer as sketches, which carry no sensor ids — but
        the total result weight is preserved."""
        manager = ContinuousQueryManager(portal)
        old = manager.subscribe(EXACT_A, refresh_seconds=60.0)
        manager.tick()
        seen_before = set(old._last_values)
        old_weight = old.last_result.result_weight
        manager.unsubscribe(old.subscription_id)
        fresh = manager.subscribe(EXACT_A, refresh_seconds=60.0)
        ran = manager.tick()
        appeared = set(ran[0][1].appeared)
        assert appeared == set(fresh._last_values)
        assert appeared <= seen_before
        assert not ran[0][1].departed and not ran[0][1].changed
        assert fresh.last_result.result_weight == old_weight
        assert fresh.executions == 1

    def test_values_change_across_batched_ticks(self, portal):
        """value_fn depends on t, so advancing past the staleness bound
        re-probes and every sensor reports `changed`."""
        manager = ContinuousQueryManager(portal)
        a = manager.subscribe(EXACT_A, refresh_seconds=130.0)
        b = manager.subscribe(EXACT_A, refresh_seconds=130.0)
        first = manager.tick()
        portal.clock.advance(131.0)
        second = manager.tick()
        assert len(first) == len(second) == 2
        for (_, d1), (_, d2) in zip(first, second):
            assert d1.appeared and not d1.changed
            assert set(d2.changed) == set(d1.appeared)
            assert not d2.departed
        assert a.executions == b.executions == 2
