"""Regression: a spatial plan cached before ``rebuild_index()`` must
never serve the rebuilt tree.

Audit result (kept as executable documentation): ``rebuild_index``
constructs *fresh* ``COLRTree`` objects, and the ``FlatKernel`` and
``SpatialPlanCache`` are per-tree instance attributes created in
``COLRTree.__init__`` — so the old plan cache is unreachable from the
new index by construction.  A plan keyed by a region fingerprint is
only ever looked up through ``tree.plan_cache`` of the tree it was
classified against.  These tests pin that invariant down so a future
refactor that hoists the plan cache to the portal (or makes trees
mutable in place) cannot silently serve stale classifications.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal, SensorQuery


def _portal(n: int = 200, seed: int = 13) -> SensorMapPortal:
    rng = np.random.default_rng(seed)
    portal = SensorMapPortal(max_sensors_per_query=None)
    for x, y in rng.random((n, 2)) * 100:
        portal.register_sensor(
            GeoPoint(float(x), float(y)), expiry_seconds=300.0
        )
    portal.rebuild_index()
    return portal


VIEWPORT = SensorQuery(region=Rect(40.0, 40.0, 50.0, 50.0), staleness_seconds=120.0)


class TestPlanCacheInvalidationOnRebuild:
    def test_rebuild_replaces_tree_kernel_and_plan_cache(self):
        portal = _portal()
        portal.execute(VIEWPORT)  # warm the plan cache
        old_tree = portal.tree("generic")
        old_cache = old_tree.plan_cache
        assert old_cache is not None and len(old_cache) > 0
        portal.rebuild_index()
        new_tree = portal.tree("generic")
        assert new_tree is not old_tree
        assert new_tree.kernel is not old_tree.kernel
        assert new_tree.plan_cache is not old_cache
        assert len(new_tree.plan_cache) == 0

    def test_warm_plan_cannot_hide_a_new_sensor(self):
        """End-to-end: register a sensor inside a viewport whose plan is
        warm, rebuild, re-query — the new sensor must appear.  A stale
        plan (classified against the old tree) would misroute or drop
        it."""
        portal = _portal()
        before = portal.execute(VIEWPORT)
        # Re-run so the second execution is served via a plan-cache hit.
        again = portal.execute(VIEWPORT)
        assert again.answers[0].stats.plan_cache_hits == 1
        added = portal.register_sensor(
            GeoPoint(45.0, 45.0), expiry_seconds=300.0
        )
        after = portal.execute(VIEWPORT)  # lazy rebuild happens here
        result_ids = {
            r.sensor_id
            for a in after.answers
            for r in list(a.probed_readings) + list(a.cached_readings)
        }
        assert added.sensor_id in result_ids
        assert after.result_weight == before.result_weight + 1
        # The rebuilt tree classified from scratch: miss, not hit.
        assert after.answers[0].stats.plan_cache_hits == 0
        assert after.answers[0].stats.plan_cache_misses == 1

    def test_batch_executor_sees_rebuilt_tree(self):
        portal = _portal()
        portal.execute_batch([VIEWPORT, VIEWPORT])
        added = portal.register_sensor(GeoPoint(45.0, 45.0), expiry_seconds=300.0)
        batch = portal.execute_batch([VIEWPORT, VIEWPORT])
        for result in batch.results:
            ids = {
                r.sensor_id
                for a in result.answers
                for r in list(a.probed_readings) + list(a.cached_readings)
            }
            assert added.sensor_id in ids
