"""The portal-wide collection cap (Section III-B): a whole-world query
must contact at most the configured number of sensors."""

import pytest

from repro import COLRTreeConfig, Rect
from repro.portal import SensorMapPortal, SensorQuery

from tests.conftest import make_registry


def make_portal(max_sensors, n=600, types=1):
    portal = SensorMapPortal(
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        max_sensors_per_query=max_sensors,
    )
    registry = make_registry(n=n, seed=40)
    for sensor in registry.all():
        portal.register_sensor(
            sensor.location,
            sensor.expiry_seconds,
            sensor_type=f"type{sensor.sensor_id % types}",
        )
    return portal


WORLD = SensorQuery(region=Rect(-1000, -1000, 1000, 1000), staleness_seconds=600.0)


class TestCollectionCap:
    def test_world_query_capped(self):
        portal = make_portal(max_sensors=50)
        result = portal.execute(WORLD)
        probed = sum(a.stats.sensors_probed for a in result.answers)
        # Oversampling may push attempts somewhat past the target, but
        # nowhere near the full 600-sensor population.
        assert probed <= 120
        assert result.result_weight > 0

    def test_uncapped_world_query_probes_everything(self):
        portal = make_portal(max_sensors=None)
        result = portal.execute(WORLD)
        probed = sum(a.stats.sensors_probed for a in result.answers)
        assert probed == 600

    def test_explicit_sample_clamped_to_cap(self):
        portal = make_portal(max_sensors=30)
        q = SensorQuery(
            region=Rect(-1000, -1000, 1000, 1000),
            staleness_seconds=600.0,
            sample_size=10_000,
        )
        result = portal.execute(q)
        probed = sum(a.stats.sensors_probed for a in result.answers)
        assert probed <= 80

    def test_small_requests_unaffected(self):
        portal = make_portal(max_sensors=1000)
        q = SensorQuery(
            region=Rect(-1000, -1000, 1000, 1000),
            staleness_seconds=600.0,
            sample_size=10,
        )
        result = portal.execute(q)
        assert result.query.sample_size == 10

    def test_cap_split_across_types(self):
        portal = make_portal(max_sensors=40, types=4)
        result = portal.execute(WORLD)
        probed = sum(a.stats.sensors_probed for a in result.answers)
        assert probed <= 100
        assert len(result.answers) == 4

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            SensorMapPortal(max_sensors_per_query=0)

    def test_effective_size_logic(self):
        portal = make_portal(max_sensors=100)
        assert portal._effective_sample_size(None, 1) == 100
        assert portal._effective_sample_size(0, 1) == 100
        assert portal._effective_sample_size(30, 1) == 30
        assert portal._effective_sample_size(500, 1) == 100
        assert portal._effective_sample_size(None, 4) == 25
        uncapped = make_portal(max_sensors=None)
        assert uncapped._effective_sample_size(None, 3) == 0
