"""Cell-precise invalidation of cached polygon viewports.

A polygon entry remembers the tile cells its cover actually touches
(the geoblock-style cell union), so a write delta evicts it only when
the dirty region intersects a *covered* cell — a write inside the
polygon's bounding box but outside every covered cell leaves the entry
alive, where a bounding-box entry would have been dropped.
"""

from __future__ import annotations

from repro.frontdoor import AdmissionConfig, FrontDoor, FrontDoorConfig
from repro.frontdoor.cache import polygon_cover
from repro.geometry import GeoPoint, Polygon, Rect
from repro.portal.query import SensorQuery
from repro.sensors.sensor import Reading

from tests.frontdoor.conftest import STALENESS, make_portal

NO_ADMISSION = AdmissionConfig(enabled=False)

# A right triangle: its bounding box's upper-right corner tiles are not
# part of the cover (everything beyond the hypotenuse x + y = 5).
TRIANGLE = Polygon(
    [GeoPoint(0.5, 0.5), GeoPoint(4.5, 0.5), GeoPoint(0.5, 4.5)]
)
INSIDE = (1.0, 1.0)  # in a covered cell
CORNER = (4.25, 4.25)  # in the bbox, outside every covered cell


def _portal():
    portal = make_portal(n=300, seed=11)
    for x, y in (INSIDE, CORNER):
        portal.register_sensor(
            GeoPoint(x, y), expiry_seconds=600.0, availability=1.0
        )
    portal.rebuild_index()
    return portal


def _door(portal, **config_kwargs) -> FrontDoor:
    config_kwargs.setdefault("admission", NO_ADMISSION)
    return FrontDoor(portal, FrontDoorConfig(**config_kwargs))


def _write(portal, location: tuple[float, float]) -> None:
    sensor = next(
        s
        for s in portal.registry
        if (s.location.x, s.location.y) == location
    )
    now = portal.clock.now()
    portal._trees[sensor.sensor_type].insert_readings_batch(
        [
            Reading(
                sensor_id=sensor.sensor_id,
                value=99_999.0,
                timestamp=now,
                expires_at=now + sensor.expiry_seconds,
            )
        ],
        fetched_at=now,
    )


def _query() -> SensorQuery:
    return SensorQuery(region=TRIANGLE, staleness_seconds=STALENESS)


def test_the_corner_tile_is_genuinely_uncovered():
    cover = polygon_cover(TRIANGLE, 0.5)
    bbox_cover = polygon_cover(
        Polygon(
            [
                GeoPoint(0.5, 0.5),
                GeoPoint(4.5, 0.5),
                GeoPoint(4.5, 4.5),
                GeoPoint(0.5, 4.5),
            ]
        ),
        0.5,
    )
    assert (8, 8) in bbox_cover
    assert (8, 8) not in cover


def test_write_inside_a_covered_cell_evicts():
    portal = _portal()
    door = _door(portal)
    first = door.execute(_query())
    assert first.served_from == "portal"
    assert door.execute(_query()).cache_hit
    _write(portal, INSIDE)
    assert door.cache.stats.invalidated_write > 0
    refreshed = door.execute(_query())
    assert refreshed.served_from == "portal"
    # The recomputed answer sees the planted outlier.
    assert any(
        a.estimate("max") == 99_999.0
        for a in refreshed.result.answers
        if a.result_weight
    )


def test_write_outside_every_covered_cell_survives():
    portal = _portal()
    door = _door(portal)
    door.execute(_query())
    assert door.execute(_query()).cache_hit
    invalidated = door.cache.stats.invalidated_write
    _write(portal, CORNER)
    assert door.cache.stats.invalidated_write == invalidated
    assert door.execute(_query()).cache_hit


def test_bounding_box_viewport_would_have_been_evicted():
    # The same corner write *does* evict a rectangle viewport over the
    # triangle's bounding box — the cell union is what buys precision.
    portal = _portal()
    door = _door(portal)
    bbox = SensorQuery(
        region=Rect(0.5, 0.5, 4.5, 4.5), staleness_seconds=STALENESS
    )
    door.execute(bbox)
    assert door.execute(bbox).cache_hit
    _write(portal, CORNER)
    assert door.execute(bbox).served_from == "portal"
