"""Streaming gather semantics beyond bit-parity: what a deadline
publishes on a degraded fleet, the monotone-subset guarantee, the
continuous-query manager's deadline path, and the process backend."""

from __future__ import annotations

from repro.federation import FederationConfig
from repro.parallel import ParallelFederatedPortal
from repro.portal.continuous import ContinuousQueryManager

from tests.frontdoor.conftest import (
    exact_query,
    make_fed,
    values_by_sensor,
)
from repro.geometry import Rect

QUERY_RECT = Rect(0.5, 0.5, 9.5, 9.5)  # routes to every shard


def _degraded_gather(seed: int = 0, deadline: float = 2.0):
    """Twin reliable federations with one killed shard: the probe run
    (no deadline) pins the arrival timeline, the measured run publishes
    at ``deadline``.  The generous 5 s retry backoff guarantees the
    killed shard's failure lands after every healthy answer."""
    probe = make_fed(seed=seed)
    fed = make_fed(seed=seed)
    for f in (probe, fed):
        f.kill_shard(1)
    timeline = probe.execute_streaming(exact_query(QUERY_RECT))
    ok_landings = [a.landed_at for a in timeline.arrivals if a.status == "ok"]
    fail_landings = [a.landed_at for a in timeline.arrivals if a.status != "ok"]
    assert max(ok_landings) < deadline < min(fail_landings), "bad test calibration"
    gather = fed.execute_streaming(exact_query(QUERY_RECT), deadline_seconds=deadline)
    return fed, gather


class TestDegradedDeadline:
    def test_first_publishes_at_the_deadline_without_the_dead_shard(self):
        fed, gather = _degraded_gather()
        first, final = gather.first, gather.final
        assert first is not final
        # The killed shard's failure is still pending at the deadline:
        # it is deferred, the answer is partial, and the publish is held
        # exactly until the deadline.
        assert 1 in first.deferred_shards
        assert first.partial
        assert first.collection_seconds == gather.deadline_seconds
        # The final merge waited out the retry backoff and records the
        # failure instead.
        assert final.collection_seconds > first.collection_seconds
        assert 1 in final.failed_shards
        assert fed.stats.deferred_shard_answers >= 1
        assert fed.stats.streaming_queries >= 1

    def test_first_is_a_monotone_subset_of_final(self):
        _, gather = _degraded_gather(seed=1)
        first_values = values_by_sensor(gather.first)
        final_values = values_by_sensor(gather.final)
        assert set(first_values) <= set(final_values)
        for sensor_id, value in first_values.items():
            assert final_values[sensor_id] == value
        assert gather.first.result_weight <= gather.final.result_weight

    def test_generous_deadline_defers_nothing_healthy(self):
        fed = make_fed(seed=2)
        gather = fed.execute_streaming(
            exact_query(QUERY_RECT), deadline_seconds=1e9
        )
        assert gather.first is gather.final
        assert gather.deferred_shards == ()
        assert not gather.final.partial


class TestContinuousManager:
    def test_deadline_bounds_published_tick_latency_when_degraded(self):
        deadline = 2.0
        fed_sync = make_fed(seed=3)
        fed_stream = make_fed(seed=3)
        sync = ContinuousQueryManager(fed_sync)
        stream = ContinuousQueryManager(fed_stream, gather_deadline_seconds=deadline)
        for manager in (sync, stream):
            manager.subscribe(exact_query(QUERY_RECT), refresh_seconds=45.0)
        for manager, fed in ((sync, fed_sync), (stream, fed_stream)):
            manager.tick()  # warm, healthy
            fed.clock.advance(45.0)
            fed.kill_shard(1)
            manager.tick()
        sync_latency = next(iter(sync.subscriptions())).last_result.collection_seconds
        stream_latency = next(
            iter(stream.subscriptions())
        ).last_result.collection_seconds
        # Sync waits out the 5 s retry backoff; streaming publishes the
        # partial answer at the deadline.
        assert sync_latency >= 5.0
        assert stream_latency == deadline
        assert next(iter(stream.subscriptions())).last_result.partial


class TestProcessBackend:
    def test_streaming_matches_inprocess_backend(self):
        from repro.bench.federation import _assert_identical

        inproc = make_fed(n=300, seed=5, n_shards=2)
        proc = make_fed(n=300, seed=5, n_shards=2, execution="process")
        try:
            assert isinstance(proc, ParallelFederatedPortal)
            query = exact_query(Rect(1.0, 1.0, 9.0, 9.0))
            for phase in ("cold", "warm"):
                _assert_identical(
                    f"process-streaming/{phase}",
                    inproc.execute_streaming(query).final,
                    proc.execute_streaming(query).final,
                )
        finally:
            proc.close()

    def test_invalid_execution_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FederationConfig(execution="fibers")
