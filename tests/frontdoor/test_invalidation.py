"""Invalidation: a cached viewport must never outlive the state it was
computed from.

Covers the four invalidation channels end to end through ``FrontDoor``:
write deltas (tree ingest listeners), slot advancement, staleness
aging, and index generation — including the satellite's headline case:
across ``FederatedPortal.rebuild_index()`` and a shard kill/revive
cycle, a revived or rebuilt shard must never be shadowed by a stale
cached viewport (and a degraded *partial* answer is never cached at
all)."""

from __future__ import annotations

from repro.frontdoor import AdmissionConfig, FrontDoor, FrontDoorConfig
from repro.geometry import GeoPoint, Rect
from repro.sensors.sensor import Reading

from tests.frontdoor.conftest import (
    SLOT_SECONDS,
    exact_query,
    make_fed,
    make_portal,
    values_by_sensor,
)

NO_ADMISSION = AdmissionConfig(enabled=False)


def _door(portal, **config_kwargs) -> FrontDoor:
    config_kwargs.setdefault("admission", NO_ADMISSION)
    return FrontDoor(portal, FrontDoorConfig(**config_kwargs))


def _sensor_inside(portal, region: Rect):
    for sensor in portal.registry.all():
        if region.contains_point(sensor.location):
            return sensor
    raise AssertionError("no sensor inside the test region")


# ----------------------------------------------------------------------
# Write deltas
# ----------------------------------------------------------------------
class TestWriteInvalidation:
    def test_ingest_drops_overlapping_entry_and_new_value_is_served(self):
        portal = make_portal(n=300, seed=3)
        door = _door(portal)
        query = exact_query(Rect(2.0, 2.0, 4.5, 4.5))
        first = door.execute(query)
        assert first.served_from == "portal"
        assert door.execute(query).cache_hit
        # An out-of-band batch ingest inside the viewport: the tree's
        # ingest listener must drop the overlapping entries.
        sensor = _sensor_inside(portal, first.query.region)
        now = portal.clock.now()
        tree = portal._trees[sensor.sensor_type]
        tree.insert_readings_batch(
            [
                Reading(
                    sensor_id=sensor.sensor_id,
                    value=99_999.0,
                    timestamp=now,
                    expires_at=now + sensor.expiry_seconds,
                )
            ],
            fetched_at=now,
        )
        assert door.cache.stats.invalidated_write > 0
        refreshed = door.execute(query)
        assert refreshed.served_from == "portal"
        # The recomputed answer reflects the write (max aggregate sees
        # the planted outlier whether it is enumerated or sketch-served).
        assert any(
            a.estimate("max") == 99_999.0
            for a in refreshed.result.answers
            if a.result_weight
        )

    def test_disjoint_entries_survive_the_write(self):
        portal = make_portal(n=300, seed=3)
        door = _door(portal)
        near = exact_query(Rect(2.0, 2.0, 3.0, 3.0))
        far = exact_query(Rect(7.0, 7.0, 8.5, 8.5))
        door.execute(near)
        door.execute(far)
        assert door.execute(far).cache_hit
        sensor = _sensor_inside(portal, Rect(2.0, 2.0, 3.0, 3.0))
        now = portal.clock.now()
        portal._trees[sensor.sensor_type].insert_readings_batch(
            [
                Reading(
                    sensor_id=sensor.sensor_id,
                    value=1.0,
                    timestamp=now,
                    expires_at=now + 600.0,
                )
            ],
            fetched_at=now,
        )
        # The far viewport's entry is untouched; the near one is gone.
        assert door.execute(far).cache_hit
        assert door.execute(near).served_from == "portal"


# ----------------------------------------------------------------------
# Time
# ----------------------------------------------------------------------
class TestTimeInvalidation:
    def test_slot_advancement_strands_entries(self):
        portal = make_portal(n=200, seed=5)
        door = _door(portal)
        query = exact_query(Rect(1.0, 1.0, 3.0, 3.0))
        door.execute(query)
        assert door.execute(query).cache_hit
        portal.clock.advance(SLOT_SECONDS)  # crosses the slot boundary
        after = door.execute(query)
        assert not after.cache_hit
        assert door.cache.stats.invalidated_slot > 0

    def test_staleness_ages_out_before_the_slot_turns(self):
        portal = make_portal(n=200, seed=5)
        door = _door(portal)
        query = exact_query(Rect(1.0, 1.0, 3.0, 3.0), staleness=30.0)
        door.execute(query)
        assert door.execute(query).cache_hit
        portal.clock.advance(40.0)  # same slot window, past the bound
        after = door.execute(query)
        assert not after.cache_hit
        assert door.cache.stats.invalidated_stale > 0


# ----------------------------------------------------------------------
# Index generation
# ----------------------------------------------------------------------
class TestGenerationInvalidation:
    def test_explicit_rebuild_strands_entries(self):
        portal = make_portal(n=200, seed=7)
        door = _door(portal)
        query = exact_query(Rect(1.0, 1.0, 4.0, 4.0))
        baseline = door.execute(query)
        assert door.execute(query).cache_hit
        portal.rebuild_index()
        after = door.execute(query)
        assert after.served_from == "portal"
        assert door.cache.stats.invalidated_generation > 0
        # Content is unchanged (same fleet) and caching resumes on the
        # new generation.
        assert after.result.result_weight == baseline.result.result_weight
        assert door.execute(query).cache_hit

    def test_dirty_index_bypasses_cache_until_rebuilt(self):
        portal = make_portal(n=200, seed=7)
        door = _door(portal)
        query = exact_query(Rect(1.0, 1.0, 4.0, 4.0))
        weight = door.execute(query).result.result_weight
        assert door.execute(query).cache_hit
        # Registering a sensor marks the index dirty: the cache must be
        # bypassed so the stale build cannot answer, and the execution
        # (which auto-rebuilds) must see the new sensor.
        portal.register_sensor(GeoPoint(2.0, 2.0), expiry_seconds=600.0)
        after = door.execute(query)
        assert after.served_from == "portal"
        assert after.result.result_weight == weight + 1
        # The post-rebuild answer was cached under the new generation.
        assert door.execute(query).cache_hit

    def test_federated_rebuild_strands_entries(self):
        fed = make_fed(n=400, seed=9, n_shards=3)
        door = _door(fed, l2_enabled=False)
        query = exact_query(Rect(1.0, 1.0, 8.0, 8.0))
        baseline = door.execute(query)
        assert door.execute(query).cache_hit
        fed.register_sensor(GeoPoint(5.0, 5.0), expiry_seconds=600.0)
        fed.rebuild_index()  # re-partitions: every shard's tree is new
        after = door.execute(query)
        assert after.served_from == "portal"
        assert after.result.result_weight == baseline.result.result_weight + 1
        assert door.execute(query).cache_hit


# ----------------------------------------------------------------------
# Shard kill / revive
# ----------------------------------------------------------------------
class TestKillRevive:
    def test_partial_answers_never_cached_and_revival_restores_full(self):
        fed = make_fed(n=400, seed=11, n_shards=3)
        door = _door(fed, l2_enabled=False)
        query = exact_query(Rect(0.5, 0.5, 9.5, 9.5))  # routes to all shards
        healthy = door.execute(query)
        healthy_weight = healthy.result.result_weight
        fed.kill_shard(1)
        degraded_query = exact_query(Rect(0.6, 0.6, 9.4, 9.4))  # distinct key
        degraded = door.execute(degraded_query)
        assert degraded.result.partial
        assert degraded.result.result_weight < healthy_weight
        assert door.cache.stats.uncacheable > 0
        # The gap is not cached: re-asking during the outage goes back
        # to the portal every time.
        assert door.execute(degraded_query).served_from == "portal"
        fed.revive_shard(1)
        revived = door.execute(degraded_query)
        assert revived.served_from == "portal"
        assert not revived.result.partial
        assert revived.result.result_weight > degraded.result.result_weight
        # Only the full post-revival answer is cached.
        hit = door.execute(degraded_query)
        assert hit.cache_hit and not hit.result.partial

    def test_pre_outage_full_entry_may_serve_during_outage(self):
        # Deliberate semantics: an entry cached *before* the kill holds
        # complete data that still meets its slot and staleness bounds,
        # so it keeps serving through the outage (stale-while-degraded).
        # What is forbidden is caching the outage's partial answers —
        # covered above.
        fed = make_fed(n=400, seed=11, n_shards=3)
        door = _door(fed, l2_enabled=False)
        query = exact_query(Rect(0.5, 0.5, 9.5, 9.5))
        full = door.execute(query)
        fed.kill_shard(1)
        during = door.execute(query)
        assert during.cache_hit
        assert not during.result.partial
        assert values_by_sensor(during.result) == values_by_sensor(full.result)
