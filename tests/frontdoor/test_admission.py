"""Admission control and the open-loop serving harness: token-bucket
arithmetic, the queue-guard-first ordering, exact shed accounting, and
the runner's queueing physics."""

from __future__ import annotations

import pytest

from repro.frontdoor import (
    AdmissionConfig,
    AdmissionController,
    FrontDoor,
    FrontDoorConfig,
    OpenLoopRunner,
    TokenBucket,
)
from repro.geometry import Rect
from repro.workloads import TenantRequest

from tests.frontdoor.conftest import exact_query, make_portal


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate_qps=1.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_qps=2.0, burst=2.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 0.5 s at 2 tokens/s -> exactly one token back.
        assert bucket.try_take(0.5)
        assert not bucket.try_take(0.5)

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate_qps=100.0, burst=2.0)
        assert bucket.try_take(0.0)
        taken = 0
        while bucket.try_take(1000.0):
            taken += 1
        assert taken == 2  # long idle refills to burst, never beyond


class TestAdmissionController:
    def _controller(self, **kwargs) -> AdmissionController:
        defaults = dict(
            enabled=True, tenant_rate_qps=1.0, tenant_burst=2.0, queue_depth=4
        )
        defaults.update(kwargs)
        return AdmissionController(AdmissionConfig(**defaults))

    def test_disabled_admits_everything(self):
        controller = self._controller(enabled=False)
        for _ in range(100):
            assert controller.offer("t", now=0.0, queue_depth=10_000) == "admit"
        assert controller.stats.admitted == 100 and controller.stats.shed == 0

    def test_queue_guard_runs_before_the_bucket(self):
        controller = self._controller()
        # Tokens are available, but the backlog is full: shed_queue, and
        # the tenant's bucket must not be charged.
        assert controller.offer("t", now=0.0, queue_depth=4) == "shed_queue"
        assert controller.offer("t", now=0.0, queue_depth=0) == "admit"
        assert controller.offer("t", now=0.0, queue_depth=0) == "admit"
        assert controller.offer("t", now=0.0, queue_depth=0) == "shed_rate"

    def test_tenants_isolated(self):
        controller = self._controller(tenant_burst=1.0)
        assert controller.offer("hog", now=0.0, queue_depth=0) == "admit"
        assert controller.offer("hog", now=0.0, queue_depth=0) == "shed_rate"
        # A different tenant still has its own full bucket.
        assert controller.offer("quiet", now=0.0, queue_depth=0) == "admit"
        assert controller.tenants() == 2

    def test_accounting_exact(self):
        controller = self._controller(tenant_burst=1.0, queue_depth=2)
        for i in range(50):
            controller.offer(i % 3, now=0.0, queue_depth=i % 4)
        stats = controller.stats
        assert stats.offered == 50
        assert stats.offered == stats.admitted + stats.shed_rate + stats.shed_queue
        assert stats.shed_fraction == pytest.approx(stats.shed / 50)


# ----------------------------------------------------------------------
# The open-loop runner
# ----------------------------------------------------------------------
def _requests(n: int, gap_seconds: float) -> list[TenantRequest]:
    query = exact_query(Rect(2.0, 2.0, 4.0, 4.0))
    return [
        TenantRequest(tenant=i % 2, arrival_seconds=i * gap_seconds, query=query)
        for i in range(n)
    ]


class TestOpenLoopRunner:
    def test_unprotected_run_serves_everything(self):
        door = FrontDoor(
            make_portal(n=200), FrontDoorConfig(admission=AdmissionConfig(enabled=False))
        )
        requests = _requests(12, gap_seconds=0.01)
        report = OpenLoopRunner(door, max_batch=4).run(requests)
        assert report.offered == 12 and report.served == 12 and report.shed == 0
        latency = report.latency()
        assert latency.count == 12
        assert all(r.latency_seconds >= 0.0 for r in report.records)
        arrivals = [r.arrival_seconds for r in report.records]
        assert arrivals == sorted(arrivals)

    def test_overload_sheds_and_accounts_exactly(self):
        config = FrontDoorConfig(
            l1_capacity=0,
            l2_enabled=False,
            admission=AdmissionConfig(
                tenant_rate_qps=0.5, tenant_burst=2.0, queue_depth=2
            ),
        )
        door = FrontDoor(make_portal(n=200), config)
        # A near-simultaneous burst: buckets drain, then the queue fills.
        report = OpenLoopRunner(door, max_batch=2).run(_requests(30, 1e-4))
        assert report.offered == 30
        assert report.served + report.shed == 30
        assert report.shed > 0
        stats = door.admission.stats
        assert stats.offered == 30
        assert stats.admitted + stats.shed_rate + stats.shed_queue == 30
        assert stats.admitted == report.served
        # Shed requests never reach the cache or the portal, and their
        # record shows a zero-latency rejection at arrival.
        for record in report.records:
            if record.status != "served":
                assert record.status in ("shed_rate", "shed_queue")
                assert record.finish_seconds == record.arrival_seconds
        assert report.max_queue_depth <= config.admission.queue_depth

    def test_latency_includes_queueing_delay(self):
        door = FrontDoor(
            make_portal(n=200),
            FrontDoorConfig(
                l1_capacity=0, l2_enabled=False, admission=AdmissionConfig(enabled=False)
            ),
        )
        # Everything arrives at t=0 with batch size 1: request k cannot
        # start before request k-1 finished, so latency is monotone
        # non-decreasing in queue position.  (Distinct tenants in queue
        # order keep the report's (arrival, tenant) sort = serve order.)
        query = exact_query(Rect(2.0, 2.0, 4.0, 4.0))
        requests = [
            TenantRequest(tenant=i, arrival_seconds=0.0, query=query)
            for i in range(5)
        ]
        report = OpenLoopRunner(door, max_batch=1).run(requests)
        starts = [r.start_seconds for r in report.records]
        finishes = [r.finish_seconds for r in report.records]
        assert starts == sorted(starts)
        for i in range(1, len(report.records)):
            assert starts[i] >= finishes[i - 1]

    def test_rejects_nonpositive_batch(self):
        door = FrontDoor(make_portal(n=50))
        with pytest.raises(ValueError):
            OpenLoopRunner(door, max_batch=0)
