"""Shared builders for the front-door suite.

Portals here use a *reliable* fleet (availability 1.0, no latency
jitter) with the default deterministic value function, so two portals
built from the same seed produce identical reading content at the same
simulated instant even after their network RNG streams diverge — which
is what lets cache-on vs cache-off content parity be asserted exactly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import COLRTreeConfig
from repro.federation import FederatedPortal, FederationConfig
from repro.geometry import GeoPoint, Rect
from repro.portal import SensorMapPortal
from repro.portal.query import SensorQuery

EXTENT = 10.0
STALENESS = 120.0
SLOT_SECONDS = 120.0


def make_portal(
    n: int = 300,
    seed: int = 0,
    availability: float = 1.0,
    extent: float = EXTENT,
) -> SensorMapPortal:
    """A small uniform fleet behind an uncapped portal (the tile layer
    needs exact sub-queries to stay exact)."""
    portal = SensorMapPortal(
        config=COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=SLOT_SECONDS),
        max_sensors_per_query=None,
    )
    rng = np.random.default_rng(seed)
    for _ in range(n):
        portal.register_sensor(
            GeoPoint(float(rng.uniform(0, extent)), float(rng.uniform(0, extent))),
            expiry_seconds=float(rng.uniform(300.0, 900.0)),
            availability=availability,
        )
    portal.rebuild_index()
    return portal


def make_fed(
    n: int = 600,
    seed: int = 0,
    n_shards: int = 3,
    execution: str = "inprocess",
    retry_backoff_base: float = 5.0,
    availability: float = 1.0,
    extent: float = EXTENT,
) -> FederatedPortal:
    """A reliable sharded fleet.  The generous retry backoff makes a
    killed shard's failure land *well after* every healthy shard's
    answer, so streaming-deadline tests can pick a deadline between the
    two deterministically."""
    portal = FederatedPortal(
        n_shards=n_shards,
        config=COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=SLOT_SECONDS),
        max_sensors_per_query=None,
        federation=FederationConfig(
            execution=execution,
            shard_retry_budget=1,
            retry_backoff_base=retry_backoff_base,
        ),
    )
    rng = np.random.default_rng(seed)
    for _ in range(n):
        portal.register_sensor(
            GeoPoint(float(rng.uniform(0, extent)), float(rng.uniform(0, extent))),
            expiry_seconds=float(rng.uniform(300.0, 900.0)),
            availability=availability,
        )
    portal.rebuild_index()
    return portal


def exact_query(region: Rect, staleness: float = STALENESS) -> SensorQuery:
    return SensorQuery(region=region, staleness_seconds=staleness)


# ----------------------------------------------------------------------
# Content-level comparison
# ----------------------------------------------------------------------
def values_by_sensor(result) -> dict[int, tuple[float, float]]:
    """sensor id -> (value, timestamp) over every *enumerated* reading
    (probed or cached) in the answer."""
    out: dict[int, tuple[float, float]] = {}
    for answer in result.answers:
        for reading in list(answer.probed_readings) + list(answer.cached_readings):
            out[reading.sensor_id] = (reading.value, reading.timestamp)
    return out


def aggregates(result) -> tuple[float, float, float, float]:
    """(count, sum, min, max) combined over the whole answer."""
    count = total = 0.0
    lo, hi = math.inf, -math.inf
    for answer in result.answers:
        if answer.result_weight == 0:
            continue
        sketch = answer.combined_sketch()
        count += sketch.count
        total += sketch.total
        lo = min(lo, sketch.minimum)
        hi = max(hi, sketch.maximum)
    return count, total, lo, hi


def assert_same_content(a, b, context: str = "") -> None:
    """The user-visible answer is identical, whatever its internal
    shape (tile-composed answers enumerate readings that a direct
    execution may have served as node sketches, so this compares what
    the map renders: the represented-sensor weight, the aggregates, and
    the value of every sensor both sides enumerated)."""
    assert a.result_weight == b.result_weight, context
    ca, sa, mina, maxa = aggregates(a)
    cb, sb, minb, maxb = aggregates(b)
    assert ca == cb, context
    assert sa == pytest.approx(sb), context
    assert (mina, maxa) == (minb, maxb), context
    va, vb = values_by_sensor(a), values_by_sensor(b)
    for sensor_id in va.keys() & vb.keys():
        assert va[sensor_id] == vb[sensor_id], context
