"""Parity: the front door never changes an answer, only when and how
fast it is served.

* cache-off vs cache-hit: within one slot window, a cached (L1 or
  tile-composed L2) answer is content-identical to an uncached
  recomputation of the same quantized viewport;
* streaming vs sync: on a healthy fleet the streaming gather's final
  answer is *bit*-identical to the synchronous gather (the federation
  bench's own comparator);
* a hypothesis property for tile-cover composition: any viewport over
  any warm/cold mix of cached tiles composes to the direct answer.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.federation import (
    STALENESS as FED_STALENESS,
    _assert_identical,
    make_federation,
)
from repro.frontdoor import AdmissionConfig, FrontDoor, FrontDoorConfig
from repro.frontdoor.cache import tile_cover, tile_rect
from repro.geometry import Rect
from repro.portal.query import SensorQuery

from tests.frontdoor.conftest import (
    EXTENT,
    assert_same_content,
    exact_query,
    make_portal,
)

NO_ADMISSION = AdmissionConfig(enabled=False)
ON = FrontDoorConfig(admission=NO_ADMISSION)
OFF = FrontDoorConfig(l1_capacity=0, l2_enabled=False, admission=NO_ADMISSION)


def _twin_doors(n: int = 300, seed: int = 0) -> tuple[FrontDoor, FrontDoor]:
    """Two identically seeded reliable portals, one cached, one not.
    Both doors quantize viewports (the serving contract), and on a
    reliable fleet with the deterministic value function the two
    portals' answers have identical content at equal clock times."""
    return (
        FrontDoor(make_portal(n=n, seed=seed), ON),
        FrontDoor(make_portal(n=n, seed=seed), OFF),
    )


# ----------------------------------------------------------------------
# Cache-off vs cache-hit, one slot window
# ----------------------------------------------------------------------
class TestCacheParity:
    def test_l1_and_l2_hits_match_uncached_recompute(self):
        door_on, door_off = _twin_doors()
        viewports = [
            Rect(1.2, 1.3, 2.8, 2.9),  # cold: fills its tile cover
            Rect(1.4, 1.1, 2.6, 2.7),  # same quantized viewport: L1 hit
            Rect(6.1, 6.2, 7.3, 7.4),
            Rect(1.2, 1.3, 1.8, 1.9),  # new viewport over warm tiles: L2
            Rect(6.1, 6.2, 7.3, 7.4),  # revisit: L1 hit
        ]
        tiers = []
        for i, viewport in enumerate(viewports):
            query = exact_query(viewport)
            res_on = door_on.execute(query)
            res_off = door_off.execute(query)
            assert res_off.served_from == "portal"
            assert_same_content(
                res_on.result, res_off.result, context=f"viewport {i}"
            )
            tiers.append(res_on.served_from)
        # The stream genuinely exercised both hit tiers.
        assert "l1" in tiers and "l2" in tiers

    def test_parity_holds_as_the_clock_advances_within_the_slot(self):
        door_on, door_off = _twin_doors(seed=1)
        query = exact_query(Rect(2.2, 2.2, 4.4, 4.4))
        for step in range(4):
            res_on = door_on.execute(query)
            res_off = door_off.execute(query)
            assert_same_content(res_on.result, res_off.result, context=f"t{step}")
            if step:
                assert res_on.cache_hit
            for door in (door_on, door_off):
                door.portal.clock.advance(10.0)  # stays inside the slot

    def test_sampled_queries_replay_their_own_draw(self):
        # Sampled answers are RNG draws, so cross-portal content parity
        # is not defined; the L1 contract instead is replay: a hit is
        # the *same* result object the fill produced.
        door_on, _ = _twin_doors(seed=2)
        query = SensorQuery(
            region=Rect(1.0, 1.0, 6.0, 6.0),
            staleness_seconds=120.0,
            sample_size=25,
        )
        filled = door_on.execute(query)
        assert filled.served_from == "portal"
        hit = door_on.execute(query)
        assert hit.served_from == "l1"
        assert hit.result is filled.result


# ----------------------------------------------------------------------
# Streaming final vs sync gather (healthy fleet)
# ----------------------------------------------------------------------
class TestStreamingParity:
    def test_final_bit_identical_to_sync(self):
        # Twin federations: execute consumes shard RNG, so one fleet
        # cannot serve both sides of the comparison.
        fed_sync = make_federation(800, seed=0, n_shards=4)
        fed_stream = make_federation(800, seed=0, n_shards=4)
        queries = [
            SensorQuery(
                region=Rect(12.0, 18.0, 68.0, 74.0), staleness_seconds=FED_STALENESS
            ),
            SensorQuery(
                region=Rect(5.0, 40.0, 95.0, 90.0),
                staleness_seconds=FED_STALENESS,
                sample_size=60,  # exercises the redistribution overlap
            ),
            SensorQuery(
                region=Rect(30.0, 5.0, 55.0, 35.0),
                staleness_seconds=FED_STALENESS,
                sensor_type="temperature",
            ),
        ]
        for phase in ("cold", "warm"):
            for i, query in enumerate(queries):
                gather = fed_stream.execute_streaming(query)
                _assert_identical(
                    f"{phase}/q{i}", fed_sync.execute(query), gather.final
                )
                # No deadline: the first publishable answer IS the final.
                assert gather.first is gather.final
                assert gather.deferred_shards == ()


# ----------------------------------------------------------------------
# Hypothesis: tile-cover composition
# ----------------------------------------------------------------------
coords = st.floats(
    min_value=0.0, max_value=EXTENT, allow_nan=False, allow_infinity=False
)
extents = st.sampled_from([0.25, 0.5, 1.0])


@given(x1=coords, x2=coords, y1=coords, y2=coords, e=extents)
@settings(max_examples=60, deadline=None)
def test_tile_cover_properties(x1, x2, y1, y2, e):
    region = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    tiles = tile_cover(region, e)
    assert tiles, "every rectangle (even degenerate) gets a cover"
    assert len(tiles) == len(set(tiles)), "no duplicate tiles"
    rects = [tile_rect(t, e) for t in tiles]
    union = Rect(
        min(r.min_x for r in rects),
        min(r.min_y for r in rects),
        max(r.max_x for r in rects),
        max(r.max_y for r in rects),
    )
    assert union.contains_rect(region), "the cover contains the region"
    grid_w = round((union.max_x - union.min_x) / e)
    grid_h = round((union.max_y - union.min_y) / e)
    assert len(tiles) == grid_w * grid_h, "the cover is a full grid"
    for r in rects:
        assert r.intersects(region), "no gratuitous tiles"


_DOORS: tuple[FrontDoor, FrontDoor] | None = None


def _shared_doors() -> tuple[FrontDoor, FrontDoor]:
    # One warm pair across all examples: successive examples hit an
    # arbitrary mix of cached and uncached tiles, which is exactly the
    # composition state space the property is about.
    global _DOORS
    if _DOORS is None:
        _DOORS = _twin_doors(n=250, seed=4)
    return _DOORS


viewport_coords = st.floats(
    min_value=0.0, max_value=EXTENT, allow_nan=False, allow_infinity=False
)


@given(x1=viewport_coords, x2=viewport_coords, y1=viewport_coords, y2=viewport_coords)
@settings(max_examples=25, deadline=None)
def test_any_viewport_composes_to_the_direct_answer(x1, x2, y1, y2):
    door_on, door_off = _shared_doors()
    region = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    query = exact_query(region)
    res_on = door_on.execute(query)
    res_off = door_off.execute(query)
    assert res_on.served and res_off.served
    assert_same_content(res_on.result, res_off.result, context=str(region))
