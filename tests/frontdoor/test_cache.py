"""Unit tests for the tiered result cache: tile math, LRU mechanics,
validity reasons, composition, and the stats accounting."""

from __future__ import annotations

import math

import pytest

from repro.core.lookup import QueryAnswer
from repro.frontdoor import FrontDoorConfig, TieredResultCache, tile_cover
from repro.frontdoor.cache import result_oldest_timestamp, tile_rect
from repro.geometry import GeoPoint, Polygon, Rect
from repro.portal.portal import PortalResult
from repro.portal.query import SensorQuery
from repro.sensors.sensor import Reading

SLOT = 120.0


def _config(**kwargs) -> FrontDoorConfig:
    return FrontDoorConfig(**kwargs)


def _result(query: SensorQuery, readings: list[Reading]) -> PortalResult:
    answer = QueryAnswer(probed_readings=list(readings))
    return PortalResult(
        query=query,
        groups=[],
        answers=[answer],
        processing_seconds=0.0,
        collection_seconds=0.0,
    )


def _reading(sensor_id: int, value: float = 1.0, timestamp: float = 0.0) -> Reading:
    return Reading(
        sensor_id=sensor_id,
        value=value,
        timestamp=timestamp,
        expires_at=timestamp + 600.0,
    )


def _query(region, staleness: float = 120.0, **kwargs) -> SensorQuery:
    return SensorQuery(region=region, staleness_seconds=staleness, **kwargs)


# ----------------------------------------------------------------------
# Tile math
# ----------------------------------------------------------------------
class TestTileCover:
    def test_interior_rect_single_tile(self):
        assert tile_cover(Rect(0.1, 0.1, 0.4, 0.4), 0.5) == [(0, 0)]

    def test_aligned_rect_is_exactly_its_tiles(self):
        tiles = tile_cover(Rect(1.0, 0.5, 2.0, 1.5), 0.5)
        assert sorted(tiles) == [(2, 1), (2, 2), (3, 1), (3, 2)]

    def test_boundary_edge_does_not_drag_in_next_tile(self):
        # max edge exactly on the 0.5 boundary: the next (measure-zero
        # overlap) column must not appear.
        assert tile_cover(Rect(0.0, 0.0, 0.5, 0.5), 0.5) == [(0, 0)]

    def test_negative_coordinates(self):
        assert tile_cover(Rect(-0.4, -0.4, -0.1, -0.1), 0.5) == [(-1, -1)]

    def test_degenerate_point_rect_covered(self):
        assert tile_cover(Rect(0.7, 0.7, 0.7, 0.7), 0.5) == [(1, 1)]

    def test_tiles_union_covers_region(self):
        region = Rect(1.23, -4.56, 7.89, 2.34)
        tiles = tile_cover(region, 0.5)
        min_x = min(tile_rect(t, 0.5).min_x for t in tiles)
        min_y = min(tile_rect(t, 0.5).min_y for t in tiles)
        max_x = max(tile_rect(t, 0.5).max_x for t in tiles)
        max_y = max(tile_rect(t, 0.5).max_y for t in tiles)
        assert min_x <= region.min_x and min_y <= region.min_y
        assert max_x >= region.max_x and max_y >= region.max_y

    def test_tile_rect_roundtrip(self):
        for tile in [(0, 0), (-3, 7), (12, -1)]:
            assert tile_cover(tile_rect(tile, 0.5), 0.5) == [tile]


class TestOldestTimestamp:
    def test_empty_result_never_goes_stale(self):
        q = _query(Rect(0, 0, 1, 1))
        assert result_oldest_timestamp(_result(q, [])) == math.inf

    def test_minimum_over_readings_and_sketches(self):
        q = _query(Rect(0, 0, 1, 1))
        result = _result(q, [_reading(1, timestamp=50.0)])
        result.answers[0].cached_readings.append(_reading(2, timestamp=30.0))
        sketch = QueryAnswer().combined_sketch()
        sketch.count, sketch.oldest_timestamp = 3, 10.0
        result.answers[0].cached_sketches.append(sketch)
        assert result_oldest_timestamp(result) == 10.0


# ----------------------------------------------------------------------
# Eligibility and keys
# ----------------------------------------------------------------------
class TestEligibility:
    def test_exact_rect_is_tile_eligible(self):
        assert TieredResultCache.tile_eligible(_query(Rect(0, 0, 1, 1)))

    def test_sampled_zoomed_clustered_are_not(self):
        rect = Rect(0, 0, 1, 1)
        poly = Polygon(
            [GeoPoint(0, 0), GeoPoint(1, 0), GeoPoint(1, 1), GeoPoint(0, 1)]
        )
        assert not TieredResultCache.tile_eligible(_query(rect, sample_size=10))
        assert not TieredResultCache.tile_eligible(_query(rect, zoom_level=3))
        assert not TieredResultCache.tile_eligible(_query(rect, cluster_miles=5.0))
        assert not TieredResultCache.tile_eligible(_query(poly, sample_size=10))
        assert not TieredResultCache.tile_eligible(_query(poly, zoom_level=3))

    def test_exact_polygon_is_tile_eligible(self):
        poly = Polygon(
            [GeoPoint(0, 0), GeoPoint(2, 0), GeoPoint(1, 2)]
        )
        assert TieredResultCache.tile_eligible(_query(poly))

    def test_l1_key_distinguishes_query_identity(self):
        rect = Rect(0, 0, 1, 1)
        base = TieredResultCache.l1_key(_query(rect))
        assert base is not None
        assert TieredResultCache.l1_key(_query(rect)) == base
        assert TieredResultCache.l1_key(_query(rect, sample_size=10)) != base
        assert TieredResultCache.l1_key(_query(rect, staleness=60.0)) != base
        assert TieredResultCache.l1_key(_query(Rect(0, 0, 1, 2))) != base


# ----------------------------------------------------------------------
# L1 mechanics
# ----------------------------------------------------------------------
class TestL1:
    def test_store_then_hit(self):
        cache = TieredResultCache(_config(), SLOT)
        q = _query(Rect(0, 0, 1, 1))
        result = _result(q, [_reading(1, timestamp=0.0)])
        assert cache.put_viewport(q, result, now=0.0, generation=1)
        assert cache.get_viewport(q, now=10.0, generation=1) is result
        assert cache.stats.l1_hits == 1 and cache.stats.stores == 1

    def test_lru_eviction_order(self):
        cache = TieredResultCache(_config(l1_capacity=2), SLOT)
        queries = [_query(Rect(i, 0, i + 1, 1)) for i in range(3)]
        for q in queries[:2]:
            cache.put_viewport(q, _result(q, []), now=0.0, generation=1)
        # Touch the first entry so the *second* becomes LRU.
        assert cache.get_viewport(queries[0], now=0.0, generation=1) is not None
        cache.put_viewport(queries[2], _result(queries[2], []), now=0.0, generation=1)
        assert cache.stats.l1_evictions == 1
        assert cache.get_viewport(queries[0], now=0.0, generation=1) is not None
        assert cache.get_viewport(queries[1], now=0.0, generation=1) is None
        assert cache.get_viewport(queries[2], now=0.0, generation=1) is not None

    def test_capacity_zero_disables_l1(self):
        cache = TieredResultCache(_config(l1_capacity=0), SLOT)
        q = _query(Rect(0, 0, 1, 1))
        assert not cache.put_viewport(q, _result(q, []), now=0.0, generation=1)
        assert cache.get_viewport(q, now=0.0, generation=1) is None
        assert len(cache) == 0

    def test_partial_answer_refused(self):
        from repro.federation.federated import FederatedResult

        cache = TieredResultCache(_config(), SLOT)
        q = _query(Rect(0, 0, 1, 1))
        partial = FederatedResult(
            query=q,
            groups=[],
            answers=[QueryAnswer()],
            processing_seconds=0.0,
            collection_seconds=0.0,
            failed_shards=(1,),
        )
        assert partial.partial
        assert not cache.put_viewport(q, partial, now=0.0, generation=1)
        assert cache.stats.uncacheable == 1
        assert len(cache) == 0

    def test_validity_reasons_metered_separately(self):
        cache = TieredResultCache(_config(), SLOT)
        q = _query(Rect(0, 0, 1, 1), staleness=30.0)
        fill = lambda: cache.put_viewport(
            q, _result(q, [_reading(1, timestamp=0.0)]), now=0.0, generation=1
        )
        fill()
        assert cache.get_viewport(q, now=0.0, generation=2) is None
        assert cache.stats.invalidated_generation == 1
        fill()
        assert cache.get_viewport(q, now=SLOT + 1.0, generation=1) is None
        assert cache.stats.invalidated_slot == 1
        fill()
        # Same slot window, but the stored reading aged past staleness.
        assert cache.get_viewport(q, now=40.0, generation=1) is None
        assert cache.stats.invalidated_stale == 1


# ----------------------------------------------------------------------
# L2 mechanics
# ----------------------------------------------------------------------
class TestL2:
    def _fill_tiles(self, cache, q, tiles, readings_per_tile):
        for tile, readings in zip(tiles, readings_per_tile):
            tile_q = _query(tile_rect(tile, cache.config.tile_extent_degrees))
            cache.put_tile(tile, q, _result(tile_q, readings), now=0.0, generation=1)

    def test_missing_tiles_reported_then_composed(self):
        cache = TieredResultCache(_config(), SLOT)
        q = _query(Rect(0.1, 0.1, 0.9, 0.4))  # two 0.5-degree tiles
        tiles = tile_cover(q.region, 0.5)
        assert len(tiles) == 2
        composed, missing = cache.get_tiles(q, now=0.0, generation=1)
        assert composed is None and sorted(missing) == sorted(tiles)
        self._fill_tiles(cache, q, tiles, [[_reading(1)], [_reading(2)]])
        composed, missing = cache.get_tiles(q, now=0.0, generation=1)
        assert missing == [] and composed is not None
        assert composed.tiles == 2
        assert composed.result.result_weight == 2
        assert cache.stats.l2_hits == 1

    def test_compose_deduplicates_shared_edge_sensors(self):
        cache = TieredResultCache(_config(), SLOT)
        q = _query(Rect(0.1, 0.1, 0.9, 0.4))
        tiles = tile_cover(q.region, 0.5)
        # Sensor 7 sits on the shared tile edge: both fills carry it.
        self._fill_tiles(
            cache, q, tiles, [[_reading(1), _reading(7)], [_reading(7), _reading(2)]]
        )
        composed, _ = cache.get_tiles(q, now=0.0, generation=1)
        assert composed is not None
        ids = sorted(
            r.sensor_id for r in composed.result.answers[0].cached_readings
        )
        assert ids == [1, 2, 7]

    def test_record_false_suppresses_hit_counter(self):
        cache = TieredResultCache(_config(), SLOT)
        q = _query(Rect(0.1, 0.1, 0.4, 0.4))
        self._fill_tiles(cache, q, [(0, 0)], [[_reading(1)]])
        composed, _ = cache.get_tiles(q, now=0.0, generation=1, record=False)
        assert composed is not None
        assert cache.stats.l2_hits == 0

    def test_ineligible_and_oversized_covers_opt_out(self):
        cache = TieredResultCache(_config(max_tiles_per_cover=4), SLOT)
        sampled = _query(Rect(0, 0, 1, 1), sample_size=10)
        assert cache.get_tiles(sampled, now=0.0, generation=1) == (None, [])
        huge = _query(Rect(0, 0, 9.9, 9.9))
        assert cache.get_tiles(huge, now=0.0, generation=1) == (None, [])

    def test_l2_eviction_bounds_tile_count(self):
        cache = TieredResultCache(_config(l2_capacity=3), SLOT)
        q = _query(Rect(0, 0, 0.4, 0.4))
        for i in range(5):
            cache.put_tile((i, 0), q, _result(q, []), now=0.0, generation=1)
        assert len(cache) == 3
        assert cache.stats.l2_evictions == 2


# ----------------------------------------------------------------------
# Region invalidation
# ----------------------------------------------------------------------
class TestInvalidateRegion:
    def test_drops_overlapping_entries_only(self):
        cache = TieredResultCache(_config(), SLOT)
        hit_q = _query(Rect(0, 0, 1, 1))
        miss_q = _query(Rect(5, 5, 6, 6))
        cache.put_viewport(hit_q, _result(hit_q, []), now=0.0, generation=1)
        cache.put_viewport(miss_q, _result(miss_q, []), now=0.0, generation=1)
        cache.put_tile((0, 0), hit_q, _result(hit_q, []), now=0.0, generation=1)
        cache.put_tile((11, 11), miss_q, _result(miss_q, []), now=0.0, generation=1)
        dropped = cache.invalidate_region(Rect(0.2, 0.2, 0.8, 0.8))
        assert dropped == 2  # the overlapping viewport and tile
        assert cache.stats.invalidated_write == 2
        assert cache.get_viewport(miss_q, now=0.0, generation=1) is not None
        assert cache.get_viewport(hit_q, now=0.0, generation=1) is None

    def test_clear_drops_everything(self):
        cache = TieredResultCache(_config(), SLOT)
        q = _query(Rect(0, 0, 1, 1))
        cache.put_viewport(q, _result(q, []), now=0.0, generation=1)
        cache.put_tile((0, 0), q, _result(q, []), now=0.0, generation=1)
        assert cache.clear() == 2
        assert len(cache) == 0


def test_rejects_nonpositive_slot_seconds():
    with pytest.raises(ValueError):
        TieredResultCache(_config(), 0.0)
