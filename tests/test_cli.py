import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_flags(self):
        args = build_parser().parse_args(["fig4", "--sensors", "1000", "--queries", "20"])
        assert args.sensors == 1000 and args.queries == 20

    def test_fig7_trials_flag(self):
        args = build_parser().parse_args(["fig7", "--trials", "3"])
        assert args.trials == 3

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "utility/cost" in out
        assert "optima" in out

    def test_fig3_runs_small(self, capsys):
        assert main(["fig3", "--sensors", "1200", "--queries", "25"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_fig7_runs_small(self, capsys):
        assert main(["fig7", "--trials", "2"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--sensors", "500"]) == 0
        out = capsys.readouterr().out
        assert "indexed 500 sensors" in out
        assert "cold" in out and "warm" in out


class TestMoreCommands:
    def test_fig5_runs_small(self, capsys):
        assert main(["fig5", "--sensors", "1200", "--queries", "20"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_fig6_runs_small(self, capsys):
        assert main(["fig6", "--sensors", "1200", "--queries", "20"]) == 0
        assert "Figure 6" in capsys.readouterr().out
