"""Fast smoke coverage of every figure driver at tiny scale (the real
shape assertions live in benchmarks/)."""

import pytest

from repro.bench.fig2 import run_fig2
from repro.bench.fig3 import run_fig3
from repro.bench.fig4 import run_fig4
from repro.bench.fig5 import run_fig5
from repro.bench.fig6 import run_fig6
from repro.bench.fig7 import run_fig7
from repro.bench.setup import EvalSetup


@pytest.fixture(scope="module")
def tiny():
    return EvalSetup(n_sensors=1200, n_queries=30)


class TestDrivers:
    def test_fig2_structure(self):
        result = run_fig2(n_samples=500)
        assert set(result.curves) == {"uniform", "usgs", "weather"}
        assert all(len(c) == len(result.deltas) for c in result.curves.values())
        assert "optima" in result.format_table()

    def test_fig3_structure(self, tiny):
        result = run_fig3(tiny)
        assert set(result.mean_traversed) == {"rtree", "hier_cache", "colr_tree"}
        assert result.format_table().count("Figure 3") == 2  # main + nested

    def test_fig4_structure(self, tiny):
        result = run_fig4(tiny, freshness_windows=[120.0, 480.0])
        assert len(result.rows) == 2
        summary = result.summary()
        assert summary["max_probe_reduction_vs_flat"] > 0
        assert "fresh_min" in result.format_table()

    def test_fig5_structure(self, tiny):
        result = run_fig5(tiny, cache_fractions=[0.2], sample_sizes=[10, 100])
        assert len(result.cells) == 2
        assert result.cell(0.2, 10).mean_probes >= 0
        with pytest.raises(KeyError):
            result.cell(0.9, 10)

    def test_fig6_structure(self, tiny):
        result = run_fig6(tiny, cache_fractions=[0.2], sample_sizes=[10])
        cell = result.cell(0.2, 10)
        assert 0.0 <= cell.target_accuracy <= 1.5
        with pytest.raises(KeyError):
            result.cell(0.2, 999)

    def test_fig7_structure(self):
        result = run_fig7(sample_sizes=[10, 50], n_trials=4)
        assert len(result.points) == 2
        assert result.error_at(10) >= 0
        with pytest.raises(KeyError):
            result.error_at(77)
