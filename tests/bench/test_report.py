from repro.bench.report import format_table


class TestFormatTable:
    def test_headers_and_rows_present(self):
        text = format_table(["name", "value"], [["x", 1.5], ["y", 2.0]])
        assert "name" in text and "value" in text
        assert "1.500" in text and "2.000" in text

    def test_title_underlined(self):
        text = format_table(["a"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_large_floats_get_thousands_separator(self):
        text = format_table(["v"], [[123456.0]])
        assert "123,456" in text

    def test_zero_compact(self):
        text = format_table(["v"], [[0.0]])
        assert text.splitlines()[-1].strip() == "0"

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines if line.strip()}
        assert len(widths) == 1  # every row padded to the same width

    def test_mixed_types(self):
        text = format_table(["a", "b", "c"], [[True, 42, "txt"]])
        assert "True" in text and "42" in text and "txt" in text
