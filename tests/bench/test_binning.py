import numpy as np
import pytest

from repro import GeoPoint, Rect, Sensor
from repro.bench.binning import bin_by_result_size, binned_series, ideal_result_sizes
from repro.workloads.livelocal import QuerySpec


def spec(rect):
    return QuerySpec(region=rect, at_time=0.0, staleness_seconds=60.0, sample_size=10)


def grid_sensors(n_side=10):
    return [
        Sensor(sensor_id=i * n_side + j, location=GeoPoint(float(i), float(j)), expiry_seconds=60.0)
        for i in range(n_side)
        for j in range(n_side)
    ]


class TestIdealResultSizes:
    def test_exact_counts(self):
        sensors = grid_sensors()
        queries = [spec(Rect(0, 0, 4.5, 4.5)), spec(Rect(0, 0, 9, 9)), spec(Rect(20, 20, 30, 30))]
        sizes = ideal_result_sizes(sensors, queries)
        assert sizes.tolist() == [25, 100, 0]

    def test_empty_sensors(self):
        sizes = ideal_result_sizes([], [spec(Rect(0, 0, 1, 1))])
        assert sizes.tolist() == [0]

    def test_boundary_inclusive(self):
        sensors = [Sensor(sensor_id=0, location=GeoPoint(1, 1), expiry_seconds=60.0)]
        assert ideal_result_sizes(sensors, [spec(Rect(1, 1, 2, 2))]).tolist() == [1]


class TestBinning:
    def test_zero_bin_separated(self):
        sizes = np.array([0, 0, 5, 50])
        bins = bin_by_result_size(sizes, [1.0, 3.0, 10.0, 20.0])
        assert bins[0].low == 0 and bins[0].high == 0
        assert bins[0].n_queries == 2
        assert bins[0].mean_value == pytest.approx(2.0)

    def test_all_queries_assigned(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(0, 1000, 200)
        values = rng.uniform(0, 10, 200)
        bins = bin_by_result_size(sizes, values)
        assert sum(b.n_queries for b in bins) == 200

    def test_log_spaced_edges_monotone(self):
        sizes = np.array([1, 5, 20, 100, 900])
        bins = bin_by_result_size(sizes, [0.0] * 5)
        lows = [b.low for b in bins]
        assert lows == sorted(lows)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bin_by_result_size(np.array([1, 2]), [1.0])

    def test_empty_input(self):
        assert bin_by_result_size(np.array([], dtype=np.int64), []) == []

    def test_binned_series_multiple_systems(self):
        sizes = np.array([1, 10, 100])
        series = binned_series(sizes, {"a": [1.0, 2.0, 3.0], "b": [4.0, 5.0, 6.0]})
        assert set(series) == {"a", "b"}
        assert sum(b.n_queries for b in series["a"]) == 3
