import pytest

from repro.bench.harness import (
    QueryRecord,
    probe_discretization_error,
    run_query_stream,
    target_accuracy,
)
from repro.bench.setup import EvalSetup
from repro.core.lookup import QueryAnswer, TerminalRecord
from repro.workloads.livelocal import QuerySpec


@pytest.fixture(scope="module")
def tiny_setup():
    return EvalSetup(n_sensors=1500, n_queries=40)


class TestRunQueryStream:
    def test_records_one_per_query(self, tiny_setup):
        system = tiny_setup.make_colr_tree()
        run = run_query_stream(system, tiny_setup.queries)
        assert len(run) == len(tiny_setup.queries)

    def test_sample_size_override(self, tiny_setup):
        system = tiny_setup.make_colr_tree()
        run = run_query_stream(system, tiny_setup.queries, sample_size=5)
        assert all(r.target_size == 5 for r in run.records)

    def test_use_sampling_false_forces_exact(self, tiny_setup):
        sampled = run_query_stream(
            tiny_setup.make_colr_tree(), tiny_setup.queries, use_sampling=True
        )
        exact = run_query_stream(
            tiny_setup.make_colr_tree(), tiny_setup.queries, use_sampling=False
        )
        assert exact.total("sensors_probed") > sampled.total("sensors_probed")

    def test_mean_and_total(self, tiny_setup):
        run = run_query_stream(tiny_setup.make_colr_tree(), tiny_setup.queries)
        assert run.mean("sensors_probed") == pytest.approx(
            run.total("sensors_probed") / len(run)
        )

    def test_mean_of_empty_run_rejected(self):
        from repro.bench.harness import RunResult

        with pytest.raises(ValueError):
            RunResult().mean("sensors_probed")

    def test_records_carry_latencies(self, tiny_setup):
        run = run_query_stream(tiny_setup.make_colr_tree(), tiny_setup.queries)
        rec = run.records[0]
        assert rec.processing_seconds > 0
        assert rec.end_to_end_seconds >= rec.processing_seconds


class TestMetrics:
    def test_pde_zero_without_terminals(self):
        assert probe_discretization_error(QueryAnswer()) == 0.0

    def test_pde_positive_on_underdelivery(self):
        answer = QueryAnswer(
            terminals=[TerminalRecord(node_id=0, level=2, target=10.0, results=5, used_cache=False)]
        )
        assert probe_discretization_error(answer) == pytest.approx(0.5)

    def test_pde_negative_on_cache_overdelivery(self):
        answer = QueryAnswer(
            terminals=[TerminalRecord(node_id=0, level=2, target=10.0, results=30, used_cache=True)]
        )
        assert probe_discretization_error(answer) == pytest.approx(-2.0)

    def test_pde_skips_zero_targets(self):
        answer = QueryAnswer(
            terminals=[
                TerminalRecord(node_id=0, level=2, target=0.0, results=3, used_cache=False),
                TerminalRecord(node_id=1, level=2, target=10.0, results=10, used_cache=False),
            ]
        )
        assert probe_discretization_error(answer) == 0.0

    def test_target_accuracy_met(self):
        assert target_accuracy(result_weight=30, target_size=30, unsampled_result_size=500) == 1.0

    def test_target_accuracy_sparse_region(self):
        # Region holds fewer sensors than the target: achieving them all
        # is full accuracy.
        assert target_accuracy(result_weight=7, target_size=30, unsampled_result_size=7) == 1.0

    def test_target_accuracy_shortfall(self):
        assert target_accuracy(result_weight=15, target_size=30, unsampled_result_size=500) == 0.5

    def test_target_accuracy_empty_region(self):
        assert target_accuracy(result_weight=0, target_size=30, unsampled_result_size=0) == 1.0


class TestEvalSetup:
    def test_sensors_and_queries_cached(self, tiny_setup):
        assert tiny_setup.sensors is tiny_setup.sensors
        assert tiny_setup.queries is tiny_setup.queries

    def test_capacity_for_fraction(self, tiny_setup):
        assert tiny_setup.cache_capacity_for_fraction(0.16) == round(0.16 * 1500)
        with pytest.raises(ValueError):
            tiny_setup.cache_capacity_for_fraction(0.0)

    def test_factories_produce_expected_configs(self, tiny_setup):
        assert not tiny_setup.make_plain_rtree().config.caching_enabled
        hier = tiny_setup.make_hierarchical_cache()
        assert hier.config.caching_enabled and not hier.config.sampling_enabled
        colr = tiny_setup.make_colr_tree()
        assert colr.config.sampling_enabled

    def test_flat_cache_capacity_passthrough(self, tiny_setup):
        flat = tiny_setup.make_flat_cache(cache_capacity=99)
        assert flat.cache_capacity == 99
