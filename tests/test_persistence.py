import json

import pytest

from repro import COLRTreeConfig, Rect
from repro.persistence import (
    SnapshotError,
    load_tree,
    restore_tree,
    save_tree,
    snapshot_tree,
)

from tests.conftest import make_registry, make_tree


@pytest.fixture
def warm_tree():
    registry = make_registry(n=300, seed=21)
    tree = make_tree(registry)
    tree.query(Rect(0, 0, 60, 60), now=0.0, max_staleness=600.0, sample_size=0)
    return tree


class TestSnapshotRoundTrip:
    def test_structure_restored(self, warm_tree, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(warm_tree, path, now=1.0)
        restored = load_tree(path)
        assert len(restored) == len(warm_tree)
        assert restored.height() == warm_tree.height()
        assert restored.root.weight == warm_tree.root.weight

    def test_cache_contents_restored(self, warm_tree, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(warm_tree, path, now=1.0)
        restored = load_tree(path)
        assert restored.cached_reading_count == warm_tree.cached_reading_count
        # The restored cache must serve the same data.
        a = warm_tree.query(Rect(0, 0, 60, 60), now=2.0, max_staleness=600.0, sample_size=0)
        b = restored.query(Rect(0, 0, 60, 60), now=2.0, max_staleness=600.0, sample_size=0)
        assert a.result_weight == b.result_weight
        assert b.stats.sensors_probed == 0

    def test_aggregates_rebuilt_consistently(self, warm_tree, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(warm_tree, path, now=1.0)
        restored = load_tree(path)
        for node in restored.root.iter_subtree():
            if node.is_leaf or node.agg_cache is None:
                continue
            for slot in node.agg_cache.slot_ids():
                cached = node.agg_cache.sketch(slot)
                recomputed = restored._recompute_slot(node, slot)
                assert cached.count == recomputed.count

    def test_expired_readings_dropped_on_load(self, warm_tree, tmp_path):
        path = tmp_path / "tree.json"
        # Save "much later": everything in the snapshot is expired.
        save_tree(warm_tree, path, now=100_000.0)
        restored = load_tree(path)
        assert restored.cached_reading_count == 0

    def test_config_round_trips(self, tmp_path):
        registry = make_registry(n=100, seed=22)
        config = COLRTreeConfig(
            fanout=5,
            leaf_capacity=10,
            max_expiry_seconds=500.0,
            slot_seconds=100.0,
            cache_capacity=40,
            reversible_aggregates=True,
        )
        tree = make_tree(registry, config)
        path = tmp_path / "t.json"
        save_tree(tree, path, now=0.0)
        restored = load_tree(path)
        assert restored.config == config

    def test_sensor_metadata_preserved(self, tmp_path):
        from repro import COLRTree, GeoPoint, SensorRegistry

        registry = SensorRegistry()
        registry.register(
            GeoPoint(1, 2), 300.0, sensor_type="water", metadata={"name": "gauge-7"}
        )
        registry.register(GeoPoint(3, 4), 200.0)
        tree = COLRTree(registry.all(), COLRTreeConfig())
        path = tmp_path / "t.json"
        save_tree(tree, path, now=0.0)
        restored = load_tree(path)
        s = restored.sensor(0)
        assert s.sensor_type == "water"
        assert dict(s.metadata) == {"name": "gauge-7"}


class TestErrors:
    def test_bad_version_rejected(self, warm_tree):
        data = snapshot_tree(warm_tree, now=0.0)
        data["format_version"] = 99
        with pytest.raises(SnapshotError):
            restore_tree(data)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotError):
            load_tree(path)

    def test_missing_fields_rejected(self, warm_tree):
        data = snapshot_tree(warm_tree, now=0.0)
        del data["config"]["fanout"]
        data["config"]["bogus"] = 1
        with pytest.raises((SnapshotError, TypeError)):
            restore_tree(data)

    def test_empty_sensor_list_rejected(self, warm_tree):
        data = snapshot_tree(warm_tree, now=0.0)
        data["sensors"] = []
        with pytest.raises(SnapshotError):
            restore_tree(data)

    def test_snapshot_is_json_serializable(self, warm_tree):
        data = snapshot_tree(warm_tree, now=0.0)
        json.dumps(data)  # must not raise
