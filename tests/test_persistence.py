import json

import pytest

from repro import COLRTreeConfig, Rect
from repro.persistence import (
    SnapshotError,
    load_tree,
    restore_tree,
    save_tree,
    snapshot_tree,
)

from tests.conftest import make_registry, make_tree


@pytest.fixture
def warm_tree():
    registry = make_registry(n=300, seed=21)
    tree = make_tree(registry)
    tree.query(Rect(0, 0, 60, 60), now=0.0, max_staleness=600.0, sample_size=0)
    return tree


class TestSnapshotRoundTrip:
    def test_structure_restored(self, warm_tree, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(warm_tree, path, now=1.0)
        restored = load_tree(path)
        assert len(restored) == len(warm_tree)
        assert restored.height() == warm_tree.height()
        assert restored.root.weight == warm_tree.root.weight

    def test_cache_contents_restored(self, warm_tree, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(warm_tree, path, now=1.0)
        restored = load_tree(path)
        assert restored.cached_reading_count == warm_tree.cached_reading_count
        # The restored cache must serve the same data.
        a = warm_tree.query(Rect(0, 0, 60, 60), now=2.0, max_staleness=600.0, sample_size=0)
        b = restored.query(Rect(0, 0, 60, 60), now=2.0, max_staleness=600.0, sample_size=0)
        assert a.result_weight == b.result_weight
        assert b.stats.sensors_probed == 0

    def test_aggregates_rebuilt_consistently(self, warm_tree, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(warm_tree, path, now=1.0)
        restored = load_tree(path)
        for node in restored.root.iter_subtree():
            if node.is_leaf or node.agg_cache is None:
                continue
            for slot in node.agg_cache.slot_ids():
                cached = node.agg_cache.sketch(slot)
                recomputed = restored._recompute_slot(node, slot)
                assert cached.count == recomputed.count

    def test_expired_readings_dropped_on_load(self, warm_tree, tmp_path):
        path = tmp_path / "tree.json"
        # Save "much later": everything in the snapshot is expired.
        save_tree(warm_tree, path, now=100_000.0)
        restored = load_tree(path)
        assert restored.cached_reading_count == 0

    def test_config_round_trips(self, tmp_path):
        registry = make_registry(n=100, seed=22)
        config = COLRTreeConfig(
            fanout=5,
            leaf_capacity=10,
            max_expiry_seconds=500.0,
            slot_seconds=100.0,
            cache_capacity=40,
            reversible_aggregates=True,
        )
        tree = make_tree(registry, config)
        path = tmp_path / "t.json"
        save_tree(tree, path, now=0.0)
        restored = load_tree(path)
        assert restored.config == config

    def test_sensor_metadata_preserved(self, tmp_path):
        from repro import COLRTree, GeoPoint, SensorRegistry

        registry = SensorRegistry()
        registry.register(
            GeoPoint(1, 2), 300.0, sensor_type="water", metadata={"name": "gauge-7"}
        )
        registry.register(GeoPoint(3, 4), 200.0)
        tree = COLRTree(registry.all(), COLRTreeConfig())
        path = tmp_path / "t.json"
        save_tree(tree, path, now=0.0)
        restored = load_tree(path)
        s = restored.sensor(0)
        assert s.sensor_type == "water"
        assert dict(s.metadata) == {"name": "gauge-7"}


class TestFormats:
    def test_default_save_writes_checkpoint_container(self, warm_tree, tmp_path):
        from repro.storage.checkpoint import is_checkpoint_file

        path = tmp_path / "tree.snap"
        save_tree(warm_tree, path, now=1.0)
        assert is_checkpoint_file(path)

    def test_v2_loads_without_deprecation_warning(self, warm_tree, tmp_path):
        import warnings

        path = tmp_path / "tree.snap"
        save_tree(warm_tree, path, now=1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            restored = load_tree(path)
        assert len(restored) == len(warm_tree)

    def test_v1_still_round_trips_with_deprecation_warning(
        self, warm_tree, tmp_path
    ):
        path = tmp_path / "tree.json"
        save_tree(warm_tree, path, now=1.0, format_version=1)
        json.loads(path.read_text())  # still the legacy JSON document
        with pytest.warns(DeprecationWarning, match="version-1 JSON"):
            restored = load_tree(path)
        assert restored.cached_reading_count == warm_tree.cached_reading_count
        a = warm_tree.query(
            Rect(0, 0, 60, 60), now=2.0, max_staleness=600.0, sample_size=0
        )
        b = restored.query(
            Rect(0, 0, 60, 60), now=2.0, max_staleness=600.0, sample_size=0
        )
        assert a.result_weight == b.result_weight

    def test_v1_and_v2_restore_identically(self, warm_tree, tmp_path):
        v1, v2 = tmp_path / "t.json", tmp_path / "t.snap"
        save_tree(warm_tree, v1, now=1.0, format_version=1)
        save_tree(warm_tree, v2, now=1.0)
        with pytest.warns(DeprecationWarning):
            from_v1 = load_tree(v1)
        from_v2 = load_tree(v2)
        assert from_v1.cached_reading_count == from_v2.cached_reading_count
        a = from_v1.query(
            Rect(0, 0, 60, 60), now=2.0, max_staleness=600.0, sample_size=0
        )
        b = from_v2.query(
            Rect(0, 0, 60, 60), now=2.0, max_staleness=600.0, sample_size=0
        )
        assert a.result_weight == b.result_weight
        assert a.stats.sensors_probed == b.stats.sensors_probed == 0

    def test_unsupported_save_version_rejected(self, warm_tree, tmp_path):
        with pytest.raises(SnapshotError):
            save_tree(warm_tree, tmp_path / "t", now=0.0, format_version=3)

    def test_corrupt_v2_file_rejected(self, warm_tree, tmp_path):
        path = tmp_path / "tree.snap"
        save_tree(warm_tree, path, now=1.0)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            load_tree(path)


class TestErrors:
    def test_bad_version_rejected(self, warm_tree):
        data = snapshot_tree(warm_tree, now=0.0)
        data["format_version"] = 99
        with pytest.raises(SnapshotError):
            restore_tree(data)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        # Not a checkpoint container, so it routes through the (warned)
        # legacy JSON path and fails to parse there.
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SnapshotError):
                load_tree(path)

    def test_missing_fields_rejected(self, warm_tree):
        data = snapshot_tree(warm_tree, now=0.0)
        del data["config"]["fanout"]
        data["config"]["bogus"] = 1
        with pytest.raises((SnapshotError, TypeError)):
            restore_tree(data)

    def test_empty_sensor_list_rejected(self, warm_tree):
        data = snapshot_tree(warm_tree, now=0.0)
        data["sensors"] = []
        with pytest.raises(SnapshotError):
            restore_tree(data)

    def test_snapshot_is_json_serializable(self, warm_tree):
        data = snapshot_tree(warm_tree, now=0.0)
        json.dumps(data)  # must not raise
