"""The process execution backend end to end.

Workers are real forked processes over shared-memory kernels, so these
tests cover the contracts the in-process suite cannot: answer
bit-identity across the pipe, crash degradation with a killed *process*
(not a simulated flag), revival with fresh segment maps, and the
rebuild → republish lifecycle.  The package conftest asserts no
``/dev/shm`` leak after every test.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.federation import FederatedPortal, FederationConfig
from repro.geometry import GeoPoint, Polygon, Rect
from repro.parallel import ParallelFederatedPortal, leaked_segments
from repro.portal import SensorQuery

N_SENSORS = 300
EXTENT = 100.0
STALENESS = 300.0


def _build(execution: str, n_shards: int = 2, seed: int = 0) -> FederatedPortal:
    rng = np.random.default_rng(seed)
    portal = FederatedPortal(
        n_shards=n_shards,
        max_sensors_per_query=None,
        federation=FederationConfig(execution=execution),
    )
    for _ in range(N_SENSORS):
        portal.register_sensor(
            GeoPoint(float(rng.uniform(0, EXTENT)), float(rng.uniform(0, EXTENT))),
            expiry_seconds=float(rng.uniform(120, 600)),
            sensor_type=("temperature", "humidity")[int(rng.integers(2))],
            availability=0.9,
        )
    portal.rebuild_index()
    return portal


def _queries() -> list[SensorQuery]:
    rect = Rect(10.0, 10.0, 70.0, 70.0)
    poly = Polygon(
        [GeoPoint(20.0, 15.0), GeoPoint(85.0, 30.0), GeoPoint(40.0, 90.0)]
    )
    return [
        SensorQuery(region=rect, staleness_seconds=STALENESS),
        SensorQuery(region=poly, staleness_seconds=STALENESS, sample_size=25),
        SensorQuery(
            region=rect, staleness_seconds=STALENESS, sensor_type="humidity"
        ),
    ]


def _assert_identical(a, b):
    assert len(a.answers) == len(b.answers)
    for x, y in zip(a.answers, b.answers):
        assert x.probed_readings == y.probed_readings
        assert x.cached_readings == y.cached_readings
        assert x.terminals == y.terminals
        assert x.stats == y.stats
    assert a.groups == b.groups
    assert a.processing_seconds == b.processing_seconds
    assert a.collection_seconds == b.collection_seconds


class TestDispatch:
    def test_execution_field_selects_backend(self):
        with _build("process") as portal:
            assert isinstance(portal, ParallelFederatedPortal)
        inproc = _build("inprocess")
        assert not isinstance(inproc, ParallelFederatedPortal)

    def test_invalid_execution_rejected(self):
        with pytest.raises(ValueError):
            FederationConfig(execution="threads")


class TestParity:
    def test_process_answers_bit_identical(self):
        inproc = _build("inprocess")
        with _build("process") as proc:
            for phase in ("cold", "warm"):
                for query in _queries():
                    _assert_identical(inproc.execute(query), proc.execute(query))
                a = inproc.execute_batch(_queries())
                b = proc.execute_batch(_queries())
                for ra, rb in zip(a.results, b.results):
                    _assert_identical(ra, rb)
                assert a.stats == b.stats
                inproc.clock.advance(60.0)
                proc.clock.advance(60.0)
            assert (
                inproc.stats_summary()["federation"]
                == proc.stats_summary()["federation"]
            )

    def test_workers_are_real_processes(self):
        with _build("process") as proc:
            pids = {proc.worker_pid(i) for i in range(proc.n_shards)}
            assert os.getpid() not in pids
            assert len(pids) == proc.n_shards


class TestDegradation:
    def test_killed_worker_degrades_to_partial_answer(self):
        with _build("process") as proc:
            wide = SensorQuery(
                region=Rect(0.0, 0.0, EXTENT, EXTENT), staleness_seconds=STALENESS
            )
            healthy = proc.execute(wide)
            assert not healthy.partial

            victim_pid = proc.worker_pid(1)
            os.kill(victim_pid, signal.SIGKILL)
            # Give the kernel a beat to tear the socket down.
            deadline = time.time() + 5.0
            while time.time() < deadline:
                try:
                    os.kill(victim_pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.01)

            degraded = proc.execute(wide)
            assert degraded.partial
            assert 1 in degraded.failed_shards
            assert degraded.result_weight < healthy.result_weight

            proc.revive_shard(1)
            recovered = proc.execute(wide)
            assert not recovered.partial
            # The revived worker rebuilt with a fresh network RNG, so the
            # weight is not bit-equal to the first answer — but shard 1's
            # sensors are back in it.
            assert recovered.result_weight > degraded.result_weight

    def test_kill_and_revive_shard_api(self):
        with _build("process") as proc:
            proc.kill_shard(0)
            batch = proc.execute_batch(_queries())
            assert batch.failed_shards == (0,)
            proc.revive_shard(0)
            batch = proc.execute_batch(_queries())
            assert batch.failed_shards == ()

    def test_surviving_worker_untouched_by_crash(self):
        with _build("process") as proc:
            survivor_pid = proc.worker_pid(0)
            os.kill(proc.worker_pid(1), signal.SIGKILL)
            proc.execute(
                SensorQuery(
                    region=Rect(0.0, 0.0, EXTENT, EXTENT),
                    staleness_seconds=STALENESS,
                )
            )
            assert proc.worker_pid(0) == survivor_pid


class TestLifecycle:
    def test_rebuild_republishes_segments_and_respawns(self):
        with _build("process") as proc:
            before_segments = set(proc._registry.segment_names())
            before_pids = {proc.worker_pid(i) for i in range(proc.n_shards)}
            wide = SensorQuery(
                region=Rect(0.0, 0.0, EXTENT, EXTENT), staleness_seconds=STALENESS
            )
            first = proc.execute(wide)

            proc.rebuild_index()
            after_segments = set(proc._registry.segment_names())
            after_pids = {proc.worker_pid(i) for i in range(proc.n_shards)}
            assert before_segments.isdisjoint(after_segments)
            assert before_pids.isdisjoint(after_pids)

            again = proc.execute(wide)
            assert again.result_weight == first.result_weight
            assert not again.partial

    def test_close_unlinks_everything(self):
        proc = _build("process")
        assert leaked_segments() != []
        proc.close()
        assert leaked_segments() == []
        # close is idempotent
        proc.close()

    def test_stats_and_explain_survive_dead_worker(self):
        with _build("process") as proc:
            proc.kill_shard(0)
            summary = proc.stats_summary()
            assert "federation" in summary
            plan = proc.explain(
                SensorQuery(
                    region=Rect(0.0, 0.0, EXTENT, EXTENT),
                    staleness_seconds=STALENESS,
                )
            )
            assert plan is not None
