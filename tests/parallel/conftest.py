"""Shared teardown: no test in this package may leak shm segments.

Every test runs inside a fixture that scans ``/dev/shm`` afterwards —
the acceptance criterion "no leaked shared-memory segments after test
runs" is enforced structurally, not per-test.
"""

from __future__ import annotations

import pytest

from repro.parallel import leaked_segments


@pytest.fixture(autouse=True)
def assert_no_leaked_segments():
    assert leaked_segments() == [], "segments leaked by an earlier test"
    yield
    assert leaked_segments() == [], "test leaked /dev/shm segments"
