"""Segment registry and framing: layout, lifecycle, wire format."""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.core.flat import FlatKernel
from repro.parallel import SegmentRegistry, leaked_segments
from repro.parallel.framing import MAX_FRAME_BYTES, recv_frame, send_frame
from repro.parallel.shm import ALIGN, attach

from tests.conftest import make_registry, make_tree


def _arrays():
    rng = np.random.default_rng(0)
    return {
        "a_floats": rng.random(37),
        "b_ints": rng.integers(0, 1000, 13, dtype=np.int64),
        "c_bytes": rng.integers(0, 2, 51).astype(np.int8),
        "d_empty": np.empty(0, dtype=np.float64),
    }


class TestSegmentRegistry:
    def test_publish_attach_roundtrip(self):
        arrays = _arrays()
        with SegmentRegistry() as registry:
            manifest = registry.publish(arrays, tag="t0")
            shm, views = attach(manifest)
            try:
                assert set(views) == set(arrays)
                for name, src in arrays.items():
                    assert views[name].dtype == src.dtype
                    assert np.array_equal(views[name], src)
            finally:
                del views
                shm.close()

    def test_offsets_are_cache_line_aligned(self):
        with SegmentRegistry() as registry:
            manifest = registry.publish(_arrays(), tag="t0")
            assert all(spec.offset % ALIGN == 0 for spec in manifest.arrays)

    def test_close_unlinks_and_is_idempotent(self):
        registry = SegmentRegistry()
        registry.publish(_arrays(), tag="t0")
        assert leaked_segments() != []
        registry.close()
        assert leaked_segments() == []
        registry.close()  # second close is a no-op
        with pytest.raises(RuntimeError):
            registry.publish(_arrays(), tag="t1")

    def test_reopen_allows_republish(self):
        registry = SegmentRegistry()
        first = registry.publish(_arrays(), tag="t0")
        registry.close()
        registry.reopen()
        second = registry.publish(_arrays(), tag="t0")
        assert first.segment != second.segment
        registry.close()

    def test_kernel_shared_arrays_adopt_roundtrip(self):
        tree = make_tree(make_registry(n=200, seed=9))
        kernel = tree.kernel
        with SegmentRegistry() as registry:
            manifest = registry.publish(kernel.shared_arrays(), tag="kernel")
            shm, views = attach(manifest)
            try:
                clone = FlatKernel(tree.root, tile_nodes=64)
                clone.adopt_arrays(views, verify=True)
                assert np.array_equal(clone.min_x, kernel.min_x)
            finally:
                del views, clone
                shm.close()

    def test_adopt_rejects_content_mismatch(self):
        tree = make_tree(make_registry(n=150, seed=2))
        other = make_tree(make_registry(n=150, seed=3))
        with SegmentRegistry() as registry:
            manifest = registry.publish(other.kernel.shared_arrays(), tag="bad")
            shm, views = attach(manifest)
            try:
                with pytest.raises(ValueError):
                    tree.kernel.adopt_arrays(views, verify=True)
            finally:
                del views
                shm.close()


class _SocketPair:
    def __enter__(self):
        self.a, self.b = socket.socketpair()
        return self.a, self.b

    def __exit__(self, *exc):
        self.a.close()
        self.b.close()


class TestFraming:
    def test_roundtrip(self):
        with _SocketPair() as (a, b):
            payload = ("op", "execute", ({"k": [1, 2, 3]},), 17.5)
            send_frame(a, payload)
            assert recv_frame(b) == payload

    def test_multiple_frames_in_order(self):
        with _SocketPair() as (a, b):
            for i in range(5):
                send_frame(a, ("seq", i))
            assert [recv_frame(b)[1] for _ in range(5)] == list(range(5))

    def test_closed_peer_raises_eof(self):
        with _SocketPair() as (a, b):
            a.close()
            with pytest.raises(EOFError):
                recv_frame(b)

    def test_oversize_frame_rejected(self):
        with _SocketPair() as (a, b):
            # Hand-craft a header claiming an absurd length.
            b.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(EOFError):
                recv_frame(a)
