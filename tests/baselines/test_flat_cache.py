import pytest

from repro import Rect, SensorNetwork
from repro.baselines import FlatCache

from tests.conftest import make_registry


@pytest.fixture
def setup():
    registry = make_registry(n=300, seed=14)
    network = SensorNetwork(registry.all(), seed=3)
    return registry, FlatCache(registry.all(), network)


class TestFlatCache:
    def test_cold_query_probes_all_matching(self, setup):
        registry, cache = setup
        region = Rect(0, 0, 50, 50)
        answer = cache.query(region, now=0.0, max_staleness=600.0)
        assert answer.stats.sensors_probed == len(registry.within(region))

    def test_warm_query_served_from_pool(self, setup):
        registry, cache = setup
        region = Rect(0, 0, 50, 50)
        cache.query(region, now=0.0, max_staleness=600.0)
        answer = cache.query(region, now=1.0, max_staleness=600.0)
        assert answer.stats.sensors_probed == 0
        assert answer.result_weight == len(registry.within(region))

    def test_scan_cost_includes_whole_pool_and_directory(self, setup):
        registry, cache = setup
        cache.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0)
        answer = cache.query(Rect(0, 0, 5, 5), now=1.0, max_staleness=600.0)
        # Even a tiny region pays a scan of the full pool + directory.
        assert answer.stats.readings_scanned >= len(registry)

    def test_stale_entries_reprobed(self, setup):
        _, cache = setup
        region = Rect(0, 0, 50, 50)
        first = cache.query(region, now=0.0, max_staleness=600.0)
        later = cache.query(region, now=100.0, max_staleness=30.0)
        assert later.stats.sensors_probed == first.stats.sensors_probed

    def test_expired_entries_dropped(self, setup):
        registry, cache = setup
        region = Rect(0, 0, 100, 100)
        cache.query(region, now=0.0, max_staleness=600.0)
        assert cache.cached_reading_count > 0
        cache.query(region, now=10_000.0, max_staleness=600.0)
        # All original readings expired (max expiry is 600s).
        for reading, _ in cache._pool.values():
            assert reading.is_valid_at(10_000.0)

    def test_capacity_eviction(self):
        registry = make_registry(n=200, seed=15)
        network = SensorNetwork(registry.all(), seed=3)
        cache = FlatCache(registry.all(), network, cache_capacity=50)
        cache.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0)
        assert cache.cached_reading_count <= 50

    def test_sample_size_ignored(self, setup):
        registry, cache = setup
        region = Rect(0, 0, 50, 50)
        answer = cache.query(region, now=0.0, max_staleness=600.0, sample_size=5)
        assert answer.stats.sensors_probed == len(registry.within(region))

    def test_stats_accumulate(self, setup):
        _, cache = setup
        cache.query(Rect(0, 0, 10, 10), now=0.0, max_staleness=600.0)
        cache.query(Rect(0, 0, 10, 10), now=1.0, max_staleness=600.0)
        assert cache.stats.queries == 2


class TestFactories:
    def test_configs_wired(self):
        from repro import COLRTreeConfig
        from repro.baselines import full_colr_tree, hierarchical_cache, plain_rtree

        registry = make_registry(n=100, seed=16)
        network = SensorNetwork(registry.all(), seed=1)
        cfg = COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0)
        rt = plain_rtree(registry.all(), cfg, network)
        hc = hierarchical_cache(registry.all(), cfg, network)
        ct = full_colr_tree(registry.all(), cfg, network)
        assert not rt.config.caching_enabled and not rt.config.sampling_enabled
        assert hc.config.caching_enabled and not hc.config.sampling_enabled
        assert ct.config.caching_enabled and ct.config.sampling_enabled
