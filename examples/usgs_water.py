"""Approximate aggregation over USGS-style water gauges (Figure 7).

Queries the average water discharge across 200 Washington-state gauges
with increasing SAMPLESIZE budgets and compares each approximate answer
against the noise-free regional mean — reproducing the paper's
observation that ~15 sampled gauges land within 10%.

Run:  python examples/usgs_water.py
"""

from dataclasses import replace

import numpy as np

from repro import COLRTree, COLRTreeConfig, SensorNetwork
from repro.workloads import UsgsWaWorkload
from repro.workloads.usgs import WA_BBOX


def main() -> None:
    workload = UsgsWaWorkload(seed=2)
    sensors = workload.sensors()
    truth = workload.true_regional_mean(0.0)
    print(f"{len(sensors)} gauges in WA, true mean discharge {truth:.1f} cfs\n")

    config = COLRTreeConfig(
        fanout=4,
        leaf_capacity=8,
        max_expiry_seconds=workload.expiry_seconds,
        slot_seconds=workload.expiry_seconds / 5.0,
        terminal_level=1,
        oversample_level=2,
    )
    n_trials = 8
    print(f"{'sample':>8} {'probed':>8} {'estimate':>10} {'rel.err':>8}   (mean of {n_trials} trials)")
    for sample_size in (5, 10, 15, 25, 50, 100, 200):
        probed, estimates, errors = [], [], []
        for trial in range(n_trials):
            # Fresh tree per trial so each answer is a genuine cold sample.
            network = SensorNetwork(sensors, value_fn=workload.value_fn(), seed=3 + trial)
            tree = COLRTree(sensors, replace(config, seed=trial), network=network)
            answer = tree.query(
                WA_BBOX,
                now=0.0,
                max_staleness=workload.expiry_seconds,
                sample_size=sample_size,
            )
            estimate = answer.estimate("avg")
            probed.append(answer.stats.sensors_probed)
            estimates.append(estimate)
            errors.append(abs(estimate - truth) / truth)
        print(
            f"{sample_size:>8} {np.mean(probed):>8.0f} "
            f"{np.mean(estimates):>10.1f} {np.mean(errors):>7.1%}"
        )
    print("\n(the paper reports <=10% error from ~15 of 200 sensors)")


if __name__ == "__main__":
    main()
