"""Quickstart: build a COLR-Tree over live sensors and query it.

Covers the core loop in ~60 lines: register sensors, wire a simulated
sensor network, bulk-build the index, then watch caching and sampling
cut the probe bill on repeated queries.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AvailabilityModel,
    COLRTree,
    COLRTreeConfig,
    GeoPoint,
    Rect,
    SensorNetwork,
    SensorRegistry,
    SimClock,
)


def main() -> None:
    rng = np.random.default_rng(7)
    clock = SimClock()

    # 1. Publishers register sensors: location, validity (expiry) of
    #    each reading, and how reliably the device answers probes.
    registry = SensorRegistry()
    for _ in range(2_000):
        registry.register(
            location=GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(120, 600)),
            sensor_type="demo",
            availability=0.9,
        )

    # 2. The network is the only source of fresh readings; probe
    #    outcomes feed the availability history the sampler consumes.
    availability = AvailabilityModel()
    network = SensorNetwork(registry.all(), availability_model=availability, seed=1)

    # 3. Bulk-build the index (k-means clustered hierarchy + slot
    #    caches at every node).
    config = COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0)
    tree = COLRTree(registry.all(), config, network=network, availability_model=availability)
    print(f"indexed {len(tree)} sensors, tree height {tree.height()}")

    region = Rect(20, 20, 70, 70)

    # 4. A sampled query: ask for ~30 sensors instead of all ~500.
    answer = tree.query(region, now=clock.now(), max_staleness=300.0, sample_size=30)
    print(
        f"cold sampled query: probed {answer.stats.sensors_probed} sensors, "
        f"answer represents {answer.result_weight} readings"
    )

    # 5. Repeat shortly after: the slot caches absorb most of the work.
    clock.advance(5.0)
    answer = tree.query(region, now=clock.now(), max_staleness=300.0, sample_size=30)
    print(
        f"warm sampled query: probed {answer.stats.sensors_probed} sensors, "
        f"{len(answer.cached_readings)} cached readings, "
        f"{len(answer.cached_sketches)} cached aggregates"
    )

    # 6. An exact query (sample_size=0) still benefits from the cache.
    clock.advance(5.0)
    exact = tree.query(region, now=clock.now(), max_staleness=300.0, sample_size=0)
    print(
        f"exact query: count={exact.estimate('count'):.0f}, "
        f"avg={exact.estimate('avg'):.2f}, probed {exact.stats.sensors_probed}"
    )

    # 7. Let everything expire; the next query collects afresh.
    clock.advance(3_600.0)
    cold = tree.query(region, now=clock.now(), max_staleness=300.0, sample_size=30)
    print(f"after expiry: probed {cold.stats.sensors_probed} sensors again")


if __name__ == "__main__":
    main()
