"""Dinner planner — the paper's combined-data scenario from Section I.

"A user can combine different types of live data, such as traffic
conditions of roads leading to the restaurants, on the same map, to get
an estimate of the total time required for driving to a restaurant and
waiting there before dinner is served."

Two sensor fleets share one portal: restaurants publishing wait times
(city blobs) and highway traffic sensors publishing congestion (linear
corridors).  For each candidate restaurant near Seattle we estimate
total time = drive time under current congestion + current wait time,
and rank the candidates — all with bounded probing through the index.

Run:  python examples/dinner_planner.py
"""

import numpy as np

from repro import COLRTreeConfig, GeoPoint, Rect
from repro.geometry.point import haversine_miles
from repro.portal import SensorMapPortal, SensorQuery
from repro.workloads import HighwayWorkload, LiveLocalWorkload


def main() -> None:
    # Fleet 1: restaurants around US metros.
    restaurants = LiveLocalWorkload(
        n_sensors=6_000, n_queries=0, expiry_seconds=420.0, seed=13
    ).sensors()
    # Fleet 2: traffic sensors along highway corridors (enough corridors
    # to reach the west-coast metros).
    from repro.workloads import default_corridors

    traffic = HighwayWorkload(
        corridors=default_corridors(n=30), seed=13
    ).sensors(start_id=len(restaurants))
    print(f"{len(restaurants)} restaurants + {len(traffic)} traffic sensors")

    def live_value(sensor, now):
        if sensor.sensor_type == "traffic":
            base = 1.0 + (sensor.sensor_id % 11) * 0.6
            rush = 8.0 * max(0.0, np.sin(now / 3_600.0 * np.pi)) ** 2
            return float(base + rush)  # delay minutes per 10 miles
        wait = 10.0 + (sensor.sensor_id % 7) * 5.0
        return float(wait)  # minutes until a table

    portal = SensorMapPortal(
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        value_fn=live_value,
        max_sensors_per_query=150,
    )
    portal.register_all(restaurants + traffic)
    portal.rebuild_index()
    portal.clock.advance(1_800.0)  # half past five: rush hour ramping up

    home = GeoPoint(-122.33, 47.61)  # downtown Seattle
    viewport = Rect(home.x - 0.35, home.y - 0.25, home.x + 0.35, home.y + 0.25)

    # Live wait times from a sample of nearby restaurants.
    wait_result = portal.execute(
        SensorQuery(
            region=viewport,
            staleness_seconds=300.0,
            sample_size=25,
            sensor_type="restaurant",
            aggregate="avg",
        )
    )
    candidates = [
        r
        for answer in wait_result.answers
        for r in list(answer.probed_readings) + list(answer.cached_readings)
    ]
    # Live congestion along roads in the same viewport.
    traffic_result = portal.execute(
        SensorQuery(
            region=viewport.expanded(0.3),
            staleness_seconds=180.0,
            sample_size=20,
            sensor_type="traffic",
            aggregate="avg",
        )
    )
    try:
        delay_per_10mi = traffic_result.aggregate()
    except ValueError:
        delay_per_10mi = 2.0  # no traffic sensors in view: assume light
    print(
        f"current congestion: {delay_per_10mi:.1f} min delay per 10 miles "
        f"({sum(a.stats.sensors_probed for a in traffic_result.answers)} probes)"
    )

    tree = portal.tree("restaurant")
    print("\nbest dinner options (drive at 30 mph + live congestion + wait):")
    ranked = []
    for reading in candidates:
        location = tree.sensor(reading.sensor_id).location
        miles = haversine_miles(home.lat, home.lon, location.lat, location.lon)
        drive = miles / 30.0 * 60.0 + miles / 10.0 * delay_per_10mi
        ranked.append((drive + reading.value, drive, reading.value, reading.sensor_id))
    ranked.sort()
    for total, drive, wait, sensor_id in ranked[:5]:
        print(
            f"  restaurant #{sensor_id}: total {total:5.1f} min "
            f"(drive {drive:4.1f} + wait {wait:4.1f})"
        )
    probes = sum(
        a.stats.sensors_probed for a in wait_result.answers + traffic_result.answers
    )
    print(f"\nanswered with {probes} sensor probes across both fleets")


if __name__ == "__main__":
    main()
