"""Tune the slot size for a deployment (Section IV-C / Figure 2).

Given the expiry times your sensor fleet publishes and the freshness
behaviour of your query workload, the utility/cost model picks the slot
size Δ that maximizes how long aggregated data stays servable per unit
of per-query slot work.

Run:  python examples/slot_size_tuning.py
"""

from repro.core.slot_sizing import (
    FIG2_WORKLOAD,
    SlotSizeModel,
    default_delta_grid,
    optimal_slot_size,
)
from repro.workloads import (
    uniform_expiry,
    usgs_like_expiry,
    weather_like_expiry,
)


def main() -> None:
    fleets = {
        "uniform (hypothetical)": uniform_expiry(4000, seed=3),
        "USGS-like (long expiry)": usgs_like_expiry(4000, seed=3),
        "Weather-like (short expiry)": weather_like_expiry(4000, seed=3),
    }
    grid = default_delta_grid()
    print("slot-size tuning under the Figure 2 reference query workload\n")
    for name, samples in fleets.items():
        model = SlotSizeModel(
            expiry_samples=tuple(float(x) for x in samples), **FIG2_WORKLOAD
        )
        best = optimal_slot_size(model, grid)
        print(f"{name}: optimal Δ = {best:.2f} x t_max")
        for delta in (0.2, 0.5, 0.8):
            marker = " <= optimum" if abs(delta - best) < 1e-9 else ""
            print(
                f"    Δ={delta:.1f}: utility={model.utility(delta):.3f} "
                f"cost={model.cost(delta):.2f} ratio={model.ratio(delta):.4f}{marker}"
            )
        print()

    # Applying the result: configure a real deployment in seconds.
    t_max_seconds = 600.0
    fleet_expiries = [float(x) * t_max_seconds for x in usgs_like_expiry(1000, seed=5)]
    model = SlotSizeModel.from_workload(
        expiry_seconds=fleet_expiries,
        t_max=t_max_seconds,
        query_window_seconds=600.0,
        update_fraction=0.1,
        collection_cost=5.0,
    )
    delta = optimal_slot_size(model) * t_max_seconds
    print(
        f"for a {t_max_seconds:.0f}s-expiry fleet: configure "
        f"COLRTreeConfig(slot_seconds={delta:.0f})"
    )


if __name__ == "__main__":
    main()
