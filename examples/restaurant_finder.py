"""Restaurant Finder — the paper's motivating SensorMap application.

Restaurants publish live waiting times; users pan a map and ask for
restaurants with small waiting times in a region.  Zoomed-out views
group near-by restaurants (``CLUSTER``) and show per-group wait-time
distributions; the probe budget (``SAMPLESIZE``) bounds how many
restaurants are contacted per query.

This example drives the full portal stack — the SQL-ish dialect,
per-type COLR-Trees, viewport grouping and the simulated clock — over a
Live-Local-like workload.

Run:  python examples/restaurant_finder.py
"""

import numpy as np

from repro import COLRTreeConfig
from repro.portal import SensorMapPortal
from repro.workloads import LiveLocalWorkload


def wait_time(sensor, now) -> float:
    """Synthetic waiting-time feed: a lunch-hour swell plus per-venue
    character, in minutes."""
    base = 10.0 + (sensor.sensor_id % 7) * 4.0
    rush = 15.0 * max(0.0, np.sin(now / 3_600.0 * np.pi))
    jitter = (sensor.sensor_id * 2654435761 % 100) / 25.0
    return base + rush + jitter


def main() -> None:
    # Scatter 8,000 "restaurants" around US metros, expiring their
    # published wait times after 5-10 minutes.
    workload = LiveLocalWorkload(
        n_sensors=8_000,
        n_queries=0,
        expiry_seconds=lambda rng: rng.uniform(300, 600),
        availability=0.92,
        seed=11,
    )
    portal = SensorMapPortal(
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        value_fn=wait_time,
    )
    portal.register_all(workload.sensors())
    portal.rebuild_index()
    print(f"portal hosts {len(portal.registry)} restaurants")

    # A city-scale query around Seattle, exactly in the paper's dialect.
    seattle_sql = """
        SELECT avg(value) FROM sensor S
        WHERE S.location WITHIN Polygon((47.2, -122.8), (48.0, -122.8),
                                        (48.0, -121.9), (47.2, -121.9))
        AND S.time BETWEEN now()-10 AND now() mins
        CLUSTER 5 miles
        SAMPLESIZE 30
    """
    result = portal.execute_sql(seattle_sql)
    print(
        f"\nSeattle (zoomed out, CLUSTER 5 miles): {len(result.groups)} groups, "
        f"{result.result_weight} restaurants represented, "
        f"avg wait {result.aggregate():.1f} min"
    )
    for group in sorted(result.groups, key=lambda g: -g.size)[:5]:
        label = f"cache node {group.from_cache_node}" if group.from_cache_node else "live"
        print(
            f"  group at ({group.center.lat:.3f}, {group.center.lon:.3f}): "
            f"{group.size} restaurants, avg {group.result('avg'):.1f} min [{label}]"
        )

    # Zoom in: a small neighbourhood, individual icons (no CLUSTER).
    portal.clock.advance(30.0)
    zoomed_sql = """
        SELECT min(value) FROM sensor S
        WHERE S.location WITHIN Rect(47.55, -122.42, 47.70, -122.25)
        AND S.time BETWEEN now()-10 AND now() mins
        SAMPLESIZE 20
    """
    zoomed = portal.execute_sql(zoomed_sql)
    print(
        f"\ndowntown zoom-in: {len(zoomed.groups)} individual restaurants, "
        f"best wait {zoomed.aggregate():.1f} min, "
        f"{sum(a.stats.sensors_probed for a in zoomed.answers)} probes "
        f"({zoomed.end_to_end_seconds * 1e3:.0f} ms end-to-end)"
    )

    # The same viewport again: the slot caches carry the answer.
    portal.clock.advance(15.0)
    again = portal.execute_sql(zoomed_sql)
    print(
        f"repeat visit: {sum(a.stats.sensors_probed for a in again.answers)} probes "
        f"({again.end_to_end_seconds * 1e3:.0f} ms end-to-end)"
    )


if __name__ == "__main__":
    main()
