"""The relational COLR-Tree (Section VI): layer tables and triggers.

The paper's production implementation stores the tree as per-layer
relations and maintains the caches entirely inside AFTER triggers.
This example builds that pipeline on the bundled relational engine,
inserts readings as plain DML, and shows the trigger cascade keeping
every layer's aggregates consistent — then runs both access methods.

Run:  python examples/relational_backend.py
"""

import numpy as np

from repro import COLRTreeConfig, GeoPoint, Reading, Rect, SensorNetwork, SensorRegistry
from repro.relational import col
from repro.relcolr import RelCOLRTree


def main() -> None:
    rng = np.random.default_rng(21)
    registry = SensorRegistry()
    for _ in range(600):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=300.0,
            availability=0.95,
        )
    network = SensorNetwork(registry.all(), seed=4)
    rel = RelCOLRTree(
        registry.all(),
        COLRTreeConfig(
            fanout=4, leaf_capacity=16, max_expiry_seconds=600.0, slot_seconds=120.0
        ),
        network=network,
    )
    print("tables:", ", ".join(rel.db.table_names()))
    print(f"tree has {rel.n_levels} levels; root node id {rel.root_id}\n")

    # Insert a few readings through DML: the roll / slot-insert /
    # slot-update triggers propagate aggregates to the root.
    for sensor in registry.all()[:10]:
        rel.insert_reading(
            Reading(
                sensor_id=sensor.sensor_id,
                value=float(rng.uniform(0, 100)),
                timestamp=0.0,
                expires_at=sensor.expiry_seconds,
            ),
            fetched_at=0.0,
        )
    root_rows = rel.db.table(rel.names.cache(0)).scan(col("node_id") == rel.root_id)
    print("root cache rows after 10 trigger-maintained inserts:")
    for row in root_rows:
        print(
            f"  slot {row['slot_id']}: count={row['value_count']} "
            f"sum={row['value_sum']:.1f} min={row['value_min']:.1f} "
            f"max={row['value_max']:.1f}"
        )

    # Sensor-selection access method: which sensors should the portal
    # probe for a sampled query?
    region = Rect(10, 10, 80, 80)
    picks = rel.sensor_selection(region, now=1.0, max_staleness=600.0, target_size=25)
    print(f"\nsensor selection proposed {len(picks)} probes for target 25")

    # End-to-end: probe, maintain through triggers, read back via the
    # cache-read access method.
    answer = rel.query(region, now=1.0, max_staleness=600.0, sample_size=25)
    print(
        f"query answered with {answer.probed_count} fresh + "
        f"{len(answer.cached_readings)} cached readings "
        f"(+{sum(s.count for s in answer.cached_sketches)} in aggregates)"
    )
    again = rel.query(region, now=5.0, max_staleness=600.0, sample_size=25)
    print(
        f"repeat query probed {again.stats.sensors_probed} sensors; "
        f"{again.result_weight} readings served mostly from cache tables"
    )


if __name__ == "__main__":
    main()
