"""A live dashboard: standing queries + model-based estimates.

Combines two portal-layer features on top of the index:

* a :class:`ContinuousQueryManager` keeps two viewports refreshed and
  reports deltas (what appeared / changed) as simulated time advances;
* a :class:`ModelView` answers "what is it like *here*?" at arbitrary
  map points from cached data alone — zero extra sensor probes.

Run:  python examples/live_dashboard.py
"""

import numpy as np

from repro import COLRTreeConfig, GeoPoint, Rect, SpatialField
from repro.models import ModelView
from repro.portal import ContinuousQueryManager, SensorMapPortal, SensorQuery

from repro.sensors.registry import SensorRegistry


def main() -> None:
    # A temperature-like field sensed by 3,000 stations.
    domain = Rect(0, 0, 100, 100)
    field = SpatialField(domain, n_bumps=7, amplitude=15.0, base=60.0, noise_sigma=0.3, seed=9)
    rng = np.random.default_rng(9)
    registry = SensorRegistry()
    for _ in range(3_000):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(180, 600)),
            sensor_type="weather",
            availability=0.95,
        )
    portal = SensorMapPortal(
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        value_fn=lambda s, t: field.sample(s.location, t),
        max_sensors_per_query=200,
    )
    portal.register_all(registry.all())
    portal.rebuild_index()

    # Two users keep viewports open; the manager refreshes them.
    manager = ContinuousQueryManager(portal)
    downtown = manager.subscribe(
        SensorQuery(region=Rect(20, 20, 40, 40), staleness_seconds=180.0,
                    sample_size=25, aggregate="avg"),
        refresh_seconds=120.0,
    )
    suburbs = manager.subscribe(
        SensorQuery(region=Rect(50, 50, 90, 90), staleness_seconds=180.0,
                    sample_size=25, aggregate="avg"),
        refresh_seconds=120.0,
    )

    print("t(s)   viewport   avg    appeared  changed  probes")
    for _ in range(5):
        for subscription, delta in manager.tick():
            name = "downtown" if subscription is downtown else "suburbs"
            result = subscription.last_result
            probes = sum(a.stats.sensors_probed for a in result.answers)
            print(
                f"{portal.clock.now():5.0f}  {name:>9}  {result.aggregate():5.1f}  "
                f"{len(delta.appeared):8d}  {len(delta.changed):7d}  {probes:6d}"
            )
        portal.clock.advance(120.0)

    # Model view: estimate conditions anywhere from the warm cache.
    tree = portal.tree("weather")
    view = ModelView(tree, fallback="probe")
    print("\nmodel-based point estimates (no probes once the cache is warm):")
    for x, y in ((30.0, 30.0), (70.0, 70.0), (10.0, 90.0)):
        estimate = view.estimate_at(
            GeoPoint(x, y), now=portal.clock.now(), max_staleness=600.0
        )
        truth = field.mean_value(GeoPoint(x, y), portal.clock.now())
        print(f"  at ({x:.0f},{y:.0f}): model {estimate:5.1f}  field {truth:5.1f}")


if __name__ == "__main__":
    main()
