"""Figure 7 bench: approximation error vs sample size (USGS WA)."""

import pytest

from repro.bench.fig7 import run_fig7

SIZES = [5, 15, 50, 200]


@pytest.fixture(scope="module")
def fig7_result():
    return run_fig7(sample_sizes=SIZES, n_trials=20)


def test_fig7_runs_under_benchmark(benchmark):
    result = benchmark.pedantic(
        run_fig7, kwargs={"sample_sizes": [15], "n_trials": 5}, rounds=1, iterations=1
    )
    assert result.points


def test_error_within_ten_percent_at_fifteen_sensors(verify, fig7_result):
    def check():
        """The paper's headline: ~10% error with as few as 15 of 200."""
        assert fig7_result.error_at(15) <= 0.12

    verify(check)


def test_error_decreases_with_sample_size(verify, fig7_result):
    def check():
        errors = [p.mean_relative_error for p in fig7_result.points]
        assert errors[0] > errors[2] > errors[3]

    verify(check)


def test_full_sample_is_nearly_exact(verify, fig7_result):
    def check():
        assert fig7_result.error_at(200) < 0.01

    verify(check)
