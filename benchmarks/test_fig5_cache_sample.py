"""Figure 5 bench: cache limit x sample size effects."""

import pytest

from repro.bench.fig5 import run_fig5

FRACTIONS = [0.16, 0.32]
TARGETS = [30, 1000]


@pytest.fixture(scope="module")
def fig5_result(small_setup):
    return run_fig5(small_setup, cache_fractions=FRACTIONS, sample_sizes=TARGETS)


def test_fig5_runs_under_benchmark(benchmark, small_setup):
    result = benchmark.pedantic(
        run_fig5,
        args=(small_setup,),
        kwargs={"cache_fractions": [0.16], "sample_sizes": [30]},
        rounds=1,
        iterations=1,
    )
    assert result.cells


def test_bigger_cache_helps_large_samples(verify, fig5_result):
    def check():
        small_cache = fig5_result.cell(0.16, 1000)
        big_cache = fig5_result.cell(0.32, 1000)
        assert big_cache.mean_probes < small_cache.mean_probes
        assert big_cache.mean_latency_seconds <= small_cache.mean_latency_seconds

    verify(check)


def test_cache_limit_immaterial_for_small_samples(verify, fig5_result):
    def check():
        """At small targets the cache limit barely matters."""
        small_cache = fig5_result.cell(0.16, 30)
        big_cache = fig5_result.cell(0.32, 30)
        assert small_cache.mean_probes == pytest.approx(
            big_cache.mean_probes, rel=0.15, abs=2.0
        )

    verify(check)


def test_sample_size_effect_diminishes_with_cache(verify, fig5_result):
    def check():
        """The paper's key trend: the probe gap between sample sizes is
        narrower at the 32% cache limit than at 16%."""
        gap_small_cache = (
            fig5_result.cell(0.16, 1000).mean_probes - fig5_result.cell(0.16, 30).mean_probes
        )
        gap_big_cache = (
            fig5_result.cell(0.32, 1000).mean_probes - fig5_result.cell(0.32, 30).mean_probes
        )
        assert gap_big_cache < gap_small_cache

    verify(check)


def test_larger_samples_traverse_more_nodes(verify, fig5_result):
    def check():
        assert (
            fig5_result.cell(0.16, 1000).mean_nodes_traversed
            > fig5_result.cell(0.16, 30).mean_nodes_traversed
        )

    verify(check)
