"""Ablation benches: each design choice must earn its keep."""

import pytest

from repro.bench.ablations import (
    run_aggregate_cache_ablation,
    run_build_method_ablation,
    run_live_slot_size_ablation,
    run_oversampling_ablation,
    run_redistribution_ablation,
    run_reversible_aggregates_ablation,
    run_terminal_level_ablation,
)


def test_oversampling_recovers_target(benchmark):
    result = benchmark.pedantic(run_oversampling_ablation, rounds=1, iterations=1)
    on = result.value("oversampling", "on", "achieved_fraction")
    off = result.value("oversampling", "off", "achieved_fraction")
    assert on > off
    # And the mechanism is the extra probes it issues.
    assert result.value("oversampling", "on", "mean_probes") > result.value(
        "oversampling", "off", "mean_probes"
    )


def test_redistribution_recovers_shortfalls(benchmark):
    result = benchmark.pedantic(run_redistribution_ablation, rounds=1, iterations=1)
    assert result.value("redistribution", "on", "achieved_size") >= result.value(
        "redistribution", "off", "achieved_size"
    )


def test_aggregate_caching_reduces_probes(benchmark):
    result = benchmark.pedantic(run_aggregate_cache_ablation, rounds=1, iterations=1)
    assert result.value("aggregate_cache", "tree", "mean_probes") < result.value(
        "aggregate_cache", "leaf_only", "mean_probes"
    )


def test_build_methods_comparable(benchmark):
    """Both bulk loaders must produce usable trees; neither should be
    pathologically worse."""
    result = benchmark.pedantic(run_build_method_ablation, rounds=1, iterations=1)
    km = result.value("build_method", "kmeans", "mean_nodes_traversed")
    st = result.value("build_method", "str", "mean_nodes_traversed")
    hb = result.value("build_method", "hilbert", "mean_nodes_traversed")
    assert km < 3 * st and st < 3 * km
    assert hb < 3 * km and km < 3 * hb


def test_reversible_aggregates_cut_cache_bias(benchmark):
    """The future-work extension must reduce |pde| without increasing
    probes (it only changes how cache hits are consumed)."""
    result = benchmark.pedantic(
        run_reversible_aggregates_ablation, rounds=1, iterations=1
    )
    assert result.value("reversible_aggregates", "on", "mean_abs_pde") < result.value(
        "reversible_aggregates", "off", "mean_abs_pde"
    )
    assert result.value(
        "reversible_aggregates", "on", "mean_result_weight"
    ) < result.value("reversible_aggregates", "off", "mean_result_weight")


def test_terminal_level_trades_traversal_for_granularity(benchmark):
    """The zoom knob: a shallower threshold T must not traverse more
    nodes than a deeper one (paths terminate earlier)."""
    result = benchmark.pedantic(
        run_terminal_level_ablation, kwargs={"levels": [0, 3]}, rounds=1, iterations=1
    )
    assert result.value("terminal_level", "T=0", "mean_nodes_traversed") <= result.value(
        "terminal_level", "T=3", "mean_nodes_traversed"
    ) * 1.1


def test_degenerate_single_slot_hurts(benchmark):
    """Δ = t_max (one slot) discards everything at each slide; any
    proper slotting must probe no more than it."""
    result = benchmark.pedantic(
        run_live_slot_size_ablation,
        kwargs={"slot_seconds": [120.0, 600.0]},
        rounds=1,
        iterations=1,
    )
    assert result.value("slot_size", "120s", "mean_probes") <= result.value(
        "slot_size", "600s", "mean_probes"
    )
