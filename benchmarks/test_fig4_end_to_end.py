"""Figure 4 bench: probe counts and latency over freshness windows,
plus the paper's Section I summary claims (scaled thresholds — the
paper's 30-100x assumes the 370 k-sensor Live Local density; ratios
grow with density, see EXPERIMENTS.md)."""

import pytest

from repro.bench.fig4 import run_fig4

WINDOWS = [60.0, 240.0, 600.0]


@pytest.fixture(scope="module")
def fig4_result(dense_setup):
    return run_fig4(dense_setup, freshness_windows=WINDOWS)


def test_fig4_runs_under_benchmark(benchmark, small_setup):
    result = benchmark.pedantic(
        run_fig4,
        args=(small_setup,),
        kwargs={"freshness_windows": [240.0]},
        rounds=1,
        iterations=1,
    )
    assert result.rows


def test_colr_tree_probes_far_fewer_sensors(verify, fig4_result):
    def check():
        """Panel i: both collection-agnostic configurations probe a large
        multiple of COLR-Tree's sensors at every freshness window."""
        for row in fig4_result.rows:
            assert row.probe_ratio("flat_cache") > 3.0, row
            assert row.probe_ratio("hier_cache") > 3.0, row

    verify(check)


def test_latency_ordering_matches_paper(verify, fig4_result):
    def check():
        """Panel ii/iv: flat > hierarchical > COLR-Tree processing latency."""
        for row in fig4_result.rows:
            assert row.latency["flat_cache"] > row.latency["hier_cache"], row
            assert row.latency["hier_cache"] > row.latency["colr_tree"], row

    verify(check)


def test_hier_latency_ratio_in_paper_band(verify, fig4_result):
    def check():
        """The paper reports a 3-5x latency reduction vs the hierarchical
        cache; at bench scale we require at least 1.5x on average."""
        summary = fig4_result.summary()
        assert summary["mean_latency_ratio_hier_over_colr"] > 1.5

    verify(check)


def test_weaker_freshness_means_fewer_probes(verify, fig4_result):
    def check():
        """Panel iii's heel: relaxing the freshness bound lets the cache
        absorb more of each query."""
        probes = [row.probes["colr_tree"] for row in fig4_result.rows]
        assert probes[0] > probes[-1]

    verify(check)


def test_colr_processing_latency_is_low(verify, fig4_result):
    def check():
        """Panel iv: COLR-Tree stays in the tens of milliseconds."""
        summary = fig4_result.summary()
        assert summary["mean_colr_processing_ms"] < 100.0

    verify(check)
