"""Figure 2 bench: the slot-size model sweep and its optima."""

from repro.bench.fig2 import PAPER_OPTIMA, run_fig2


def test_fig2_optima_match_paper(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    for workload, expected in PAPER_OPTIMA.items():
        assert abs(result.optima[workload] - expected) < 1e-9, (
            workload,
            result.optima,
        )


def test_fig2_curves_peak_at_optimum(verify):
    def check():
        result = run_fig2()
        for name, curve in result.curves.items():
            best_delta = result.deltas[curve.index(max(curve))]
            assert best_delta == result.optima[name]

    verify(check)


def test_fig2_table_prints(verify):
    def check():
        text = run_fig2().format_table()
        assert "utility/cost" in text
        assert "weather" in text

    verify(check)
