"""The relational implementation under the harness: correctness parity
with the in-memory tree on a shared stream, plus relative throughput.
The paper's system is the relational one — this bench shows the
reproduction's two implementations tell the same story."""

import pytest

from repro import AvailabilityModel, COLRTree, COLRTreeConfig, SensorNetwork
from repro.bench.harness import run_query_stream
from repro.relcolr import RelCOLRTree
from repro.workloads.livelocal import LiveLocalWorkload


CFG = COLRTreeConfig(
    fanout=4,
    leaf_capacity=16,
    max_expiry_seconds=600.0,
    slot_seconds=120.0,
)


@pytest.fixture(scope="module")
def shared_workload():
    wl = LiveLocalWorkload(
        n_sensors=1_500, n_queries=60, sample_size=25, seed=7
    )
    return wl.sensors(), wl.queries()


def build_mem(sensors):
    model = AvailabilityModel()
    return COLRTree(
        sensors,
        CFG,
        network=SensorNetwork(sensors, availability_model=model, seed=1),
        availability_model=model,
        build_method="str",
    )


def build_rel(sensors):
    model = AvailabilityModel()
    return RelCOLRTree(
        sensors,
        CFG,
        network=SensorNetwork(sensors, availability_model=model, seed=1),
        availability_model=model,
        build_method="str",
    )


class _RelAdapter:
    """Give RelCOLRTree the harness interface (processing model)."""

    def __init__(self, rel):
        self.rel = rel
        from repro.core.stats import ProcessingCostModel

        self.cost_model = ProcessingCostModel()

    def query(self, region, now, max_staleness, sample_size=None):
        return self.rel.query(region, now, max_staleness, sample_size)

    def processing_seconds(self, stats):
        return self.cost_model.processing_seconds(stats)


def test_relational_stream_run(benchmark, shared_workload):
    sensors, queries = shared_workload
    rel = _RelAdapter(build_rel(sensors))

    def run():
        return run_query_stream(rel, queries)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result) == len(queries)


def test_in_memory_stream_run(benchmark, shared_workload):
    sensors, queries = shared_workload
    mem = build_mem(sensors)

    def run():
        return run_query_stream(mem, queries)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result) == len(queries)


def test_implementations_probe_comparably(verify, shared_workload):
    def check():
        sensors, queries = shared_workload
        mem_run = run_query_stream(build_mem(sensors), queries)
        rel_run = run_query_stream(_RelAdapter(build_rel(sensors)), queries)
        mem_probes = mem_run.mean("sensors_probed")
        rel_probes = rel_run.mean("sensors_probed")
        # Same workload, same caches: probe bills within 2.5x of each
        # other (the relational access method lacks the per-terminal
        # oversample/round details, so exact equality is not expected).
        assert rel_probes <= 2.5 * mem_probes + 5
        assert mem_probes <= 2.5 * rel_probes + 5
        # And both serve repeats mostly from cache.
        assert rel_run.records[-1].sensors_probed <= rel_run.records[0].sensors_probed * 2

    verify(check)
