"""Shared benchmark fixtures: one scaled-down Live-Local setup reused
across figure benches (session scope keeps total runtime tractable)."""

from __future__ import annotations

import pytest

from repro.bench.setup import EvalSetup


@pytest.fixture(scope="session")
def small_setup() -> EvalSetup:
    """Bench-friendly workload: ~10 k sensors, 250 queries."""
    return EvalSetup(n_sensors=10_000, n_queries=250)


@pytest.fixture(scope="session")
def dense_setup() -> EvalSetup:
    """Denser population for probe-ratio benches (Figure 4's shape needs
    result sets well above the sample target)."""
    return EvalSetup(n_sensors=25_000, n_queries=250)


@pytest.fixture
def verify(benchmark):
    """Run a shape-assertion callable under the benchmark fixture so the
    claim checks execute (and are timed) in ``--benchmark-only`` runs."""

    def runner(check):
        benchmark.pedantic(check, rounds=1, iterations=1)

    return runner
