"""Figure 3 bench: traversal vs result size, cache-work nested plot."""

import pytest

from repro.bench.fig3 import run_fig3


@pytest.fixture(scope="module")
def fig3_result(small_setup):
    return run_fig3(small_setup)


def test_fig3_runs_under_benchmark(benchmark, small_setup):
    result = benchmark.pedantic(run_fig3, args=(small_setup,), rounds=1, iterations=1)
    assert result.mean_traversed["rtree"] > 0


def test_rtree_traversal_grows_with_result_size(verify, fig3_result):
    def check():
        bins = [b for b in fig3_result.traversal_bins["rtree"] if b.low > 0]
        assert len(bins) >= 3
        assert bins[-1].mean_value > 2.5 * bins[0].mean_value

    verify(check)


def test_colr_tree_traverses_fewer_nodes_than_rtree(verify, fig3_result):
    def check():
        assert (
            fig3_result.mean_traversed["colr_tree"] < fig3_result.mean_traversed["rtree"]
        )

    verify(check)


def test_hier_cache_traverses_fewer_than_rtree(verify, fig3_result):
    def check():
        assert (
            fig3_result.mean_traversed["hier_cache"] <= fig3_result.mean_traversed["rtree"]
        )

    verify(check)


def test_colr_tree_does_less_cache_work_than_hier(verify, fig3_result):
    def check():
        """The nested plot: COLR-Tree touches substantially fewer cached
        nodes (lookup + maintenance) than the hierarchical cache."""
        assert (
            fig3_result.mean_cached["hier_cache"]
            > 1.5 * fig3_result.mean_cached["colr_tree"]
        )

    verify(check)


def test_rtree_does_no_cache_work(verify, fig3_result):
    def check():
        assert fig3_result.mean_cached["rtree"] == 0.0

    verify(check)
