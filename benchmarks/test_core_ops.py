"""Micro-benchmarks of the index's core operations (timings only)."""

import numpy as np
import pytest

from repro import (
    AvailabilityModel,
    COLRTree,
    COLRTreeConfig,
    GeoPoint,
    Reading,
    Rect,
    SensorNetwork,
    SensorRegistry,
)


@pytest.fixture(scope="module")
def warm_tree():
    rng = np.random.default_rng(0)
    registry = SensorRegistry()
    for _ in range(5000):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=float(rng.uniform(120, 600)),
        )
    model = AvailabilityModel()
    network = SensorNetwork(registry.all(), availability_model=model, seed=1)
    tree = COLRTree(
        registry.all(),
        COLRTreeConfig(max_expiry_seconds=600.0, slot_seconds=120.0),
        network=network,
        availability_model=model,
    )
    tree.query(Rect(0, 0, 100, 100), now=0.0, max_staleness=600.0, sample_size=2000)
    return registry, tree


def test_bulk_build_5k_sensors(benchmark):
    rng = np.random.default_rng(1)
    registry = SensorRegistry()
    for _ in range(5000):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=300.0,
        )

    def build():
        return COLRTree(registry.all(), COLRTreeConfig())

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    assert tree.root.weight == 5000


def test_sampled_query_on_warm_cache(benchmark, warm_tree):
    _, tree = warm_tree
    clock = {"t": 1.0}

    def q():
        clock["t"] += 0.01
        return tree.query(
            Rect(20, 20, 70, 70), now=clock["t"], max_staleness=600.0, sample_size=30
        )

    answer = benchmark(q)
    assert answer.result_weight > 0


def test_exact_query_cold_vs_probe_cost(benchmark, warm_tree):
    _, tree = warm_tree
    clock = {"t": 10.0}

    def q():
        clock["t"] += 0.01
        return tree.query(
            Rect(40, 40, 60, 60), now=clock["t"], max_staleness=600.0, sample_size=0
        )

    answer = benchmark(q)
    assert answer.result_weight > 0


def test_reading_insert_with_propagation(benchmark, warm_tree):
    registry, tree = warm_tree
    sensors = registry.all()
    counter = {"i": 0, "t": 100.0}

    def insert():
        sensor = sensors[counter["i"] % len(sensors)]
        counter["i"] += 1
        counter["t"] += 0.001
        return tree.insert_reading(
            Reading(
                sensor_id=sensor.sensor_id,
                value=1.0,
                timestamp=counter["t"],
                expires_at=counter["t"] + sensor.expiry_seconds,
            ),
            fetched_at=counter["t"],
        )

    ops = benchmark(insert)
    assert ops > 0


def test_relational_insert_through_triggers(benchmark):
    from repro.relcolr import RelCOLRTree

    rng = np.random.default_rng(2)
    registry = SensorRegistry()
    for _ in range(500):
        registry.register(
            GeoPoint(float(rng.uniform(0, 100)), float(rng.uniform(0, 100))),
            expiry_seconds=300.0,
        )
    rel = RelCOLRTree(
        registry.all(),
        COLRTreeConfig(
            fanout=4, leaf_capacity=16, max_expiry_seconds=600.0, slot_seconds=120.0
        ),
    )
    sensors = registry.all()
    counter = {"i": 0, "t": 0.0}

    def insert():
        sensor = sensors[counter["i"] % len(sensors)]
        counter["i"] += 1
        counter["t"] += 0.001
        rel.insert_reading(
            Reading(
                sensor_id=sensor.sensor_id,
                value=1.0,
                timestamp=counter["t"],
                expires_at=counter["t"] + 300.0,
            ),
            fetched_at=counter["t"],
        )

    benchmark(insert)
    assert rel.cached_reading_count() > 0
