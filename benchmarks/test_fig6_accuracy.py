"""Figure 6 bench: target accuracy and probe discretization error."""

import pytest

from repro.bench.fig6 import run_fig6

FRACTIONS = [0.16, 0.32]
TARGETS = [30, 1000]


@pytest.fixture(scope="module")
def fig6_result(small_setup):
    return run_fig6(small_setup, cache_fractions=FRACTIONS, sample_sizes=TARGETS)


def test_fig6_runs_under_benchmark(benchmark, small_setup):
    result = benchmark.pedantic(
        run_fig6,
        args=(small_setup,),
        kwargs={"cache_fractions": [0.16], "sample_sizes": [30]},
        rounds=1,
        iterations=1,
    )
    assert result.cells


def test_target_accuracy_in_paper_band(verify, fig6_result):
    def check():
        """The paper reports 93-99% accuracy across the sweep."""
        for cell in fig6_result.cells:
            assert cell.target_accuracy >= 0.90, cell

    verify(check)


def test_small_target_pde_negative_from_cache_bias(verify, fig6_result):
    def check():
        """Cached aggregates over-deliver at small targets (negative pde)."""
        assert fig6_result.cell(0.16, 30).mean_pde < 0
        assert fig6_result.cell(0.32, 30).mean_pde < 0

    verify(check)


def test_small_target_bias_grows_with_cache(verify, fig6_result):
    def check():
        """The paper: at target 100 the probe error *increases* with cache
        size, because cached aggregates carry more sensors than requested."""
        assert (
            fig6_result.cell(0.32, 30).mean_abs_pde
            >= fig6_result.cell(0.16, 30).mean_abs_pde * 0.95
        )

    verify(check)


def test_large_target_pde_positive(verify, fig6_result):
    def check():
        """At targets above typical region populations, terminals
        under-deliver (positive pde)."""
        assert fig6_result.cell(0.16, 1000).mean_pde > 0

    verify(check)
