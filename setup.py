"""Legacy setup shim: the sandbox has no `wheel` package, so editable
installs go through the setuptools develop path (``--no-use-pep517``)."""

from setuptools import setup

setup()
